// Known-good: every forbidden pattern appears only inside strings,
// raw strings, chars or comments — a lexer that loses sync here will
// report phantom violations.
pub fn banner() -> &'static str {
    "call Vec::new() then .unwrap() and panic!(\"boom\")"
}

pub fn raw() -> &'static str {
    r#"format!("{}", x.expect("msg")) // vec![0; 4]"#
}

/* block comment: Box::new(x).to_vec().collect() /* nested: y.unwrap() */
   still commented: Ordering::SeqCst */
pub fn tick<'alloc>(v: &'alloc [u8]) -> u8 {
    // line comment: unreachable!() and String::from("x")
    let quote = '"';
    let _ = quote;
    v.len() as u8
}
