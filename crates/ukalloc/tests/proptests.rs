//! Property-based tests over every allocator backend.
//!
//! Invariants checked for arbitrary allocation/free traces:
//! 1. returned blocks never overlap while live;
//! 2. blocks respect the requested alignment;
//! 3. for reclaiming backends, freeing everything restores the full heap
//!    (no leaks, full coalescing where the backend promises it);
//! 4. the allocator never hands out memory outside its region.

use proptest::prelude::*;

use ukalloc::{AllocBackend, Allocator, MIN_ALIGN};

const HEAP_BASE: u64 = 1 << 22;
const HEAP_LEN: usize = 4 << 20;

/// One step of a random trace.
#[derive(Debug, Clone)]
enum Op {
    Alloc(usize),
    AllocAligned { align_log2: u8, size: usize },
    FreeIdx(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1usize..20_000).prop_map(Op::Alloc),
        ((4u8..13), (1usize..8_000))
            .prop_map(|(align_log2, size)| Op::AllocAligned { align_log2, size }),
        (0usize..64).prop_map(Op::FreeIdx),
    ]
}

/// Runs a trace against a backend, checking invariants at every step.
fn run_trace(backend: AllocBackend, ops: &[Op]) {
    let mut a = backend.instantiate();
    a.init(HEAP_BASE, HEAP_LEN).unwrap();
    // Live blocks: (addr, requested_size, min_guaranteed_extent).
    let mut live: Vec<(u64, usize)> = Vec::new();

    for op in ops {
        match op {
            Op::Alloc(size) => {
                if let Some(p) = a.malloc(*size) {
                    assert_eq!(p % MIN_ALIGN as u64, 0, "{}: misaligned", a.name());
                    check_bounds(a.as_ref(), p, *size);
                    check_disjoint(a.as_ref(), &live, p, *size);
                    live.push((p, *size));
                }
            }
            Op::AllocAligned { align_log2, size } => {
                let align = 1usize << align_log2;
                if let Some(p) = a.memalign(align, *size) {
                    assert_eq!(p % align as u64, 0, "{}: align {align} violated", a.name());
                    check_bounds(a.as_ref(), p, *size);
                    check_disjoint(a.as_ref(), &live, p, *size);
                    live.push((p, *size));
                }
            }
            Op::FreeIdx(i) => {
                if !live.is_empty() {
                    let idx = i % live.len();
                    let (p, _) = live.swap_remove(idx);
                    a.free(p);
                }
            }
        }
    }
    // Drain and check restoration for reclaiming backends.
    let reclaims = a.reclaims();
    let is_oscar = backend == AllocBackend::Oscar;
    for (p, _) in live.drain(..) {
        a.free(p);
    }
    if reclaims && !is_oscar {
        // Oscar intentionally keeps a quarantine, so skip it here.
        let avail = a.available();
        assert!(
            avail >= HEAP_LEN - HEAP_LEN / 8,
            "{}: only {avail} of {HEAP_LEN} bytes recovered",
            a.name()
        );
    }
}

fn check_bounds(a: &dyn Allocator, p: u64, size: usize) {
    assert!(
        p >= HEAP_BASE && p + size as u64 <= HEAP_BASE + HEAP_LEN as u64 + (4 << 20),
        "{}: {p:#x}+{size} outside region",
        a.name()
    );
}

fn check_disjoint(a: &dyn Allocator, live: &[(u64, usize)], p: u64, size: usize) {
    for &(q, qsize) in live {
        assert!(
            p + size as u64 <= q || q + qsize as u64 <= p,
            "{}: {p:#x}+{size} overlaps {q:#x}+{qsize}",
            a.name()
        );
    }
}

macro_rules! alloc_props {
    ($name:ident, $backend:expr) => {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn $name(ops in proptest::collection::vec(op_strategy(), 1..200)) {
                run_trace($backend, &ops);
            }
        }
    };
}

alloc_props!(buddy_trace_invariants, AllocBackend::Buddy);
alloc_props!(tlsf_trace_invariants, AllocBackend::Tlsf);
alloc_props!(tinyalloc_trace_invariants, AllocBackend::TinyAlloc);
alloc_props!(mimalloc_trace_invariants, AllocBackend::Mimalloc);
alloc_props!(bootalloc_trace_invariants, AllocBackend::BootAlloc);
alloc_props!(oscar_trace_invariants, AllocBackend::Oscar);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// TLSF fully coalesces: any alloc-all-free-all trace ends in one block.
    #[test]
    fn tlsf_full_coalescing(sizes in proptest::collection::vec(1usize..30_000, 1..100)) {
        let mut a = ukalloc::TlsfAlloc::new();
        a.init(HEAP_BASE, HEAP_LEN).unwrap();
        let before = a.available();
        let ptrs: Vec<_> = sizes.iter().filter_map(|&s| a.malloc(s)).collect();
        for p in ptrs {
            a.free(p);
        }
        prop_assert_eq!(a.available(), before);
    }

    /// Buddy coalescing restores availability exactly.
    #[test]
    fn buddy_full_coalescing(sizes in proptest::collection::vec(1usize..30_000, 1..100)) {
        let mut a = ukalloc::BuddyAlloc::new();
        a.init(HEAP_BASE, HEAP_LEN).unwrap();
        let before = a.available();
        let ptrs: Vec<_> = sizes.iter().filter_map(|&s| a.malloc(s)).collect();
        for p in ptrs {
            a.free(p);
        }
        prop_assert_eq!(a.available(), before);
    }

    /// Stats invariant: live count equals allocs minus frees.
    #[test]
    fn stats_live_accounting(sizes in proptest::collection::vec(16usize..1024, 1..50)) {
        let mut a = ukalloc::Mimalloc::new();
        a.init(HEAP_BASE, HEAP_LEN).unwrap();
        let ptrs: Vec<_> = sizes.iter().filter_map(|&s| a.malloc(s)).collect();
        let n = ptrs.len() as u64;
        prop_assert_eq!(a.stats().live(), n);
        for p in &ptrs {
            a.free(*p);
        }
        prop_assert_eq!(a.stats().live(), 0);
    }
}
