//! Shared client/server network harness for the throughput figures.
//!
//! Builds a two-node [`Network`] (client 10.0.0.1, server 10.0.0.2),
//! runs an app server against a load generator until the target request
//! count completes, and reports requests per second over the combined
//! real + virtual elapsed time.

use ukalloc::{AllocBackend, Allocator};
use uknetdev::backend::VhostKind;
use uknetdev::dev::{NetDev, NetDevConf};
use uknetdev::VirtioNet;
use uknetstack::stack::{NetStack, StackConfig};
use uknetstack::testnet::Network;
use uknetstack::{Endpoint, Ipv4Addr};
use ukplat::time::{Stopwatch, Tsc};

use ukapps::httpd::Httpd;
use ukapps::kvstore::KvStore;
use ukapps::loadgen::{HttpLoadGen, RespLoadGen, RespOp};

/// Throughput result.
#[derive(Debug, Clone, Copy)]
pub struct Throughput {
    /// Requests completed.
    pub requests: u64,
    /// Combined real + virtual nanoseconds.
    pub elapsed_ns: u64,
}

impl Throughput {
    /// Requests per second.
    pub fn rate(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.requests as f64 * 1e9 / self.elapsed_ns as f64
    }
}

fn mk_stack(n: u8, backend: VhostKind, tsc: &Tsc) -> NetStack {
    let mut dev = VirtioNet::new(backend, tsc);
    dev.configure(NetDevConf::default()).expect("configure");
    NetStack::new(StackConfig::node(n), Box::new(dev))
}

fn mk_alloc(backend: AllocBackend) -> Box<dyn Allocator> {
    let mut a = backend.instantiate();
    a.init(1 << 26, 64 << 20).expect("allocator init");
    // Age the heap like a long-running server: a spread of live
    // allocations (connection state, caches) with holes between them.
    // First-fit allocators now pay their scan per request, as they do
    // under real nginx/Redis heaps.
    let mut held = Vec::with_capacity(4096);
    for i in 0..4096usize {
        let size = 32 + (i * 97) % 1500;
        if let Some(p) = a.malloc(size) {
            held.push(p);
        }
    }
    for (i, p) in held.into_iter().enumerate() {
        if i % 2 == 0 {
            a.free(p);
        }
    }
    a
}

/// Runs the nginx/wrk scenario; returns throughput.
pub fn run_http_bench(
    alloc: AllocBackend,
    backend: VhostKind,
    nconns: usize,
    pipeline: usize,
    requests: u64,
) -> Throughput {
    run_http_bench_cfg(alloc, backend, nconns, pipeline, requests, true)
}

/// Variant with netbuf pools disabled on the server (heap buffers per
/// frame) — the pools ablation.
pub fn run_http_bench_heap_bufs(
    alloc: AllocBackend,
    backend: VhostKind,
    nconns: usize,
    pipeline: usize,
    requests: u64,
) -> Throughput {
    run_http_bench_cfg(alloc, backend, nconns, pipeline, requests, false)
}

fn run_http_bench_cfg(
    alloc: AllocBackend,
    backend: VhostKind,
    nconns: usize,
    pipeline: usize,
    requests: u64,
    server_pools: bool,
) -> Throughput {
    let tsc = Tsc::new(ukplat::cost::CPU_FREQ_HZ);
    let mut net = Network::new();
    let ci = net.attach(mk_stack(1, backend, &tsc));
    let mut server_stack = if server_pools {
        mk_stack(2, backend, &tsc)
    } else {
        let mut dev = VirtioNet::new(backend, &tsc);
        dev.configure(NetDevConf::default()).expect("configure");
        let mut cfg = StackConfig::node(2);
        cfg.use_pools = false;
        NetStack::new(cfg, Box::new(dev))
    };
    let mut httpd = Httpd::new(&mut server_stack, 80, mk_alloc(alloc)).expect("httpd");
    let si = net.attach(server_stack);

    let target = Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 80);
    let mut gen = HttpLoadGen::new(
        net.stack(ci),
        target,
        "/index.html",
        nconns,
        pipeline,
        requests,
    )
    .expect("loadgen");

    let sw = Stopwatch::start(&tsc);
    let mut idle_rounds = 0;
    while !gen.done() && idle_rounds < 1_000 {
        let mut progress = 0;
        progress += gen.poll(net.stack(ci));
        net.step();
        httpd.poll(net.stack(si));
        net.step();
        progress += gen.poll(net.stack(ci));
        idle_rounds = if progress == 0 { idle_rounds + 1 } else { 0 };
    }
    Throughput {
        requests: gen.completed(),
        elapsed_ns: sw.elapsed_ns(),
    }
}

/// Runs the Redis/redis-benchmark scenario; returns throughput.
pub fn run_resp_bench(
    alloc: AllocBackend,
    backend: VhostKind,
    op: RespOp,
    nconns: usize,
    pipeline: usize,
    requests: u64,
) -> Throughput {
    let tsc = Tsc::new(ukplat::cost::CPU_FREQ_HZ);
    let mut net = Network::new();
    let ci = net.attach(mk_stack(1, backend, &tsc));
    let mut server_stack = mk_stack(2, backend, &tsc);
    let mut kv = KvStore::new(&mut server_stack, 6379, mk_alloc(alloc)).expect("kvstore");
    let si = net.attach(server_stack);

    let target = Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 6379);
    let mut gen = RespLoadGen::new(net.stack(ci), target, op, nconns, pipeline, 1_000, requests)
        .expect("loadgen");

    let sw = Stopwatch::start(&tsc);
    let mut idle_rounds = 0;
    while !gen.done() && idle_rounds < 1_000 {
        let mut progress = 0;
        progress += gen.poll(net.stack(ci));
        net.step();
        kv.poll(net.stack(si));
        net.step();
        progress += gen.poll(net.stack(ci));
        idle_rounds = if progress == 0 { idle_rounds + 1 } else { 0 };
    }
    Throughput {
        requests: gen.completed(),
        elapsed_ns: sw.elapsed_ns(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn http_bench_completes_requests() {
        let t = run_http_bench(AllocBackend::Tlsf, VhostKind::VhostUser, 4, 2, 200);
        assert_eq!(t.requests, 200);
        assert!(t.rate() > 0.0);
    }

    #[test]
    fn resp_bench_completes_requests() {
        let t = run_resp_bench(
            AllocBackend::Mimalloc,
            VhostKind::VhostUser,
            RespOp::Set,
            4,
            4,
            200,
        );
        assert_eq!(t.requests, 200);
    }
}
