//! `ukdebug`: log levels, tracepoints and configurable assertions (§7).
//!
//! "Unikraft comes with a ukdebug micro-library that enables printing of
//! key messages at different (and configurable) levels of criticality…
//! \[and\] a trace point system also available through ukdebug's menu
//! options."

use std::collections::VecDeque;

/// Message criticality levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Critical errors.
    Crit,
    /// Errors.
    Error,
    /// Warnings.
    Warn,
    /// Informational.
    Info,
    /// Debug chatter.
    Debug,
}

/// The configurable logger.
#[derive(Debug)]
pub struct Logger {
    level: LogLevel,
    entries: Vec<(LogLevel, String)>,
    /// Whether `UK_ASSERT`-style assertions are enabled.
    assertions: bool,
}

impl Logger {
    /// Creates a logger that keeps `Info` and above.
    pub fn new() -> Self {
        Self::with_level(LogLevel::Info)
    }

    /// Creates a logger with an explicit threshold.
    pub fn with_level(level: LogLevel) -> Self {
        Logger {
            level,
            entries: Vec::new(),
            assertions: true,
        }
    }

    /// Changes the threshold.
    pub fn set_level(&mut self, level: LogLevel) {
        self.level = level;
    }

    /// Enables/disables assertions (Kconfig switch).
    pub fn set_assertions(&mut self, on: bool) {
        self.assertions = on;
    }

    /// Logs a message if it passes the threshold.
    pub fn log(&mut self, level: LogLevel, msg: impl Into<String>) {
        if level <= self.level {
            self.entries.push((level, msg.into()));
        }
    }

    /// `UK_ASSERT`: panics on a violated condition when assertions are
    /// enabled; records a critical log entry otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `cond` is false and assertions are enabled.
    pub fn uk_assert(&mut self, cond: bool, msg: &str) {
        if !cond {
            if self.assertions {
                panic!("UK_ASSERT failed: {msg}");
            }
            self.entries.push((LogLevel::Crit, format!("assert: {msg}")));
        }
    }

    /// Recorded entries.
    pub fn entries(&self) -> &[(LogLevel, String)] {
        &self.entries
    }
}

impl Default for Logger {
    fn default() -> Self {
        Self::new()
    }
}

/// A bounded tracepoint ring buffer.
#[derive(Debug)]
pub struct TraceBuffer {
    ring: VecDeque<(u64, &'static str)>,
    capacity: usize,
    dropped: u64,
}

impl TraceBuffer {
    /// Creates a buffer holding `capacity` events.
    pub fn new(capacity: usize) -> Self {
        TraceBuffer {
            ring: VecDeque::with_capacity(capacity),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Records a tracepoint at `tsc` cycles.
    pub fn trace(&mut self, tsc: u64, point: &'static str) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back((tsc, point));
    }

    /// Events currently buffered, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &(u64, &'static str)> {
        self.ring.iter()
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_threshold_filters() {
        let mut l = Logger::with_level(LogLevel::Warn);
        l.log(LogLevel::Debug, "hidden");
        l.log(LogLevel::Error, "shown");
        assert_eq!(l.entries().len(), 1);
        assert_eq!(l.entries()[0].1, "shown");
    }

    #[test]
    #[should_panic(expected = "UK_ASSERT failed")]
    fn assert_panics_when_enabled() {
        let mut l = Logger::new();
        l.uk_assert(false, "boom");
    }

    #[test]
    fn assert_logs_when_disabled() {
        let mut l = Logger::new();
        l.set_assertions(false);
        l.uk_assert(false, "soft");
        assert_eq!(l.entries()[0].0, LogLevel::Crit);
    }

    #[test]
    fn trace_ring_overwrites_oldest() {
        let mut t = TraceBuffer::new(2);
        t.trace(1, "a");
        t.trace(2, "b");
        t.trace(3, "c");
        let pts: Vec<_> = t.events().map(|(_, p)| *p).collect();
        assert_eq!(pts, ["b", "c"]);
        assert_eq!(t.dropped(), 1);
    }
}
