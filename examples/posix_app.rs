//! A "legacy" application running through the syscall shim.
//!
//! ```text
//! cargo run --example posix_app
//! ```
//!
//! §4 of the paper: applications built against musl call `open`/`read`/
//! `write` as usual; the shim turns each syscall into a plain function
//! call into the registered micro-library handler (vfscore here). This
//! example drives a file workload purely through syscall *numbers* —
//! the way a ported binary would — and shows the ENOSYS auto-stub for
//! an unimplemented call.

use unikraft_rs::core::PosixEnv;
use unikraft_rs::plat::time::Tsc;

const O_CREAT: u64 = 0x40;

fn main() {
    let tsc = Tsc::new(unikraft_rs::plat::cost::CPU_FREQ_HZ);
    let mut env = PosixEnv::new(&tsc);

    // mkdir("/var") ; open("/var/log", O_CREAT)
    let var = env.user_buf(b"/var");
    assert_eq!(env.syscall(83, &[var]), 0);
    let path = env.user_buf(b"/var/log");
    let fd = env.syscall(2, &[path, O_CREAT]);
    println!("open(\"/var/log\", O_CREAT) = {fd}");

    // write(fd, "...") ; lseek(fd, 0) ; read(fd, buf, 64)
    let msg = env.user_buf(b"appended through raw syscalls\n");
    let n = env.syscall(1, &[fd as u64, msg, 30]);
    println!("write(fd, 30 bytes) = {n}");
    env.syscall(8, &[fd as u64, 0]);
    let out = env.user_buf(b"");
    let n = env.syscall(0, &[fd as u64, out, 64]);
    println!(
        "read(fd, 64) = {n}: {:?}",
        String::from_utf8_lossy(&env.read_buf(out).unwrap())
    );
    env.syscall(3, &[fd as u64]);

    // getpid() — a unikernel is process 1.
    println!("getpid() = {}", env.syscall(39, &[]));

    // fork() — unsupported: the shim auto-stubs with -ENOSYS (§4.1),
    // and well-behaved apps fall back (e.g. nginx's thread mode).
    let r = env.syscall(57, &[]);
    println!("fork() = {r} (ENOSYS — unikernels have no processes, §7)");

    // The virtual cost of everything above was function calls, not traps.
    let shim = env.shim_mut();
    println!(
        "{} syscalls issued, {} hit the ENOSYS stub, total cost {} cycles \
         (4 cycles each — Table 1's function-call row)",
        shim.invocations(),
        shim.enosys_hits(),
        tsc.now_cycles()
    );
}
