//! An nginx-style HTTP/1.1 static file server — event-driven.
//!
//! Serves a static page over keep-alive connections, like the paper's
//! wrk benchmark (Figure 13: "static 612B page"). Request and response
//! buffers are allocated from a `ukalloc` backend per request, so the
//! allocator choice shows up in throughput exactly as in Figure 15.
//!
//! Since the `ukevent` subsystem landed, the server is a single-loop
//! event-driven design (the §4.1 epoll shape): one
//! [`EventQueue`](ukevent::EventQueue) multiplexes the listener plus
//! every live connection. The listener is watched for `EPOLLIN`
//! (accept-queue non-empty); each connection for `EPOLLIN`/`EPOLLRDHUP`,
//! plus `EPOLLOUT` while a response is partially written — responses
//! that do not fit the connection's send buffer (peer receive window
//! closed) are queued and drained on writability instead of dropped.

use std::collections::HashMap;

use ukalloc::Allocator;
use ukevent::{Event, EventMask, EventQueue};
use uknetstack::stack::{NetStack, SocketHandle};
use ukplat::{Errno, Result};

/// The paper's standard test page size.
pub const DEFAULT_PAGE_SIZE: usize = 612;

/// Largest body `/blob/<size>` serves (bounds the shared source
/// buffer).
pub const BLOB_MAX: usize = 4 << 20;

/// The deterministic byte at position `i` of every blob body (clients
/// verify transfers against this).
pub fn blob_byte(i: usize) -> u8 {
    ((i as u32).wrapping_mul(131).wrapping_add(7) % 251) as u8
}

/// Builds the standard 612-byte index page.
pub fn default_page() -> Vec<u8> {
    let mut body = b"<html><head><title>unikraft-rs</title></head><body>".to_vec();
    while body.len() < DEFAULT_PAGE_SIZE - 14 {
        body.extend_from_slice(b"A");
    }
    body.extend_from_slice(b"</body></html>");
    body.truncate(DEFAULT_PAGE_SIZE);
    body
}

struct Conn {
    sock: SocketHandle,
    /// Received bytes not yet forming a complete request.
    buf: Vec<u8>,
    /// Response bytes accepted by us but not yet by the socket (the
    /// partial-write backlog).
    out: Vec<u8>,
    /// An in-flight `/blob/<size>` body: `(size, offset)` into the
    /// server's shared blob source. The bytes go straight from that
    /// buffer into the connection's send queue (`tcp_send_queued`) —
    /// no per-request body copy, no backlog duplication. Further
    /// pipelined requests wait until the blob drains (responses stay
    /// ordered).
    blob: Option<(usize, usize)>,
    /// Close once `out` drains.
    closing: bool,
}

/// The HTTP server.
pub struct Httpd {
    listener: SocketHandle,
    queue: EventQueue,
    conns: HashMap<u64, Conn>,
    files: HashMap<String, Vec<u8>>,
    alloc: Box<dyn Allocator>,
    served: u64,
    errors: u64,
    /// Reusable landing area for one burst of received payload
    /// netbufs: socket reads take whole buffers via the zero-copy
    /// `tcp_recv_burst_netbuf` path, request bytes move into the
    /// connection's buffer, and every netbuf recycles to the stack's
    /// pool — no intermediate copy buffer.
    rx_bufs: Vec<uknetdev::netbuf::Netbuf>,
    /// Shared deterministic source for `/blob/<size>` bodies, grown
    /// lazily to the largest size requested. Every blob response
    /// streams out of this one buffer — the large-transfer fast path
    /// from application memory to super-segment without intermediate
    /// copies.
    blob_src: Vec<u8>,
}

impl std::fmt::Debug for Httpd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Httpd")
            .field("conns", &self.conns.len())
            .field("served", &self.served)
            .finish()
    }
}

impl Httpd {
    /// Starts listening on `port` of `stack`, serving buffers from
    /// `alloc` (already initialized). The listener joins the server's
    /// event queue immediately.
    pub fn new(stack: &mut NetStack, port: u16, alloc: Box<dyn Allocator>) -> Result<Self> {
        let listener = stack.tcp_listen(port)?;
        let mut queue = EventQueue::new();
        let src = stack.ready_source(listener);
        queue.ctl_add(listener.0 as u64, &src, EventMask::IN)?;
        let mut files = HashMap::new();
        files.insert("/index.html".to_string(), default_page());
        files.insert("/".to_string(), default_page());
        Ok(Httpd {
            listener,
            queue,
            conns: HashMap::new(),
            files,
            alloc,
            served: 0,
            errors: 0,
            rx_bufs: Vec::new(),
            blob_src: Vec::new(),
        })
    }

    /// Adds (or replaces) a served file.
    pub fn add_file(&mut self, path: impl Into<String>, contents: Vec<u8>) {
        self.files.insert(path.into(), contents);
    }

    /// Requests served so far.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Malformed requests seen.
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// Live connections.
    pub fn conn_count(&self) -> usize {
        self.conns.len()
    }

    /// The server's event queue (scheduler glue parks/wakes through it).
    pub fn event_queue_mut(&mut self) -> &mut EventQueue {
        &mut self.queue
    }

    /// Allocator statistics (live allocations should return to zero
    /// between requests).
    pub fn alloc_stats(&self) -> ukalloc::AllocStats {
        self.alloc.stats()
    }

    /// One turn of the event loop: drains the queue's ready events —
    /// accepting, reading, serving, and queueing partial writes — then
    /// emits every connection's pending output as **one TX burst**
    /// (`flush_output` once per turn, not once per send). Returns the
    /// number of responses completed this call.
    ///
    /// This is the single `EventQueue::wait`-shaped loop; callers embed
    /// it either by polling (benchmarks) or by parking a thread on the
    /// queue between turns (see the scheduler integration tests).
    pub fn poll(&mut self, stack: &mut NetStack) -> u64 {
        let before = self.served;
        let events = self.queue.poll_ready(64);
        for ev in events {
            if ev.token == self.listener.0 as u64 {
                self.accept_ready(stack);
            } else {
                self.drive_conn(stack, ev);
            }
        }
        // Requests that queued up behind a streaming blob response
        // become serviceable the turn the blob drains.
        let resume: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                c.blob.is_none() && !c.closing && find_header_end(&c.buf).is_some()
            })
            .map(|(t, _)| *t)
            .collect();
        for token in resume {
            self.drive_conn(
                stack,
                Event {
                    token,
                    events: EventMask::IN,
                },
            );
        }
        let _ = stack.flush_output();
        self.reap_closed(stack);
        self.served - before
    }

    /// Accepts every queued connection and registers it on the queue.
    fn accept_ready(&mut self, stack: &mut NetStack) {
        while let Some(sock) = stack.tcp_accept(self.listener) {
            let token = sock.0 as u64;
            let src = stack.ready_source(sock);
            if self
                .queue
                .ctl_add(token, &src, EventMask::IN | EventMask::RDHUP)
                .is_ok()
            {
                self.conns.insert(
                    token,
                    Conn {
                        sock,
                        buf: Vec::new(),
                        out: Vec::new(),
                        blob: None,
                        closing: false,
                    },
                );
                // The handshake-completing ACK may have carried data.
                self.drive_conn(
                    stack,
                    Event {
                        token,
                        events: EventMask::IN,
                    },
                );
            }
        }
    }

    /// Handles one connection's readiness event.
    fn drive_conn(&mut self, stack: &mut NetStack, ev: Event) {
        let Some(conn) = self.conns.get_mut(&ev.token) else {
            return;
        };
        if ev.events.intersects(EventMask::IN | EventMask::RDHUP) {
            // Zero-copy request read: take the payload buffers whole,
            // append their bytes to the request buffer, recycle.
            loop {
                let n = stack.tcp_recv_burst_netbuf(conn.sock, &mut self.rx_bufs, 32);
                if n == 0 {
                    break;
                }
                for nb in self.rx_bufs.drain(..) {
                    conn.buf.extend_from_slice(nb.payload());
                    stack.recycle(nb);
                }
            }
            // Serve every complete request in the buffer (pipelining);
            // a streaming blob response pauses the loop so responses
            // stay ordered (poll resumes it once the blob drains).
            while conn.blob.is_none() {
                let Some(end) = find_header_end(&conn.buf) else {
                    break;
                };
                let req_gp = self.alloc.malloc(end.max(64));
                let request: Vec<u8> = conn.buf.drain(..end).collect();
                let response = match parse_request(&request) {
                    Ok(path) => {
                        if let Some(size) = parse_blob_path(&path) {
                            if size <= BLOB_MAX {
                                // Grow the shared source once; the body
                                // then streams straight from it into
                                // the connection's send queue — no
                                // per-request body materialization.
                                while self.blob_src.len() < size {
                                    self.blob_src.push(blob_byte(self.blob_src.len()));
                                }
                                conn.blob = Some((size, 0));
                                self.served += 1;
                                render_header(200, "OK", size)
                            } else {
                                self.errors += 1;
                                render_response(404, "Not Found", b"blob too large")
                            }
                        } else if path == "/stats" {
                            // The live observability plane: a JSON dump
                            // of the whole ukstats registry, served over
                            // the same queued send path as every other
                            // response.
                            self.served += 1;
                            render_json_response(ukstats::snapshot().to_json().as_bytes())
                        } else {
                            match self.files.get(&path) {
                                Some(body) => {
                                    let resp_gp = self.alloc.malloc(body.len() + 128);
                                    let r = render_response(200, "OK", body);
                                    if let Some(gp) = resp_gp {
                                        self.alloc.free(gp);
                                    }
                                    self.served += 1;
                                    r
                                }
                                None => {
                                    self.errors += 1;
                                    render_response(404, "Not Found", b"not found")
                                }
                            }
                        }
                    }
                    Err(_) => {
                        self.errors += 1;
                        conn.closing = true;
                        render_response(400, "Bad Request", b"bad request")
                    }
                };
                if let Some(gp) = req_gp {
                    self.alloc.free(gp);
                }
                conn.out.extend_from_slice(&response);
                if conn.closing {
                    break;
                }
            }
        }
        // Always try to flush: an EPOLLOUT edge (tx window reopened)
        // lands here, and freshly queued responses go out immediately.
        Self::flush_conn(&mut self.queue, stack, conn, &self.blob_src);
        // After the peer's FIN no bytes can complete a partial request,
        // so any non-request residue in `buf` is discardable garbage.
        if stack.tcp_peer_closed(conn.sock) && find_header_end(&conn.buf).is_none() {
            conn.closing = true;
        }
    }

    /// Queues pending response bytes on the socket (the device push
    /// happens once per event-loop turn in [`poll`](Self::poll)),
    /// keeping what the send buffer refuses (closed tx window) and
    /// adjusting `EPOLLOUT` interest so the event loop resumes exactly
    /// when it can progress. After the header backlog drains, an
    /// in-flight blob body streams directly from the shared source
    /// buffer into the send queue — the only copy the server makes.
    fn flush_conn(queue: &mut EventQueue, stack: &mut NetStack, conn: &mut Conn, blob: &[u8]) {
        if !crate::flush_partial_queued(stack, conn.sock, &mut conn.out) {
            // Connection is gone; nothing more can be delivered.
            conn.closing = true;
            conn.blob = None;
        } else if conn.out.is_empty() {
            if let Some((size, off)) = conn.blob.as_mut() {
                let mut dead = false;
                while *off < *size {
                    match stack.tcp_send_queued(conn.sock, &blob[*off..*size]) {
                        Ok(0) | Err(ukplat::Errno::Again) => break,
                        Ok(n) => *off += n,
                        Err(_) => {
                            dead = true;
                            break;
                        }
                    }
                }
                // The blob survives an unrelated `closing` mark (e.g.
                // the peer half-closed its write side): the promised
                // Content-Length worth of body still goes out, and
                // only then does the reap close the socket. Only a
                // failed connection abandons the stream.
                if *off >= *size || dead {
                    conn.blob = None;
                }
                if dead {
                    conn.closing = true;
                }
            }
        }
        let token = conn.sock.0 as u64;
        let mut interest = EventMask::IN | EventMask::RDHUP;
        if !conn.out.is_empty() || conn.blob.is_some() {
            interest |= EventMask::OUT;
        }
        let _ = queue.ctl_mod(token, interest);
    }

    /// Closes and deregisters connections whose work is done.
    fn reap_closed(&mut self, stack: &mut NetStack) {
        let done: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.closing && c.out.is_empty() && c.blob.is_none())
            .map(|(t, _)| *t)
            .collect();
        for token in done {
            let conn = self.conns.remove(&token).expect("token listed");
            let _ = stack.tcp_close(conn.sock);
            let _ = self.queue.ctl_del(token);
        }
    }
}

/// Index one past the `\r\n\r\n` terminating the header block.
fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

/// `/blob/<size>` → `Some(size)`; anything else → `None`.
fn parse_blob_path(path: &str) -> Option<usize> {
    path.strip_prefix("/blob/")?.parse().ok()
}

/// Renders just the response status line + headers for a body of
/// `len` bytes that will be streamed separately.
fn render_header(code: u16, reason: &str, len: usize) -> Vec<u8> {
    format!(
        "HTTP/1.1 {code} {reason}\r\nServer: unikraft-rs\r\nContent-Length: {len}\r\nConnection: keep-alive\r\n\r\n"
    )
    .into_bytes()
}

/// Parses the request line, returning the path.
fn parse_request(req: &[u8]) -> Result<String> {
    let line_end = req
        .windows(2)
        .position(|w| w == b"\r\n")
        .ok_or(Errno::Inval)?;
    let line = std::str::from_utf8(&req[..line_end]).map_err(|_| Errno::Inval)?;
    let mut parts = line.split(' ');
    let method = parts.next().ok_or(Errno::Inval)?;
    let path = parts.next().ok_or(Errno::Inval)?;
    let version = parts.next().ok_or(Errno::Inval)?;
    if method != "GET" && method != "HEAD" {
        return Err(Errno::Inval);
    }
    if !version.starts_with("HTTP/1.") {
        return Err(Errno::Inval);
    }
    Ok(path.to_string())
}

/// Renders a 200 response carrying a JSON body (the `/stats` plane).
fn render_json_response(body: &[u8]) -> Vec<u8> {
    let mut r = format!(
        "HTTP/1.1 200 OK\r\nServer: unikraft-rs\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
        body.len()
    )
    .into_bytes();
    r.extend_from_slice(body);
    r
}

fn render_response(code: u16, reason: &str, body: &[u8]) -> Vec<u8> {
    let mut r = format!(
        "HTTP/1.1 {code} {reason}\r\nServer: unikraft-rs\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
        body.len()
    )
    .into_bytes();
    r.extend_from_slice(body);
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use ukalloc::AllocBackend;
    use uknetdev::backend::VhostKind;
    use uknetdev::dev::{NetDev, NetDevConf};
    use uknetdev::VirtioNet;
    use uknetstack::stack::StackConfig;
    use uknetstack::testnet::Network;
    use uknetstack::{Endpoint, Ipv4Addr};
    use ukplat::time::Tsc;

    fn mk_stack(n: u8) -> NetStack {
        let tsc = Tsc::new(3_600_000_000);
        let mut dev = VirtioNet::new(VhostKind::VhostUser, &tsc);
        dev.configure(NetDevConf::default()).unwrap();
        NetStack::new(StackConfig::node(n), Box::new(dev))
    }

    fn mk_alloc() -> Box<dyn Allocator> {
        let mut a = AllocBackend::Tlsf.instantiate();
        a.init(1 << 22, 8 << 20).unwrap();
        a
    }

    #[test]
    fn default_page_is_612_bytes() {
        assert_eq!(default_page().len(), DEFAULT_PAGE_SIZE);
    }

    #[test]
    fn parse_request_extracts_path() {
        assert_eq!(
            parse_request(b"GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n").unwrap(),
            "/index.html"
        );
        assert!(parse_request(b"POST / HTTP/1.1\r\n\r\n").is_err());
        assert!(parse_request(b"garbage").is_err());
    }

    #[test]
    fn serves_request_over_real_stack() {
        let mut net = Network::new();
        let client_idx = net.attach(mk_stack(1));
        let mut server_stack = mk_stack(2);
        let mut httpd = Httpd::new(&mut server_stack, 80, mk_alloc()).unwrap();
        let server_idx = net.attach(server_stack);

        let server_ep = Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 80);
        let conn = net.stack(client_idx).tcp_connect(server_ep).unwrap();
        for _ in 0..8 {
            net.run_until_quiet(16);
            httpd.poll(net.stack(server_idx));
        }
        net.stack(client_idx)
            .tcp_send(conn, b"GET /index.html HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        for _ in 0..8 {
            net.run_until_quiet(16);
            httpd.poll(net.stack(server_idx));
        }
        let resp = net.stack(client_idx).tcp_recv(conn, 64 * 1024).unwrap();
        let text = String::from_utf8_lossy(&resp);
        assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
        assert!(text.contains("Content-Length: 612"));
        assert_eq!(httpd.served(), 1);
        // No allocator leaks across requests.
        assert_eq!(httpd.alloc_stats().cur_bytes, 0);
    }

    #[test]
    fn stats_endpoint_serves_live_registry_json() {
        let mut net = Network::new();
        let ci = net.attach(mk_stack(1));
        let mut ss = mk_stack(2);
        let mut httpd = Httpd::new(&mut ss, 80, mk_alloc()).unwrap();
        let si = net.attach(ss);
        let conn = net
            .stack(ci)
            .tcp_connect(Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 80))
            .unwrap();
        for _ in 0..8 {
            net.run_until_quiet(16);
            httpd.poll(net.stack(si));
        }
        net.stack(ci)
            .tcp_send(conn, b"GET /stats HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        for _ in 0..8 {
            net.run_until_quiet(16);
            httpd.poll(net.stack(si));
        }
        let resp = net.stack(ci).tcp_recv(conn, 256 * 1024).unwrap();
        let text = String::from_utf8_lossy(&resp);
        assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
        assert!(text.contains("Content-Type: application/json"));
        let body = &text[text.find("\r\n\r\n").unwrap() + 4..];
        assert!(body.starts_with('{') && body.ends_with('}'), "JSON body");
        if ukstats::COMPILED_IN {
            // The datapath that carried this very request shows up in
            // the report it served.
            assert!(body.contains("\"netstack.rx_frames\":"), "{body}");
            assert!(body.contains("\"netstack.demux_tcp\":"));
            assert!(body.contains("\"netdev.tx_frames\":"));
            assert!(body.contains("\"netstack.pump_ns\":{\"count\":"));
        }
        assert_eq!(httpd.served(), 1);
    }

    #[test]
    fn missing_file_is_404() {
        let mut net = Network::new();
        let ci = net.attach(mk_stack(1));
        let mut ss = mk_stack(2);
        let mut httpd = Httpd::new(&mut ss, 80, mk_alloc()).unwrap();
        let si = net.attach(ss);
        let conn = net
            .stack(ci)
            .tcp_connect(Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 80))
            .unwrap();
        for _ in 0..4 {
            net.run_until_quiet(16);
            httpd.poll(net.stack(si));
        }
        net.stack(ci)
            .tcp_send(conn, b"GET /ghost HTTP/1.1\r\n\r\n")
            .unwrap();
        for _ in 0..4 {
            net.run_until_quiet(16);
            httpd.poll(net.stack(si));
        }
        let resp = net.stack(ci).tcp_recv(conn, 4096).unwrap();
        assert!(String::from_utf8_lossy(&resp).starts_with("HTTP/1.1 404"));
        assert_eq!(httpd.errors(), 1);
    }

    #[test]
    fn multiplexes_concurrent_connections_over_one_queue() {
        let mut net = Network::new();
        let c1 = net.attach(mk_stack(1));
        let c2 = net.attach(mk_stack(3));
        let mut ss = mk_stack(2);
        let mut httpd = Httpd::new(&mut ss, 80, mk_alloc()).unwrap();
        let si = net.attach(ss);
        let ep = Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 80);

        let conn1 = net.stack(c1).tcp_connect(ep).unwrap();
        let conn2 = net.stack(c2).tcp_connect(ep).unwrap();
        for _ in 0..8 {
            net.run_until_quiet(16);
            httpd.poll(net.stack(si));
        }
        assert_eq!(httpd.conn_count(), 2, "both connections accepted");

        net.stack(c1)
            .tcp_send(conn1, b"GET / HTTP/1.1\r\n\r\n")
            .unwrap();
        net.stack(c2)
            .tcp_send(conn2, b"GET /index.html HTTP/1.1\r\n\r\n")
            .unwrap();
        for _ in 0..8 {
            net.run_until_quiet(16);
            httpd.poll(net.stack(si));
        }
        for (ci, conn) in [(c1, conn1), (c2, conn2)] {
            let resp = net.stack(ci).tcp_recv(conn, 64 * 1024).unwrap();
            assert!(
                String::from_utf8_lossy(&resp).starts_with("HTTP/1.1 200 OK"),
                "client {ci} got a response"
            );
        }
        assert_eq!(httpd.served(), 2);
    }

    #[test]
    fn partial_write_survives_closed_tx_window() {
        let mut net = Network::new();
        let ci = net.attach(mk_stack(1));
        let mut ss = mk_stack(2);
        let mut httpd = Httpd::new(&mut ss, 80, mk_alloc()).unwrap();
        // A body larger than the peer's whole receive window (65535)
        // cannot be delivered in one go: the tx window must close.
        let big = vec![0x42u8; 200 * 1024];
        httpd.add_file("/big", big.clone());
        let si = net.attach(ss);

        let conn = net
            .stack(ci)
            .tcp_connect(Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 80))
            .unwrap();
        for _ in 0..8 {
            net.run_until_quiet(16);
            httpd.poll(net.stack(si));
        }
        net.stack(ci)
            .tcp_send(conn, b"GET /big HTTP/1.1\r\n\r\n")
            .unwrap();
        // Drive the network while the client drains its side slowly;
        // the server must keep the undelivered tail queued and resume
        // on EPOLLOUT edges instead of dropping bytes.
        let mut received = Vec::new();
        for _ in 0..600 {
            net.run_until_quiet(32);
            httpd.poll(net.stack(si));
            if let Ok(chunk) = net.stack(ci).tcp_recv(conn, 16 * 1024) {
                received.extend_from_slice(&chunk);
            }
            let expected_len = big.len() + header_len(&received);
            if !received.is_empty() && received.len() >= expected_len {
                break;
            }
        }
        let text_head = String::from_utf8_lossy(&received[..64.min(received.len())]);
        assert!(text_head.starts_with("HTTP/1.1 200 OK"), "{text_head}");
        let hdr = header_len(&received);
        assert_eq!(
            received.len() - hdr,
            big.len(),
            "every body byte survived the closed-window stretch"
        );
        assert_eq!(&received[hdr..], &big[..], "no bytes dropped or reordered");
        assert_eq!(httpd.served(), 1);
    }

    fn header_len(resp: &[u8]) -> usize {
        resp.windows(4)
            .position(|w| w == b"\r\n\r\n")
            .map(|p| p + 4)
            .unwrap_or(0)
    }

    #[test]
    fn blob_handler_streams_large_bodies_through_the_fast_path() {
        let mut net = Network::new();
        let ci = net.attach(mk_stack(1));
        let mut ss = mk_stack(2);
        let mut httpd = Httpd::new(&mut ss, 80, mk_alloc()).unwrap();
        let si = net.attach(ss);
        let conn = net
            .stack(ci)
            .tcp_connect(Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 80))
            .unwrap();
        for _ in 0..8 {
            net.run_until_quiet(16);
            httpd.poll(net.stack(si));
        }
        const SIZE: usize = 256 * 1024; // Several receive windows.
        net.stack(ci)
            .tcp_send(conn, format!("GET /blob/{SIZE} HTTP/1.1\r\n\r\n").as_bytes())
            .unwrap();
        let mut received = Vec::new();
        for _ in 0..2000 {
            net.run_until_quiet(32);
            httpd.poll(net.stack(si));
            if let Ok(chunk) = net.stack(ci).tcp_recv(conn, 64 * 1024) {
                received.extend_from_slice(&chunk);
            }
            if !received.is_empty() {
                let hdr = header_len(&received);
                if hdr > 0 && received.len() >= hdr + SIZE {
                    break;
                }
            }
        }
        let text_head = String::from_utf8_lossy(&received[..64.min(received.len())]);
        assert!(text_head.starts_with("HTTP/1.1 200 OK"), "{text_head}");
        assert!(String::from_utf8_lossy(&received[..header_len(&received)])
            .contains(&format!("Content-Length: {SIZE}")));
        let body = &received[header_len(&received)..];
        assert_eq!(body.len(), SIZE, "whole blob delivered");
        for (i, &b) in body.iter().enumerate() {
            assert_eq!(b, blob_byte(i), "blob byte {i}");
        }
        assert_eq!(httpd.served(), 1);
        // The transfer rode super-segments, not per-MSS frames.
        assert!(net.stack(si).stats().tso_super_frames > 0);
    }

    #[test]
    fn requests_pipelined_behind_a_blob_are_served_in_order() {
        let mut net = Network::new();
        let ci = net.attach(mk_stack(1));
        let mut ss = mk_stack(2);
        let mut httpd = Httpd::new(&mut ss, 80, mk_alloc()).unwrap();
        let si = net.attach(ss);
        let conn = net
            .stack(ci)
            .tcp_connect(Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 80))
            .unwrap();
        for _ in 0..8 {
            net.run_until_quiet(16);
            httpd.poll(net.stack(si));
        }
        const SIZE: usize = 100 * 1024;
        // A blob request and an index request in one write: the index
        // response must come after the full blob body.
        net.stack(ci)
            .tcp_send(
                conn,
                format!("GET /blob/{SIZE} HTTP/1.1\r\n\r\nGET /index.html HTTP/1.1\r\n\r\n")
                    .as_bytes(),
            )
            .unwrap();
        let mut received = Vec::new();
        for _ in 0..2000 {
            net.run_until_quiet(32);
            httpd.poll(net.stack(si));
            if let Ok(chunk) = net.stack(ci).tcp_recv(conn, 64 * 1024) {
                received.extend_from_slice(&chunk);
            }
            if httpd.served() == 2 && net.stack(si).tcp_send_capacity(conn) > 0 {
                // Both responses queued; drain the tail.
                let hdr1 = header_len(&received);
                if hdr1 > 0 && received.len() >= hdr1 + SIZE + 100 {
                    break;
                }
            }
        }
        assert_eq!(httpd.served(), 2, "both requests served");
        let hdr1 = header_len(&received);
        let body1 = &received[hdr1..hdr1 + SIZE];
        for (i, &b) in body1.iter().enumerate() {
            assert_eq!(b, blob_byte(i), "blob byte {i} precedes the second response");
        }
        let rest = &received[hdr1 + SIZE..];
        assert!(
            String::from_utf8_lossy(rest).starts_with("HTTP/1.1 200 OK"),
            "index response follows the blob intact"
        );
    }

    #[test]
    fn blob_completes_after_peer_half_close() {
        // A client that sends its request and immediately shuts its
        // write side (FIN) must still receive the entire promised
        // Content-Length body — a half-close is not an abort.
        let mut net = Network::new();
        let ci = net.attach(mk_stack(1));
        let mut ss = mk_stack(2);
        let mut httpd = Httpd::new(&mut ss, 80, mk_alloc()).unwrap();
        let si = net.attach(ss);
        let conn = net
            .stack(ci)
            .tcp_connect(Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 80))
            .unwrap();
        for _ in 0..8 {
            net.run_until_quiet(16);
            httpd.poll(net.stack(si));
        }
        const SIZE: usize = 200 * 1024; // Several receive windows.
        net.stack(ci)
            .tcp_send(conn, format!("GET /blob/{SIZE} HTTP/1.1\r\n\r\n").as_bytes())
            .unwrap();
        net.stack(ci).tcp_close(conn).unwrap(); // Half-close right away.
        let mut received = Vec::new();
        for _ in 0..2000 {
            net.run_until_quiet(32);
            httpd.poll(net.stack(si));
            if let Ok(chunk) = net.stack(ci).tcp_recv(conn, 64 * 1024) {
                received.extend_from_slice(&chunk);
            }
            let hdr = header_len(&received);
            if hdr > 0 && received.len() >= hdr + SIZE {
                break;
            }
        }
        let hdr = header_len(&received);
        assert_eq!(
            received.len() - hdr,
            SIZE,
            "full body delivered despite the early FIN"
        );
        let body = &received[hdr..];
        for (i, &b) in body.iter().enumerate() {
            assert_eq!(b, blob_byte(i), "blob byte {i}");
        }
        assert_eq!(httpd.conn_count(), 0, "connection reaped after the body");
    }

    #[test]
    fn oversized_blob_requests_are_rejected() {
        let mut net = Network::new();
        let ci = net.attach(mk_stack(1));
        let mut ss = mk_stack(2);
        let mut httpd = Httpd::new(&mut ss, 80, mk_alloc()).unwrap();
        let si = net.attach(ss);
        let conn = net
            .stack(ci)
            .tcp_connect(Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 80))
            .unwrap();
        for _ in 0..4 {
            net.run_until_quiet(16);
            httpd.poll(net.stack(si));
        }
        net.stack(ci)
            .tcp_send(conn, format!("GET /blob/{} HTTP/1.1\r\n\r\n", BLOB_MAX + 1).as_bytes())
            .unwrap();
        for _ in 0..8 {
            net.run_until_quiet(16);
            httpd.poll(net.stack(si));
        }
        let resp = net.stack(ci).tcp_recv(conn, 4096).unwrap();
        assert!(String::from_utf8_lossy(&resp).starts_with("HTTP/1.1 404"));
        assert_eq!(httpd.errors(), 1);
    }

    #[test]
    fn partial_request_then_fin_is_reaped() {
        let mut net = Network::new();
        let ci = net.attach(mk_stack(1));
        let mut ss = mk_stack(2);
        let mut httpd = Httpd::new(&mut ss, 80, mk_alloc()).unwrap();
        let si = net.attach(ss);
        let conn = net
            .stack(ci)
            .tcp_connect(Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 80))
            .unwrap();
        for _ in 0..4 {
            net.run_until_quiet(16);
            httpd.poll(net.stack(si));
        }
        assert_eq!(httpd.conn_count(), 1);
        // Half a request line, then FIN: no terminator will ever come.
        net.stack(ci).tcp_send(conn, b"GET / HTT").unwrap();
        net.stack(ci).tcp_close(conn).unwrap();
        for _ in 0..6 {
            net.run_until_quiet(16);
            httpd.poll(net.stack(si));
        }
        assert_eq!(
            httpd.conn_count(),
            0,
            "dead connection with unfinishable request must be reaped"
        );
        assert_eq!(httpd.event_queue_mut().len(), 1, "only the listener remains");
    }
}
