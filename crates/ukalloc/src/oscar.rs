//! Oscar-style secure allocator.
//!
//! The paper lists the Oscar page-permission-based secure allocator among
//! Unikraft's backends (§3.2). Oscar thwarts dangling-pointer reuse by
//! giving each allocation a fresh "shadow" virtual page and delaying
//! physical reuse. We reproduce the observable policy on top of TLSF:
//!
//! - every allocation gets a canary recorded at allocation time;
//! - `free` verifies the canary (overflow detection stand-in) and places
//!   the block in a FIFO *quarantine* instead of freeing it;
//! - blocks leave quarantine (and only then become reusable) once the
//!   quarantine exceeds its budget — approximating Oscar's delayed
//!   unmapping of shadow pages.

use std::collections::{HashMap, VecDeque};

use ukplat::{Errno, Result};

use crate::stats::AllocStats;
use crate::tlsf::TlsfAlloc;
use crate::{Allocator, GpAddr};

/// Maximum number of blocks held in quarantine before recycling begins.
const QUARANTINE_BLOCKS: usize = 64;

/// The guarded allocator state.
#[derive(Debug)]
pub struct OscarAlloc {
    inner: TlsfAlloc,
    canaries: HashMap<GpAddr, u64>,
    quarantine: VecDeque<GpAddr>,
    next_canary: u64,
}

impl Default for OscarAlloc {
    fn default() -> Self {
        Self::new()
    }
}

impl OscarAlloc {
    /// Creates an uninitialized guarded allocator.
    pub fn new() -> Self {
        OscarAlloc {
            inner: TlsfAlloc::new(),
            canaries: HashMap::new(),
            quarantine: VecDeque::new(),
            next_canary: 0xdead_0001,
        }
    }

    /// Number of blocks currently quarantined.
    pub fn quarantined(&self) -> usize {
        self.quarantine.len()
    }

    fn stamp(&mut self, ptr: GpAddr) {
        self.canaries.insert(ptr, self.next_canary);
        self.next_canary = self.next_canary.wrapping_mul(6364136223846793005).wrapping_add(1);
    }
}

impl Allocator for OscarAlloc {
    fn name(&self) -> &'static str {
        "Oscar"
    }

    fn init(&mut self, base: GpAddr, len: usize) -> Result<()> {
        if len < 4096 {
            return Err(Errno::Inval);
        }
        self.inner.init(base, len)
    }

    fn malloc(&mut self, size: usize) -> Option<GpAddr> {
        let p = self.inner.malloc(size)?;
        self.stamp(p);
        Some(p)
    }

    fn memalign(&mut self, align: usize, size: usize) -> Option<GpAddr> {
        let p = self.inner.memalign(align, size)?;
        self.stamp(p);
        Some(p)
    }

    fn free(&mut self, ptr: GpAddr) {
        // Canary check: a missing canary is a wild or double free.
        self.canaries
            .remove(&ptr)
            .unwrap_or_else(|| panic!("oscar: canary missing for {ptr:#x} (double/wild free)"));
        self.quarantine.push_back(ptr);
        // Recycle the oldest quarantined blocks beyond the budget.
        while self.quarantine.len() > QUARANTINE_BLOCKS {
            let victim = self.quarantine.pop_front().expect("non-empty");
            self.inner.free(victim);
        }
    }

    fn available(&self) -> usize {
        self.inner.available()
    }

    fn stats(&self) -> AllocStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk() -> OscarAlloc {
        let mut o = OscarAlloc::new();
        o.init(1 << 20, 4 << 20).unwrap();
        o
    }

    #[test]
    fn freed_blocks_are_not_immediately_reused() {
        let mut o = mk();
        let p = o.malloc(64).unwrap();
        o.free(p);
        // Unlike TLSF, the very next malloc must not return p.
        let q = o.malloc(64).unwrap();
        assert_ne!(p, q, "quarantine must delay reuse");
    }

    #[test]
    fn quarantine_drains_beyond_budget() {
        let mut o = mk();
        let mut ptrs = Vec::new();
        for _ in 0..QUARANTINE_BLOCKS + 10 {
            ptrs.push(o.malloc(64).unwrap());
        }
        for p in ptrs {
            o.free(p);
        }
        assert!(o.quarantined() <= QUARANTINE_BLOCKS);
    }

    #[test]
    #[should_panic(expected = "canary missing")]
    fn double_free_is_detected() {
        let mut o = mk();
        let p = o.malloc(64).unwrap();
        o.free(p);
        o.free(p);
    }

    #[test]
    #[should_panic(expected = "canary missing")]
    fn wild_free_is_detected() {
        let mut o = mk();
        o.free(0xbad);
    }

    #[test]
    fn memalign_is_guarded_too() {
        let mut o = mk();
        let p = o.memalign(256, 100).unwrap();
        assert_eq!(p % 256, 0);
        o.free(p);
        let q = o.memalign(256, 100).unwrap();
        assert_ne!(p, q);
    }
}
