//! Platform abstraction layer for `unikraft-rs`.
//!
//! In Unikraft, the platform layer (`plat/`) hides the differences between
//! hypervisors and VMMs (QEMU/KVM, Firecracker, Solo5, Xen, linuxu) behind a
//! small interface: memory-region discovery, a clock source, an interrupt
//! controller and early console. This crate reproduces that layer for a
//! simulated host: all *guest-side* work is real Rust code, while *host-side*
//! costs (traps, device setup, VMM process start) are charged to a virtual
//! cycle counter ([`time::Tsc`]) using constants calibrated from the paper
//! (see [`cost`]).
//!
//! # Examples
//!
//! ```
//! use ukplat::vmm::VmmKind;
//! use ukplat::Platform;
//!
//! let plat = Platform::new(VmmKind::Firecracker);
//! assert!(plat.vmm().attach_overhead_ns() < 10_000_000);
//! ```

pub mod cost;
pub mod irq;
pub mod lcpu;
pub mod memregion;
pub mod time;
pub mod vmm;

use std::fmt;

use crate::irq::IrqController;
use crate::memregion::MemRegionTable;
use crate::time::Tsc;
use crate::vmm::{Vmm, VmmKind};

/// POSIX-style error numbers used across all micro-libraries.
///
/// Unikraft's syscall shim returns negative errno values; we mirror the
/// subset the reproduced subsystems need.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Errno {
    /// Operation not permitted.
    Perm,
    /// No such file or directory.
    NoEnt,
    /// I/O error.
    Io,
    /// Bad file descriptor.
    BadF,
    /// Try again (would block).
    Again,
    /// Out of memory.
    NoMem,
    /// Permission denied.
    Acces,
    /// Device or resource busy.
    Busy,
    /// File exists.
    Exist,
    /// Not a directory.
    NotDir,
    /// Is a directory.
    IsDir,
    /// Invalid argument.
    Inval,
    /// Too many open files.
    MFile,
    /// No space left on device.
    NoSpc,
    /// Function not implemented.
    NoSys,
    /// Directory not empty.
    NotEmpty,
    /// Value too large for defined data type.
    Overflow,
    /// Connection refused.
    ConnRefused,
    /// Not connected.
    NotConn,
    /// Address already in use.
    AddrInUse,
    /// Message too long.
    MsgSize,
    /// Protocol not supported.
    ProtoNoSupport,
    /// Connection reset by peer.
    ConnReset,
    /// Broken pipe.
    Pipe,
    /// Operation timed out.
    TimedOut,
}

impl Errno {
    /// Returns the classic Linux errno number for this error.
    pub fn code(self) -> i32 {
        match self {
            Errno::Perm => 1,
            Errno::NoEnt => 2,
            Errno::Io => 5,
            Errno::BadF => 9,
            Errno::Again => 11,
            Errno::NoMem => 12,
            Errno::Acces => 13,
            Errno::Busy => 16,
            Errno::Exist => 17,
            Errno::NotDir => 20,
            Errno::IsDir => 21,
            Errno::Inval => 22,
            Errno::MFile => 24,
            Errno::NoSpc => 28,
            Errno::NoSys => 38,
            Errno::NotEmpty => 39,
            Errno::Overflow => 75,
            Errno::ConnRefused => 111,
            Errno::NotConn => 107,
            Errno::AddrInUse => 98,
            Errno::MsgSize => 90,
            Errno::ProtoNoSupport => 93,
            Errno::ConnReset => 104,
            Errno::Pipe => 32,
            Errno::TimedOut => 110,
        }
    }

    /// Returns the conventional upper-case symbol, e.g. `ENOSYS`.
    pub fn symbol(self) -> &'static str {
        match self {
            Errno::Perm => "EPERM",
            Errno::NoEnt => "ENOENT",
            Errno::Io => "EIO",
            Errno::BadF => "EBADF",
            Errno::Again => "EAGAIN",
            Errno::NoMem => "ENOMEM",
            Errno::Acces => "EACCES",
            Errno::Busy => "EBUSY",
            Errno::Exist => "EEXIST",
            Errno::NotDir => "ENOTDIR",
            Errno::IsDir => "EISDIR",
            Errno::Inval => "EINVAL",
            Errno::MFile => "EMFILE",
            Errno::NoSpc => "ENOSPC",
            Errno::NoSys => "ENOSYS",
            Errno::NotEmpty => "ENOTEMPTY",
            Errno::Overflow => "EOVERFLOW",
            Errno::ConnRefused => "ECONNREFUSED",
            Errno::NotConn => "ENOTCONN",
            Errno::AddrInUse => "EADDRINUSE",
            Errno::MsgSize => "EMSGSIZE",
            Errno::ProtoNoSupport => "EPROTONOSUPPORT",
            Errno::ConnReset => "ECONNRESET",
            Errno::Pipe => "EPIPE",
            Errno::TimedOut => "ETIMEDOUT",
        }
    }
}

impl fmt::Display for Errno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.symbol(), self.code())
    }
}

impl std::error::Error for Errno {}

/// Result alias used by all micro-libraries.
pub type Result<T> = std::result::Result<T, Errno>;

/// A fully assembled platform instance: VMM model, virtual TSC, memory
/// regions and the interrupt controller.
///
/// This is what `ukboot` receives as "the hardware".
#[derive(Debug, Clone)]
pub struct Platform {
    vmm: Vmm,
    tsc: Tsc,
    regions: MemRegionTable,
    irq: IrqController,
}

impl Platform {
    /// Creates a platform for the given VMM with the default 128 MiB of
    /// guest RAM.
    pub fn new(kind: VmmKind) -> Self {
        Self::with_memory(kind, 128 * 1024 * 1024)
    }

    /// Creates a platform with an explicit guest RAM size in bytes.
    pub fn with_memory(kind: VmmKind, ram_bytes: u64) -> Self {
        let tsc = Tsc::new(cost::CPU_FREQ_HZ);
        let vmm = Vmm::new(kind);
        let regions = MemRegionTable::standard_layout(ram_bytes);
        let irq = IrqController::new(irq::NLINES);
        Platform {
            vmm,
            tsc,
            regions,
            irq,
        }
    }

    /// The virtual time-stamp counter shared by all devices on this platform.
    pub fn tsc(&self) -> &Tsc {
        &self.tsc
    }

    /// The VMM model hosting this guest.
    pub fn vmm(&self) -> &Vmm {
        &self.vmm
    }

    /// Guest physical memory map.
    pub fn regions(&self) -> &MemRegionTable {
        &self.regions
    }

    /// The platform interrupt controller.
    pub fn irq(&self) -> &IrqController {
        &self.irq
    }

    /// Charges one hypervisor trap (VM exit + entry) to the virtual TSC.
    ///
    /// This is the cost every para-virtual device notification ("kick")
    /// pays when the backend lives in the host kernel.
    pub fn trap(&self) {
        self.tsc.advance(cost::VMEXIT_CYCLES);
    }

    /// Total guest RAM in bytes.
    pub fn ram_bytes(&self) -> u64 {
        self.regions.total_ram()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errno_codes_match_linux() {
        assert_eq!(Errno::NoEnt.code(), 2);
        assert_eq!(Errno::NoSys.code(), 38);
        assert_eq!(Errno::Inval.code(), 22);
        assert_eq!(Errno::Again.code(), 11);
    }

    #[test]
    fn errno_display_contains_symbol() {
        let s = format!("{}", Errno::NoMem);
        assert!(s.contains("ENOMEM"));
        assert!(s.contains("12"));
    }

    #[test]
    fn platform_trap_advances_tsc() {
        let plat = Platform::new(VmmKind::Qemu);
        let before = plat.tsc().now_cycles();
        plat.trap();
        assert_eq!(plat.tsc().now_cycles() - before, cost::VMEXIT_CYCLES);
    }

    #[test]
    fn platform_default_memory() {
        let plat = Platform::new(VmmKind::Solo5);
        assert_eq!(plat.ram_bytes(), 128 * 1024 * 1024);
    }
}
