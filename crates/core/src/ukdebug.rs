//! `ukdebug`: log levels, tracepoints and configurable assertions (§7).
//!
//! "Unikraft comes with a ukdebug micro-library that enables printing of
//! key messages at different (and configurable) levels of criticality…
//! \[and\] a trace point system also available through ukdebug's menu
//! options."

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::Mutex;

/// Message criticality levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Critical errors.
    Crit,
    /// Errors.
    Error,
    /// Warnings.
    Warn,
    /// Informational.
    Info,
    /// Debug chatter.
    Debug,
}

impl LogLevel {
    fn from_u8(v: u8) -> LogLevel {
        match v {
            0 => LogLevel::Crit,
            1 => LogLevel::Error,
            2 => LogLevel::Warn,
            3 => LogLevel::Info,
            _ => LogLevel::Debug,
        }
    }

    /// The lowercase tag printed in front of routed messages.
    pub fn tag(self) -> &'static str {
        match self {
            LogLevel::Crit => "crit",
            LogLevel::Error => "error",
            LogLevel::Warn => "warn",
            LogLevel::Info => "info",
            LogLevel::Debug => "debug",
        }
    }
}

/// The process-wide threshold behind the `log_*!` macros. `Info` by
/// default, like Unikraft's `CONFIG_LIBUKDEBUG_PRINTK_INFO`.
static GLOBAL_LEVEL: AtomicU8 = AtomicU8::new(LogLevel::Info as u8);
/// Per-module-prefix overrides (longest matching prefix wins).
static MODULE_LEVELS: Mutex<Vec<(String, LogLevel)>> = Mutex::new(Vec::new());
/// Fast-path flag: skip the override lock entirely when none are set.
static HAS_OVERRIDES: AtomicBool = AtomicBool::new(false);

/// Sets the process-wide threshold for the `log_*!` macros. Benches
/// drop this to `Warn` in machine-readable (`--json`) mode so debug
/// chatter cannot pollute the output being parsed.
pub fn set_global_level(level: LogLevel) {
    GLOBAL_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Overrides the threshold for every module whose `module_path!()`
/// starts with `prefix` — e.g. `set_module_level("uknetstack", Debug)`
/// turns on one subsystem's chatter without drowning in everyone
/// else's. The longest matching prefix wins; setting the same prefix
/// twice replaces the earlier entry.
pub fn set_module_level(prefix: &str, level: LogLevel) {
    let mut overrides = MODULE_LEVELS.lock().expect("ukdebug filter poisoned");
    if let Some(e) = overrides.iter_mut().find(|(p, _)| p == prefix) {
        e.1 = level;
    } else {
        overrides.push((prefix.to_string(), level));
    }
    HAS_OVERRIDES.store(true, Ordering::Relaxed);
}

/// Drops every per-module override, restoring the global threshold.
pub fn clear_module_levels() {
    MODULE_LEVELS.lock().expect("ukdebug filter poisoned").clear();
    HAS_OVERRIDES.store(false, Ordering::Relaxed);
}

/// The threshold in effect for `module`.
pub fn threshold_for(module: &str) -> LogLevel {
    if HAS_OVERRIDES.load(Ordering::Relaxed) {
        let overrides = MODULE_LEVELS.lock().expect("ukdebug filter poisoned");
        if let Some((_, level)) = overrides
            .iter()
            .filter(|(p, _)| module.starts_with(p.as_str()))
            .max_by_key(|(p, _)| p.len())
        {
            return *level;
        }
    }
    LogLevel::from_u8(GLOBAL_LEVEL.load(Ordering::Relaxed))
}

/// Whether a message at `level` from `module` passes the filter.
pub fn log_enabled(module: &str, level: LogLevel) -> bool {
    level <= threshold_for(module)
}

/// The sink behind the `log_*!` macros: filters by module and level,
/// then prints `[tag module] message` — `Warn` and above to stderr,
/// the rest to stdout. Not a hot-path facility; datapath events belong
/// in `uktrace` tracepoints, not log lines.
pub fn log_at(module: &str, level: LogLevel, args: std::fmt::Arguments<'_>) {
    if !log_enabled(module, level) {
        return;
    }
    if level <= LogLevel::Warn {
        eprintln!("[{} {module}] {args}", level.tag());
    } else {
        println!("[{} {module}] {args}", level.tag());
    }
}

/// Logs at `Crit` through the global filter (`println!` syntax).
#[macro_export]
macro_rules! log_crit {
    ($($arg:tt)*) => {
        $crate::ukdebug::log_at(
            module_path!(),
            $crate::ukdebug::LogLevel::Crit,
            format_args!($($arg)*),
        )
    };
}

/// Logs at `Error` through the global filter.
#[macro_export]
macro_rules! log_error {
    ($($arg:tt)*) => {
        $crate::ukdebug::log_at(
            module_path!(),
            $crate::ukdebug::LogLevel::Error,
            format_args!($($arg)*),
        )
    };
}

/// Logs at `Warn` through the global filter.
#[macro_export]
macro_rules! log_warn {
    ($($arg:tt)*) => {
        $crate::ukdebug::log_at(
            module_path!(),
            $crate::ukdebug::LogLevel::Warn,
            format_args!($($arg)*),
        )
    };
}

/// Logs at `Info` through the global filter — the level bench reports
/// ride on, suppressed wholesale by `--json` runs.
#[macro_export]
macro_rules! log_info {
    ($($arg:tt)*) => {
        $crate::ukdebug::log_at(
            module_path!(),
            $crate::ukdebug::LogLevel::Info,
            format_args!($($arg)*),
        )
    };
}

/// Logs at `Debug` through the global filter (off by default).
#[macro_export]
macro_rules! log_debug {
    ($($arg:tt)*) => {
        $crate::ukdebug::log_at(
            module_path!(),
            $crate::ukdebug::LogLevel::Debug,
            format_args!($($arg)*),
        )
    };
}

/// The configurable logger.
#[derive(Debug)]
pub struct Logger {
    level: LogLevel,
    entries: Vec<(LogLevel, String)>,
    /// Whether `UK_ASSERT`-style assertions are enabled.
    assertions: bool,
}

impl Logger {
    /// Creates a logger that keeps `Info` and above.
    pub fn new() -> Self {
        Self::with_level(LogLevel::Info)
    }

    /// Creates a logger with an explicit threshold.
    pub fn with_level(level: LogLevel) -> Self {
        Logger {
            level,
            entries: Vec::new(),
            assertions: true,
        }
    }

    /// Changes the threshold.
    pub fn set_level(&mut self, level: LogLevel) {
        self.level = level;
    }

    /// Enables/disables assertions (Kconfig switch).
    pub fn set_assertions(&mut self, on: bool) {
        self.assertions = on;
    }

    /// Logs a message if it passes the threshold.
    pub fn log(&mut self, level: LogLevel, msg: impl Into<String>) {
        if level <= self.level {
            self.entries.push((level, msg.into()));
        }
    }

    /// `UK_ASSERT`: panics on a violated condition when assertions are
    /// enabled; records a critical log entry otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `cond` is false and assertions are enabled.
    pub fn uk_assert(&mut self, cond: bool, msg: &str) {
        if !cond {
            if self.assertions {
                panic!("UK_ASSERT failed: {msg}");
            }
            self.entries.push((LogLevel::Crit, format!("assert: {msg}")));
        }
    }

    /// Recorded entries.
    pub fn entries(&self) -> &[(LogLevel, String)] {
        &self.entries
    }
}

impl Default for Logger {
    fn default() -> Self {
        Self::new()
    }
}

/// A bounded tracepoint ring buffer.
#[derive(Debug)]
pub struct TraceBuffer {
    ring: VecDeque<(u64, &'static str)>,
    capacity: usize,
    dropped: u64,
}

impl TraceBuffer {
    /// Creates a buffer holding `capacity` events.
    pub fn new(capacity: usize) -> Self {
        TraceBuffer {
            ring: VecDeque::with_capacity(capacity),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Records a tracepoint at `tsc` cycles.
    pub fn trace(&mut self, tsc: u64, point: &'static str) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back((tsc, point));
    }

    /// Events currently buffered, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &(u64, &'static str)> {
        self.ring.iter()
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_threshold_filters() {
        let mut l = Logger::with_level(LogLevel::Warn);
        l.log(LogLevel::Debug, "hidden");
        l.log(LogLevel::Error, "shown");
        assert_eq!(l.entries().len(), 1);
        assert_eq!(l.entries()[0].1, "shown");
    }

    #[test]
    #[should_panic(expected = "UK_ASSERT failed")]
    fn assert_panics_when_enabled() {
        let mut l = Logger::new();
        l.uk_assert(false, "boom");
    }

    #[test]
    fn assert_logs_when_disabled() {
        let mut l = Logger::new();
        l.set_assertions(false);
        l.uk_assert(false, "soft");
        assert_eq!(l.entries()[0].0, LogLevel::Crit);
    }

    #[test]
    fn module_filter_longest_prefix_wins() {
        // Global state: exercise the whole scenario in one test and
        // restore the defaults at the end.
        assert!(log_enabled("ukbench::netpath", LogLevel::Info));
        assert!(!log_enabled("ukbench::netpath", LogLevel::Debug));

        set_module_level("ukbench", LogLevel::Warn);
        set_module_level("ukbench::netpath", LogLevel::Debug);
        assert!(
            !log_enabled("ukbench::figures", LogLevel::Info),
            "short prefix silences siblings"
        );
        assert!(
            log_enabled("ukbench::netpath", LogLevel::Debug),
            "longer prefix wins for its subtree"
        );
        assert!(
            log_enabled("uknetstack::stack", LogLevel::Info),
            "unmatched modules keep the global threshold"
        );

        set_global_level(LogLevel::Error);
        assert!(!log_enabled("uknetstack::stack", LogLevel::Warn));
        assert!(log_enabled("uknetstack::stack", LogLevel::Error));

        clear_module_levels();
        set_global_level(LogLevel::Info);
        assert!(log_enabled("ukbench::figures", LogLevel::Info));
        // The macros route through the same sink without panicking.
        crate::log_debug!("suppressed by default: {}", 42);
        crate::log_warn!("filter smoke test (expected in test output)");
    }

    #[test]
    fn trace_ring_overwrites_oldest() {
        let mut t = TraceBuffer::new(2);
        t.trace(1, "a");
        t.trace(2, "b");
        t.trace(3, "c");
        let pts: Vec<_> = t.events().map(|(_, p)| *p).collect();
        assert_eq!(pts, ["b", "c"]);
        assert_eq!(t.dropped(), 1);
    }
}
