//! The dispatch table and cost modes.

use std::collections::HashMap;

use ukplat::cost;
use ukplat::time::Tsc;
use ukplat::Errno;

/// Registers a syscall handler with a shim, by name.
///
/// The Rust analog of Unikraft's `UK_SYSCALL_R_DEFINE` macro.
///
/// # Examples
///
/// ```
/// use uksyscall::shim::{SyscallMode, SyscallShim};
/// use uksyscall::uk_syscall_register;
/// use ukplat::time::Tsc;
///
/// let tsc = Tsc::new(3_600_000_000);
/// let mut shim = SyscallShim::new(SyscallMode::UnikraftNative, &tsc);
/// uk_syscall_register!(shim, getpid, |_args| 42);
/// assert_eq!(shim.invoke_by_name("getpid", &[]).unwrap(), 42);
/// ```
#[macro_export]
macro_rules! uk_syscall_register {
    ($shim:expr, $name:ident, $handler:expr) => {{
        let nr = $crate::nr::syscall_nr(stringify!($name))
            .expect(concat!("unknown syscall name: ", stringify!($name)));
        $shim.register(nr, Box::new($handler));
    }};
}

/// How syscalls reach their implementation (Table 1's rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyscallMode {
    /// Source-level Unikraft build: the shim generates a libc-level
    /// function and the "syscall" is a plain function call.
    UnikraftNative,
    /// Unikraft binary compatibility: the `syscall` instruction is
    /// trapped and translated at run time (84 cycles, Table 1).
    UnikraftBinCompat,
    /// Linux guest with default mitigations (KPTI etc.): 222 cycles.
    LinuxTrap,
    /// Linux guest with mitigations off: 154 cycles.
    LinuxTrapNoMitigations,
}

impl SyscallMode {
    /// The per-syscall entry/exit overhead in cycles (Table 1).
    pub fn overhead_cycles(self) -> u64 {
        match self {
            SyscallMode::UnikraftNative => cost::FUNCTION_CALL_CYCLES,
            SyscallMode::UnikraftBinCompat => cost::UNIKRAFT_SYSCALL_CYCLES,
            SyscallMode::LinuxTrap => cost::LINUX_SYSCALL_CYCLES,
            SyscallMode::LinuxTrapNoMitigations => cost::LINUX_SYSCALL_NOMIT_CYCLES,
        }
    }

    /// Display name used in Table 1.
    pub fn name(self) -> &'static str {
        match self {
            SyscallMode::UnikraftNative => "Unikraft function call",
            SyscallMode::UnikraftBinCompat => "Unikraft/KVM system call",
            SyscallMode::LinuxTrap => "Linux/KVM system call",
            SyscallMode::LinuxTrapNoMitigations => "Linux/KVM system call (no mitigations)",
        }
    }
}

/// A syscall handler: raw args in, Linux-convention result out
/// (negative errno on failure).
pub type Handler = Box<dyn FnMut(&[u64]) -> i64>;

/// The syscall shim: dispatch table, cost accounting, ENOSYS stubbing.
pub struct SyscallShim {
    table: HashMap<u32, Handler>,
    mode: SyscallMode,
    tsc: Tsc,
    invocations: u64,
    enosys_hits: u64,
    /// Numbers that were called but unimplemented (for coverage reports).
    missing: Vec<u32>,
}

impl std::fmt::Debug for SyscallShim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SyscallShim")
            .field("mode", &self.mode)
            .field("registered", &self.table.len())
            .field("invocations", &self.invocations)
            .finish()
    }
}

impl SyscallShim {
    /// Creates an empty shim in the given mode.
    pub fn new(mode: SyscallMode, tsc: &Tsc) -> Self {
        SyscallShim {
            table: HashMap::new(),
            mode,
            tsc: tsc.clone(),
            invocations: 0,
            enosys_hits: 0,
            missing: Vec::new(),
        }
    }

    /// Registers a handler for syscall `nr` (later registrations win,
    /// like link order in Unikraft).
    pub fn register(&mut self, nr: u32, handler: Handler) {
        self.table.insert(nr, handler);
    }

    /// Numbers with registered handlers.
    pub fn registered(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.table.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Invokes syscall `nr`, charging the mode's entry/exit cost and
    /// auto-stubbing missing implementations with `-ENOSYS`.
    pub fn invoke(&mut self, nr: u32, args: &[u64]) -> i64 {
        self.invocations += 1;
        self.tsc.advance(self.mode.overhead_cycles());
        match self.table.get_mut(&nr) {
            Some(h) => h(args),
            None => {
                self.enosys_hits += 1;
                if !self.missing.contains(&nr) {
                    self.missing.push(nr);
                }
                -i64::from(Errno::NoSys.code())
            }
        }
    }

    /// Invokes by name; `Err` if the name itself is unknown.
    pub fn invoke_by_name(&mut self, name: &str, args: &[u64]) -> Result<i64, Errno> {
        let nr = crate::nr::syscall_nr(name).ok_or(Errno::NoSys)?;
        Ok(self.invoke(nr, args))
    }

    /// Registers trivial success stubs for a set of syscalls — the
    /// "several can be quickly stubbed in a unikernel context" case
    /// (e.g. `getcpu` on a single CPU).
    pub fn stub_ok(&mut self, nrs: &[u32]) {
        for &nr in nrs {
            self.register(nr, Box::new(|_| 0));
        }
    }

    /// Current mode.
    pub fn mode(&self) -> SyscallMode {
        self.mode
    }

    /// Total invocations.
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// Calls that hit the ENOSYS auto-stub.
    pub fn enosys_hits(&self) -> u64 {
        self.enosys_hits
    }

    /// Distinct unimplemented numbers that were called.
    pub fn missing_syscalls(&self) -> &[u32] {
        &self.missing
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tsc() -> Tsc {
        Tsc::new(cost::CPU_FREQ_HZ)
    }

    #[test]
    fn registered_handler_is_called() {
        let t = tsc();
        let mut s = SyscallShim::new(SyscallMode::UnikraftNative, &t);
        s.register(39, Box::new(|_| 1234)); // getpid
        assert_eq!(s.invoke(39, &[]), 1234);
        assert_eq!(s.invocations(), 1);
    }

    #[test]
    fn missing_syscall_returns_enosys() {
        let t = tsc();
        let mut s = SyscallShim::new(SyscallMode::UnikraftNative, &t);
        assert_eq!(s.invoke(284, &[]), -38); // eventfd → -ENOSYS
        assert_eq!(s.enosys_hits(), 1);
        assert_eq!(s.missing_syscalls(), &[284]);
    }

    #[test]
    fn cost_modes_match_table1() {
        for (mode, cycles) in [
            (SyscallMode::UnikraftNative, 4),
            (SyscallMode::UnikraftBinCompat, 84),
            (SyscallMode::LinuxTrapNoMitigations, 154),
            (SyscallMode::LinuxTrap, 222),
        ] {
            let t = tsc();
            let mut s = SyscallShim::new(mode, &t);
            s.register(39, Box::new(|_| 0));
            s.invoke(39, &[]);
            assert_eq!(t.now_cycles(), cycles, "{}", mode.name());
        }
    }

    #[test]
    fn macro_registration_works() {
        let t = tsc();
        let mut s = SyscallShim::new(SyscallMode::UnikraftNative, &t);
        uk_syscall_register!(s, write, |args: &[u64]| args
            .get(2)
            .map(|n| *n as i64)
            .unwrap_or(-1));
        assert_eq!(s.invoke_by_name("write", &[1, 0, 17]).unwrap(), 17);
    }

    #[test]
    fn stub_ok_registers_batch() {
        let t = tsc();
        let mut s = SyscallShim::new(SyscallMode::UnikraftNative, &t);
        s.stub_ok(&[102, 104, 107, 108]); // uid/gid family
        assert_eq!(s.invoke(102, &[]), 0);
        assert_eq!(s.enosys_hits(), 0);
    }

    #[test]
    fn unknown_name_is_error() {
        let t = tsc();
        let mut s = SyscallShim::new(SyscallMode::UnikraftNative, &t);
        assert_eq!(
            s.invoke_by_name("frobnicate", &[]).unwrap_err(),
            Errno::NoSys
        );
    }

    #[test]
    fn args_are_passed_through() {
        let t = tsc();
        let mut s = SyscallShim::new(SyscallMode::UnikraftNative, &t);
        s.register(8, Box::new(|args| (args[0] + args[1]) as i64)); // lseek
        assert_eq!(s.invoke(8, &[40, 2]), 42);
    }
}
