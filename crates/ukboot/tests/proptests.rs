//! Property-based tests for page tables: the software walk agrees with
//! the mappings that were installed, for arbitrary mapping sets.

use proptest::prelude::*;

use ukboot::paging::{PageTables, PAGE_2M, PAGE_4K};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// translate() returns exactly the installed mapping for every
    /// mapped page and None for addresses in unmapped pages.
    #[test]
    fn walk_matches_installed_mappings(
        pages in proptest::collection::btree_map(0u64..4096, 0u64..4096, 1..40),
        probe in 0u64..4096,
        offset in 0u64..PAGE_4K,
    ) {
        let mut pt = PageTables::new();
        for (vpn, ppn) in &pages {
            pt.map_one(vpn * PAGE_4K, ppn * PAGE_4K, PAGE_4K).unwrap();
        }
        // Every installed page translates with offset preserved.
        for (vpn, ppn) in &pages {
            let va = vpn * PAGE_4K + offset;
            prop_assert_eq!(pt.translate(va), Some(ppn * PAGE_4K + offset));
        }
        // A probe either hits its installed mapping or nothing.
        let va = probe * PAGE_4K + offset;
        match pages.get(&probe) {
            Some(ppn) => prop_assert_eq!(pt.translate(va), Some(ppn * PAGE_4K + offset)),
            None => prop_assert_eq!(pt.translate(va), None),
        }
    }

    /// Identity maps cover exactly [0, len): inside translates to
    /// itself, beyond the mapped region fails.
    #[test]
    fn identity_map_covers_exact_range(
        mib in 2u64..256,
        inside in 0.0f64..1.0,
        beyond in 1u64..1024,
    ) {
        let len = mib << 20;
        let mut pt = PageTables::new();
        pt.map_identity(len, PAGE_2M).unwrap();
        let va = ((len as f64 * inside) as u64).min(len - 1);
        prop_assert_eq!(pt.translate(va), Some(va));
        // Past the rounded-up end, nothing is mapped.
        let end = len.div_ceil(PAGE_2M) * PAGE_2M;
        prop_assert_eq!(pt.translate(end + beyond * PAGE_2M), None);
    }

    /// Entry count grows monotonically with RAM size and the table
    /// count is exactly what the 4-level layout predicts for 2M pages.
    #[test]
    fn table_geometry_is_predictable(gib in 1u64..8) {
        let mut pt = PageTables::new();
        pt.map_identity(gib << 30, PAGE_2M).unwrap();
        // One PD per GiB + 1 PDPT + 1 PML4.
        prop_assert_eq!(pt.table_count() as u64, gib + 2);
        // 512 PDEs per GiB + intermediate entries.
        prop_assert_eq!(pt.entries_written(), gib * 512 + gib + 1);
    }
}
