//! Integration tests for the `ukevent` readiness subsystem: the
//! event-driven `httpd` multiplexing many concurrent connections over
//! one `EventQueue`, the epoll/eventfd family by syscall number, and a
//! parked `epoll_wait` woken through the scheduler instead of spinning.

use std::cell::RefCell;
use std::rc::Rc;

use unikraft_rs::alloc::AllocBackend;
use unikraft_rs::apps::httpd::Httpd;
use unikraft_rs::core::posix::{EPOLL_CTL_ADD, EVENT_FD_BASE};
use unikraft_rs::core::PosixEnv;
use unikraft_rs::event::{EventMask, EventQueue, WaitOutcome};
use unikraft_rs::netdev::backend::VhostKind;
use unikraft_rs::netdev::dev::{NetDev, NetDevConf};
use unikraft_rs::netdev::VirtioNet;
use unikraft_rs::netstack::stack::{NetStack, StackConfig};
use unikraft_rs::netstack::testnet::Network;
use unikraft_rs::netstack::{Endpoint, Ipv4Addr};
use unikraft_rs::plat::time::Tsc;
use unikraft_rs::sched::{CoopScheduler, Scheduler, StepResult, Thread};

fn mk_stack(n: u8) -> NetStack {
    let tsc = Tsc::new(3_600_000_000);
    let mut dev = VirtioNet::new(VhostKind::VhostUser, &tsc);
    dev.configure(NetDevConf::default()).unwrap();
    NetStack::new(StackConfig::node(n), Box::new(dev))
}

fn mk_alloc() -> Box<dyn unikraft_rs::alloc::Allocator> {
    let mut a = AllocBackend::Tlsf.instantiate();
    a.init(1 << 22, 8 << 20).unwrap();
    a
}

/// The acceptance-criteria scenario: one event-driven `Httpd` serves
/// many concurrent connections over `testnet`, all multiplexed through
/// the server's single `EventQueue`.
#[test]
fn httpd_serves_many_concurrent_connections_through_one_queue() {
    const CLIENTS: usize = 6;
    let mut net = Network::new();
    let client_idx: Vec<usize> = (0..CLIENTS)
        .map(|i| net.attach(mk_stack(10 + i as u8)))
        .collect();
    let mut server_stack = mk_stack(2);
    let mut httpd = Httpd::new(&mut server_stack, 80, mk_alloc()).unwrap();
    let si = net.attach(server_stack);
    let ep = Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 80);

    // All clients connect before the server polls once.
    let conns: Vec<_> = client_idx
        .iter()
        .map(|&ci| net.stack(ci).tcp_connect(ep).unwrap())
        .collect();
    for _ in 0..8 {
        net.run_until_quiet(32);
        httpd.poll(net.stack(si));
    }
    assert_eq!(httpd.conn_count(), CLIENTS, "all connections accepted");
    // One queue watches the listener plus every connection.
    assert_eq!(httpd.event_queue_mut().len(), CLIENTS + 1);

    // Interleaved requests: each client sends, nobody is starved.
    for (&ci, &conn) in client_idx.iter().zip(&conns) {
        net.stack(ci)
            .tcp_send(conn, b"GET /index.html HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
    }
    for _ in 0..12 {
        net.run_until_quiet(32);
        httpd.poll(net.stack(si));
    }
    assert_eq!(httpd.served(), CLIENTS as u64);
    for (&ci, &conn) in client_idx.iter().zip(&conns) {
        let resp = net.stack(ci).tcp_recv(conn, 64 * 1024).unwrap();
        let text = String::from_utf8_lossy(&resp);
        assert!(
            text.starts_with("HTTP/1.1 200 OK"),
            "client {ci}: {}",
            &text[..text.len().min(40)]
        );
        assert!(text.contains("Content-Length: 612"));
    }
    // Second round over the same (keep-alive) connections.
    for (&ci, &conn) in client_idx.iter().zip(&conns) {
        net.stack(ci)
            .tcp_send(conn, b"GET / HTTP/1.1\r\n\r\n")
            .unwrap();
    }
    for _ in 0..12 {
        net.run_until_quiet(32);
        httpd.poll(net.stack(si));
    }
    assert_eq!(httpd.served(), 2 * CLIENTS as u64);
}

/// The epoll/eventfd family works end-to-end *by syscall number*
/// through `PosixEnv::syscall`, with a netstack socket joining the same
/// interest list as an eventfd.
#[test]
fn epoll_family_multiplexes_eventfd_and_socket_by_syscall_number() {
    let tsc = Tsc::new(3_600_000_000);
    let mut posix = PosixEnv::new(&tsc);

    // A real UDP socket on a real stack, observed through the fd table.
    let mut net = Network::new();
    let ci = net.attach(mk_stack(1));
    let mut ss = mk_stack(2);
    let sock = ss.udp_bind(7000).unwrap();
    let sock_src = ss.ready_source(sock);
    let si = net.attach(ss);
    let sock_fd = posix.install_source(sock_src);

    let epfd = posix.syscall(291, &[0]) as u64; // epoll_create1
    assert!(epfd >= EVENT_FD_BASE);
    let efd = posix.syscall(290, &[0, 0]) as u64; // eventfd2
    for fd in [efd, sock_fd] {
        assert_eq!(
            posix.syscall(233, &[epfd, EPOLL_CTL_ADD, fd, u64::from(EventMask::IN.bits())]),
            0,
            "epoll_ctl ADD {fd}"
        );
    }

    // Quiet at first. (UDP sockets report EPOLLOUT, but we only asked
    // for EPOLLIN.)
    let evbuf = posix.user_buf(b"");
    assert_eq!(posix.syscall(232, &[epfd, evbuf, 16, 0]), 0);

    // A datagram arrives: the socket becomes readable.
    let csock = net.stack(ci).udp_bind(5000).unwrap();
    net.stack(ci)
        .udp_send_to(csock, b"ping", Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 7000))
        .unwrap();
    net.run_until_quiet(16);
    assert_eq!(posix.syscall(232, &[epfd, evbuf, 16, 0]), 1);
    let events = PosixEnv::decode_epoll_events(&posix.read_buf(evbuf).unwrap());
    assert_eq!(events[0].1, sock_fd);
    assert!(events[0].0.contains(EventMask::IN));

    // Kick the eventfd too: now both fds report.
    let one = posix.user_buf(&1u64.to_le_bytes());
    assert_eq!(posix.syscall(1, &[efd, one, 8]), 8);
    assert_eq!(posix.syscall(232, &[epfd, evbuf, 16, 0]), 2);

    // Drain the socket; only the eventfd stays ready.
    net.stack(si).udp_recv_from(sock).unwrap();
    assert_eq!(posix.syscall(232, &[epfd, evbuf, 16, 0]), 1);
    let events = PosixEnv::decode_epoll_events(&posix.read_buf(evbuf).unwrap());
    assert_eq!(events[0].1, efd);
}

/// `epoll_wait(timeout)` end to end: the thread parks with a deadline,
/// the queue's earliest deadline arms a hierarchical timer-wheel slot,
/// and advancing the virtual clock fires the wheel → expires the park
/// → wakes the thread through the scheduler — which then observes
/// `TimedOut` (epoll's "0 ready events") because no readiness arrived.
#[test]
fn timed_epoll_wait_expires_through_the_timer_wheel() {
    use unikraft_rs::netstack::timer::TimerWheel;

    let queue = Rc::new(RefCell::new(EventQueue::new()));
    let efd = Rc::new(RefCell::new(
        unikraft_rs::event::EventFd::new(0, 0).unwrap(),
    ));
    queue
        .borrow_mut()
        .ctl_add(1, &*efd.borrow(), EventMask::IN)
        .unwrap();

    let tsc = Tsc::new(3_600_000_000);
    let mut sched = CoopScheduler::new(&tsc);
    let now = Rc::new(RefCell::new(0u64)); // Virtual-clock ns.
    let outcome: Rc<RefCell<Option<&'static str>>> = Rc::new(RefCell::new(None));
    const TIMEOUT_NS: u64 = 5_000_000; // epoll_wait(…, 5 ms).

    let tid_holder: Rc<RefCell<Option<unikraft_rs::sched::ThreadId>>> =
        Rc::new(RefCell::new(None));
    let server = {
        let queue = queue.clone();
        let now = now.clone();
        let outcome = outcome.clone();
        let tid_holder = tid_holder.clone();
        Thread::new("timed-epoll", move || {
            let tid = tid_holder.borrow().expect("tid installed before run");
            let t = *now.borrow();
            match queue.borrow_mut().wait_until(8, tid, t, TIMEOUT_NS) {
                WaitOutcome::Parked => StepResult::Block,
                WaitOutcome::TimedOut => {
                    *outcome.borrow_mut() = Some("timeout");
                    StepResult::Exit
                }
                WaitOutcome::Ready(_) => {
                    *outcome.borrow_mut() = Some("ready");
                    StepResult::Exit
                }
            }
        })
    };
    let tid = sched.spawn(server);
    *tid_holder.borrow_mut() = Some(tid);

    // Park with the deadline recorded; no spinning while blocked.
    assert_eq!(sched.run_to_idle(), 1, "parked after one step");
    assert_eq!(queue.borrow().waiter_count(), 1);

    // The queue's earliest deadline becomes a wheel timer.
    let mut wheel = TimerWheel::new();
    let deadline = queue.borrow().next_deadline().expect("deadline armed");
    assert_eq!(deadline, TIMEOUT_NS);
    wheel.arm(deadline, 0xE9);

    // Advance the virtual clock in coarse ticks; the wheel, not the
    // caller, decides when the deadline is due.
    let mut fired = false;
    for step in 1..=10u64 {
        *now.borrow_mut() = step * 1_000_000;
        wheel.advance(*now.borrow(), |key, _| {
            assert_eq!(key, 0xE9);
            fired = true;
        });
        if fired {
            break;
        }
    }
    assert!(fired, "wheel fired within the timeout horizon");
    assert_eq!(queue.borrow_mut().fire_deadlines(*now.borrow()), 1);
    let woken = queue.borrow_mut().take_wakeups();
    assert_eq!(woken, vec![tid]);
    for id in woken {
        sched.wake(id).unwrap();
    }
    sched.run_to_idle();
    assert_eq!(*outcome.borrow(), Some("timeout"), "observed 0-event return");
    assert_eq!(sched.alive(), 0);
}

/// `epoll_wait` parks the calling thread on the queue's `WaitQueue` and
/// a readiness edge wakes it through the scheduler — no spinning: the
/// server thread runs a bounded number of steps while idle.
#[test]
fn parked_wait_is_woken_by_readiness_not_spinning() {
    let queue = Rc::new(RefCell::new(EventQueue::new()));
    let efd = Rc::new(RefCell::new(
        unikraft_rs::event::EventFd::new(0, 0).unwrap(),
    ));
    queue
        .borrow_mut()
        .ctl_add(1, &*efd.borrow(), EventMask::IN)
        .unwrap();

    let tsc = Tsc::new(3_600_000_000);
    let mut sched = CoopScheduler::new(&tsc);
    let observed: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));

    // The server thread: wait → park; on wake, consume and exit.
    let tid_holder: Rc<RefCell<Option<unikraft_rs::sched::ThreadId>>> =
        Rc::new(RefCell::new(None));
    let server = {
        let queue = queue.clone();
        let efd = efd.clone();
        let observed = observed.clone();
        let tid_holder = tid_holder.clone();
        Thread::new("epoll-server", move || {
            let tid = tid_holder.borrow().expect("tid installed before run");
            match queue.borrow_mut().wait(8, tid) {
                WaitOutcome::Ready(events) => {
                    for ev in events {
                        observed.borrow_mut().push(ev.token);
                    }
                    let v = efd.borrow_mut().read().unwrap();
                    observed.borrow_mut().push(v);
                    StepResult::Exit
                }
                _ => StepResult::Block,
            }
        })
    };
    let tid = sched.spawn(server);
    *tid_holder.borrow_mut() = Some(tid);

    // Run until everything is blocked: the thread parks (1 step), and
    // crucially does not spin while nothing is ready.
    let steps_idle = sched.run_to_idle();
    assert_eq!(steps_idle, 1, "parked after a single step, no busy-poll");
    assert_eq!(queue.borrow().waiter_count(), 1);
    assert!(observed.borrow().is_empty());

    // Readiness publication: the edge releases the thread.
    efd.borrow_mut().write(42).unwrap();
    let woken = queue.borrow_mut().take_wakeups();
    assert_eq!(woken, vec![tid], "edge produced exactly our wakeup");
    for id in woken {
        sched.wake(id).unwrap();
    }
    sched.run_to_idle();
    assert_eq!(&*observed.borrow(), &[1, 42], "event token then payload");
    assert_eq!(sched.alive(), 0, "server exited cleanly");
}
