//! Preemptive scheduler (`ukschedpreempt`).
//!
//! Quantum-based: a thread returning [`StepResult::Continue`] is forcibly
//! descheduled once its quantum of steps expires, paying the (higher)
//! preemptive context-switch cost — the "jitter caused by a scheduler
//! within the guest" the paper's run-to-completion configurations avoid.

use std::collections::{HashMap, VecDeque};

use ukplat::lcpu::Lcpu;
use ukplat::time::Tsc;
use ukplat::{Errno, Result};

use crate::thread::{StepResult, Thread, ThreadId, ThreadState};
use crate::Scheduler;

/// Default quantum, in thread steps.
pub const DEFAULT_QUANTUM: u64 = 8;

/// The preemptive scheduler over one logical CPU.
#[derive(Debug)]
pub struct PreemptScheduler {
    lcpu: Lcpu,
    tsc: Tsc,
    threads: HashMap<ThreadId, Thread>,
    runq: VecDeque<ThreadId>,
    next_id: u64,
    steps: u64,
    quantum: u64,
    preemptions: u64,
}

impl PreemptScheduler {
    /// Creates a scheduler with the default quantum.
    pub fn new(tsc: &Tsc) -> Self {
        Self::with_quantum(tsc, DEFAULT_QUANTUM)
    }

    /// Creates a scheduler with a custom quantum (steps).
    pub fn with_quantum(tsc: &Tsc, quantum: u64) -> Self {
        PreemptScheduler {
            lcpu: Lcpu::new(0, tsc),
            tsc: tsc.clone(),
            threads: HashMap::new(),
            runq: VecDeque::new(),
            next_id: 1,
            steps: 0,
            quantum: quantum.max(1),
            preemptions: 0,
        }
    }

    /// Number of forced preemptions so far.
    pub fn preemptions(&self) -> u64 {
        self.preemptions
    }

    fn wake_sleepers(&mut self) {
        let now = self.tsc.cycles_to_ns(self.tsc.now_cycles());
        let due: Vec<ThreadId> = self
            .threads
            .iter()
            .filter_map(|(id, t)| match t.state {
                ThreadState::Sleeping(until) if until <= now => Some(*id),
                _ => None,
            })
            .collect();
        for id in due {
            if let Some(t) = self.threads.get_mut(&id) {
                t.state = ThreadState::Ready;
                self.runq.push_back(id);
            }
        }
    }

    fn idle_until_next_deadline(&mut self) -> bool {
        let next = self
            .threads
            .values()
            .filter_map(|t| match t.state {
                ThreadState::Sleeping(until) => Some(until),
                _ => None,
            })
            .min();
        match next {
            Some(deadline) => {
                let now = self.tsc.cycles_to_ns(self.tsc.now_cycles());
                if deadline > now {
                    self.tsc.advance_ns(deadline - now);
                }
                self.wake_sleepers();
                true
            }
            None => false,
        }
    }

    fn run_one(&mut self, budget: u64) -> Option<u64> {
        self.wake_sleepers();
        let id = loop {
            match self.runq.pop_front() {
                Some(id) => {
                    if matches!(
                        self.threads.get(&id).map(|t| t.state),
                        Some(ThreadState::Ready)
                    ) {
                        break id;
                    }
                }
                None => {
                    if self.idle_until_next_deadline() {
                        continue;
                    }
                    return None;
                }
            }
        };
        self.lcpu.switch_to(id.0, true);
        let t = self.threads.get_mut(&id).expect("thread exists");
        t.state = ThreadState::Running;
        let mut ran = 0;
        let quantum = self.quantum.min(budget);
        loop {
            if ran >= quantum {
                // Timer interrupt: forced preemption.
                t.state = ThreadState::Ready;
                self.runq.push_back(id);
                self.preemptions += 1;
                break;
            }
            let r = (t.step)();
            t.steps_run += 1;
            self.steps += 1;
            ran += 1;
            match r {
                StepResult::Continue => continue,
                StepResult::Yield => {
                    t.state = ThreadState::Ready;
                    self.runq.push_back(id);
                    break;
                }
                StepResult::Block => {
                    t.state = ThreadState::Blocked;
                    break;
                }
                StepResult::Sleep(ns) => {
                    let now = self.tsc.cycles_to_ns(self.tsc.now_cycles());
                    t.state = ThreadState::Sleeping(now + ns);
                    break;
                }
                StepResult::Exit => {
                    t.state = ThreadState::Exited;
                    break;
                }
            }
        }
        Some(ran)
    }
}

impl Scheduler for PreemptScheduler {
    fn spawn(&mut self, thread: Thread) -> ThreadId {
        let id = ThreadId(self.next_id);
        self.next_id += 1;
        self.threads.insert(id, thread);
        self.runq.push_back(id);
        id
    }

    fn wake(&mut self, id: ThreadId) -> Result<()> {
        let t = self.threads.get_mut(&id).ok_or(Errno::Inval)?;
        match t.state {
            ThreadState::Blocked | ThreadState::Sleeping(_) => {
                t.state = ThreadState::Ready;
                self.runq.push_back(id);
                Ok(())
            }
            ThreadState::Exited => Err(Errno::Inval),
            _ => Ok(()),
        }
    }

    fn run_to_idle(&mut self) -> u64 {
        let mut total = 0;
        while let Some(n) = self.run_one(u64::MAX) {
            total += n;
        }
        total
    }

    fn run_steps(&mut self, n: u64) -> u64 {
        let mut total = 0;
        while total < n {
            match self.run_one(n - total) {
                Some(k) => total += k,
                None => break,
            }
        }
        total
    }

    fn alive(&self) -> usize {
        self.threads
            .values()
            .filter(|t| t.state != ThreadState::Exited)
            .count()
    }

    fn context_switches(&self) -> u64 {
        self.lcpu.switch_count()
    }

    fn name(&self) -> &'static str {
        "ukschedpreempt"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn tsc() -> Tsc {
        Tsc::new(1_000_000_000)
    }

    #[test]
    fn quantum_preempts_cpu_hog() {
        let t = tsc();
        let mut s = PreemptScheduler::with_quantum(&t, 2);
        let log = Rc::new(RefCell::new(Vec::new()));
        {
            let l = log.clone();
            let mut left = 4;
            s.spawn(Thread::new("hog", move || {
                if left == 0 {
                    return StepResult::Exit;
                }
                left -= 1;
                l.borrow_mut().push("hog");
                StepResult::Continue
            }));
        }
        {
            let l = log.clone();
            let mut done = false;
            s.spawn(Thread::new("meek", move || {
                if done {
                    return StepResult::Exit;
                }
                done = true;
                l.borrow_mut().push("meek");
                StepResult::Yield
            }));
        }
        s.run_to_idle();
        // Unlike the cooperative scheduler, meek runs before the hog ends.
        let log = log.borrow();
        let meek_pos = log.iter().position(|&n| n == "meek").unwrap();
        assert!(meek_pos < log.len() - 1, "meek preempted the hog: {log:?}");
        assert!(s.preemptions() >= 1);
    }

    #[test]
    fn preemptive_switches_cost_more_virtual_time() {
        let t_coop = tsc();
        let mut coop = crate::coop::CoopScheduler::new(&t_coop);
        coop.spawn(Thread::count_steps("a", 50));
        coop.spawn(Thread::count_steps("b", 50));
        coop.run_to_idle();

        let t_pre = tsc();
        let mut pre = PreemptScheduler::new(&t_pre);
        pre.spawn(Thread::count_steps("a", 50));
        pre.spawn(Thread::count_steps("b", 50));
        pre.run_to_idle();

        assert!(
            t_pre.now_cycles() > t_coop.now_cycles(),
            "preemptive jitter: {} vs coop {}",
            t_pre.now_cycles(),
            t_coop.now_cycles()
        );
    }

    #[test]
    fn sleep_and_wake_work_under_preemption() {
        let t = tsc();
        let mut s = PreemptScheduler::new(&t);
        let mut phase = 0;
        s.spawn(Thread::new("s", move || {
            phase += 1;
            match phase {
                1 => StepResult::Sleep(500),
                _ => StepResult::Exit,
            }
        }));
        s.run_to_idle();
        assert_eq!(s.alive(), 0);
    }

    #[test]
    fn invalid_wake_errors() {
        let t = tsc();
        let mut s = PreemptScheduler::new(&t);
        assert_eq!(s.wake(ThreadId(42)).unwrap_err(), Errno::Inval);
    }
}
