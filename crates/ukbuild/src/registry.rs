//! Micro-library metadata registry.
//!
//! Every micro-library has "its own Makefile and Kconfig configuration
//! files, and so can be added to the unikernel build independently of
//! each other" (§3). The registry records, per library: the architecture
//! layer it belongs to, its size contribution to the final image, and its
//! dependencies (which the build system pulls in automatically).
//!
//! Size contributions are calibrated so the per-application totals land
//! near the paper's Figure 8 (helloworld ≈ 257 KB, nginx ≈ 1.6 MB,
//! redis ≈ 1.8 MB, sqlite ≈ 1.6 MB in the default configuration).

use std::collections::HashMap;

/// Which layer of Figure 4 a micro-library belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layer {
    /// Application code.
    App,
    /// libc layer (nolibc, musl, newlib).
    Libc,
    /// POSIX compatibility layer (syscall shim, vfscore, posix-*).
    PosixCompat,
    /// OS primitives (allocators, schedulers, net/block APIs, stacks).
    OsPrimitive,
    /// Platform layer (KVM, Xen, drivers).
    Platform,
}

/// Metadata for one micro-library.
#[derive(Debug, Clone)]
pub struct MicroLib {
    /// Library name (matches the paper's figures, e.g. "lwip").
    pub name: &'static str,
    /// Architecture layer.
    pub layer: Layer,
    /// Size contribution in bytes (default build).
    pub size_bytes: u64,
    /// Fraction of the library kept after dead-code elimination when an
    /// app uses it through its public API (calibration: Fig 8's DCE
    /// deltas).
    pub dce_keep: f64,
    /// Dependencies resolved automatically by the build system.
    pub deps: &'static [&'static str],
}

/// The registry of all known micro-libraries.
#[derive(Debug, Clone)]
pub struct LibRegistry {
    libs: HashMap<&'static str, MicroLib>,
}

macro_rules! lib {
    ($libs:expr, $name:literal, $layer:expr, $size:expr, $dce:expr, [$($dep:literal),*]) => {
        $libs.insert(
            $name,
            MicroLib {
                name: $name,
                layer: $layer,
                size_bytes: $size,
                dce_keep: $dce,
                deps: &[$($dep),*],
            },
        );
    };
}

impl LibRegistry {
    /// Builds the standard Unikraft library universe.
    pub fn standard() -> Self {
        let mut libs = HashMap::new();
        use Layer::*;

        // Platform layer.
        lib!(libs, "plat-kvm", Platform, 60_000, 0.85, ["ukboot"]);
        lib!(libs, "plat-xen", Platform, 44_000, 0.85, ["ukboot"]);
        lib!(libs, "plat-linuxu", Platform, 30_000, 0.85, ["ukboot"]);
        lib!(libs, "virtio-net", Platform, 28_000, 0.9, ["uknetdev", "ukbus"]);
        lib!(libs, "virtio-blk", Platform, 22_000, 0.9, ["ukblockdev", "ukbus"]);
        lib!(libs, "virtio-9p", Platform, 24_000, 0.9, ["ukbus"]);
        lib!(libs, "ukbus", Platform, 8_000, 0.95, []);
        lib!(libs, "memregion", Platform, 4_000, 1.0, []);
        lib!(libs, "ukclock", Platform, 6_000, 0.95, []);

        // OS primitives.
        lib!(libs, "ukboot", OsPrimitive, 10_000, 1.0, ["ukalloc", "ukargparse", "memregion"]);
        lib!(libs, "dynamicboot", OsPrimitive, 14_000, 1.0, ["ukboot"]);
        lib!(libs, "ukalloc", OsPrimitive, 6_000, 1.0, []);
        lib!(libs, "ukallocbuddy", OsPrimitive, 12_000, 0.9, ["ukalloc"]);
        lib!(libs, "tlsf", OsPrimitive, 14_000, 0.9, ["ukalloc"]);
        lib!(libs, "mimalloc", OsPrimitive, 60_000, 0.85, ["ukalloc", "pthread"]);
        lib!(libs, "tinyalloc", OsPrimitive, 4_000, 0.95, ["ukalloc"]);
        lib!(libs, "bootalloc", OsPrimitive, 2_000, 1.0, ["ukalloc"]);
        lib!(libs, "uksched", OsPrimitive, 8_000, 0.95, ["ukalloc", "uklock"]);
        lib!(libs, "ukschedcoop", OsPrimitive, 6_000, 0.95, ["uksched"]);
        lib!(libs, "ukschedpreempt", OsPrimitive, 9_000, 0.95, ["uksched", "ukclock"]);
        lib!(libs, "uklock", OsPrimitive, 4_000, 0.95, []);
        lib!(libs, "uknetdev", OsPrimitive, 12_000, 0.9, ["ukalloc"]);
        lib!(libs, "ukblockdev", OsPrimitive, 10_000, 0.9, ["ukalloc"]);
        lib!(libs, "lwip", OsPrimitive, 220_000, 0.8, ["uknetdev", "uklock", "uksched"]);
        lib!(libs, "ukmpi", OsPrimitive, 5_000, 0.95, ["uklock"]);
        lib!(libs, "ukargparse", OsPrimitive, 3_000, 1.0, []);
        lib!(libs, "ukdebug", OsPrimitive, 7_000, 0.9, []);

        // POSIX compatibility layer.
        lib!(libs, "syscall-shim", PosixCompat, 15_000, 0.9, []);
        lib!(libs, "vfscore", PosixCompat, 40_000, 0.85, ["ukalloc", "uklock"]);
        lib!(libs, "ramfs", PosixCompat, 10_000, 0.9, ["vfscore"]);
        lib!(libs, "9pfs", PosixCompat, 28_000, 0.9, ["vfscore", "virtio-9p"]);
        lib!(libs, "shfs", PosixCompat, 18_000, 0.9, ["ukblockdev"]);
        lib!(libs, "posix-fdtab", PosixCompat, 8_000, 0.9, ["vfscore"]);
        lib!(libs, "posix-process", PosixCompat, 12_000, 0.85, ["syscall-shim"]);
        lib!(libs, "posix-socket", PosixCompat, 14_000, 0.9, ["lwip", "posix-fdtab"]);
        lib!(libs, "pthread", PosixCompat, 20_000, 0.85, ["uksched", "uklock"]);
        lib!(libs, "posix-time", PosixCompat, 5_000, 0.95, ["ukclock"]);

        // libc layer.
        lib!(libs, "nolibc", Libc, 25_000, 0.8, ["ukalloc"]);
        lib!(libs, "musl", Libc, 450_000, 0.55, ["syscall-shim", "ukalloc"]);
        lib!(libs, "newlib", Libc, 520_000, 0.55, ["syscall-shim", "ukalloc"]);
        lib!(libs, "glibc-compat", Libc, 30_000, 0.8, ["musl"]);

        // Applications (sizes: app code built by its native build system).
        lib!(libs, "app-helloworld", App, 2_000, 1.0, ["nolibc", "ukboot", "plat-kvm"]);
        lib!(
            libs,
            "app-nginx",
            App,
            720_000,
            0.75,
            ["musl", "posix-socket", "vfscore", "ramfs", "posix-fdtab", "posix-time",
             "ukschedcoop", "tlsf", "plat-kvm", "virtio-net", "ukdebug"]
        );
        lib!(
            libs,
            "app-redis",
            App,
            850_000,
            0.75,
            ["musl", "posix-socket", "vfscore", "ramfs", "posix-fdtab", "posix-time",
             "ukschedcoop", "mimalloc", "plat-kvm", "virtio-net", "ukdebug"]
        );
        lib!(
            libs,
            "app-sqlite",
            App,
            700_000,
            0.75,
            ["musl", "vfscore", "ramfs", "posix-fdtab", "posix-time", "tlsf",
             "plat-kvm", "ukdebug"]
        );
        lib!(
            libs,
            "app-webcache",
            App,
            60_000,
            0.9,
            ["nolibc", "shfs", "uknetdev", "plat-kvm", "virtio-net"]
        );

        LibRegistry { libs }
    }

    /// Looks up a library.
    pub fn get(&self, name: &str) -> Option<&MicroLib> {
        self.libs.get(name)
    }

    /// All library names.
    pub fn names(&self) -> Vec<&'static str> {
        let mut v: Vec<&'static str> = self.libs.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Number of registered libraries.
    pub fn len(&self) -> usize {
        self.libs.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.libs.is_empty()
    }

    /// Transitive dependency closure of `roots`.
    ///
    /// This is the build system pulling in dependencies automatically
    /// ("unless, of course, a micro-library has a dependency on another,
    /// in which case the build system also builds the dependency").
    pub fn closure(&self, roots: &[&str]) -> Result<Vec<&'static str>, String> {
        let mut seen: Vec<&'static str> = Vec::new();
        let mut stack: Vec<&str> = roots.to_vec();
        while let Some(name) = stack.pop() {
            let lib = self
                .libs
                .get(name)
                .ok_or_else(|| format!("unknown micro-library: {name}"))?;
            if seen.contains(&lib.name) {
                continue;
            }
            seen.push(lib.name);
            stack.extend(lib.deps.iter().copied());
        }
        seen.sort_unstable();
        Ok(seen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_is_populated() {
        let r = LibRegistry::standard();
        assert!(r.len() > 35);
        assert!(r.get("lwip").is_some());
        assert!(r.get("vfscore").is_some());
    }

    #[test]
    fn deps_reference_known_libs() {
        let r = LibRegistry::standard();
        for name in r.names() {
            for dep in r.get(name).unwrap().deps {
                assert!(r.get(dep).is_some(), "{name} depends on unknown {dep}");
            }
        }
    }

    #[test]
    fn closure_pulls_transitive_deps() {
        let r = LibRegistry::standard();
        let c = r.closure(&["app-helloworld"]).unwrap();
        assert!(c.contains(&"nolibc"));
        assert!(c.contains(&"ukboot"));
        assert!(c.contains(&"ukalloc"), "transitive via ukboot");
        // And not the network stack.
        assert!(!c.contains(&"lwip"));
    }

    #[test]
    fn nginx_closure_has_no_block_subsystem() {
        // §3: the nginx image "does not include a block subsystem since
        // it only uses RamFS".
        let r = LibRegistry::standard();
        let c = r.closure(&["app-nginx"]).unwrap();
        assert!(c.contains(&"lwip"));
        assert!(c.contains(&"ramfs"));
        assert!(!c.contains(&"ukblockdev"));
        assert!(!c.contains(&"virtio-blk"));
    }

    #[test]
    fn unknown_root_is_an_error() {
        let r = LibRegistry::standard();
        assert!(r.closure(&["app-nonexistent"]).is_err());
    }

    #[test]
    fn hello_is_much_smaller_than_nginx() {
        let r = LibRegistry::standard();
        let size = |roots: &[&str]| -> u64 {
            r.closure(roots)
                .unwrap()
                .iter()
                .map(|n| r.get(n).unwrap().size_bytes)
                .sum()
        };
        let hello = size(&["app-helloworld"]);
        let nginx = size(&["app-nginx"]);
        assert!(nginx > 5 * hello);
    }
}
