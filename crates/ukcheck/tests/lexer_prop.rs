//! Property tests for the ukcheck lexer: whatever mix of strings,
//! char/lifetime ticks, nested block comments and raw strings the
//! generator assembles, the lexer must never desynchronize — sentinel
//! identifiers planted *between* fragments must all come back out as
//! `Ident` tokens, in order, on exactly the line the builder put them.
//!
//! A desync (a fragment's terminator mis-scanned, swallowing the
//! following code into a string or comment) deletes or displaces a
//! sentinel, so the exact `(name, line)` comparison catches both
//! token-stream and line-counter drift.

use proptest::prelude::*;
use ukcheck::lexer::lex;

/// One source fragment: a string/char/comment/raw-string shape built
/// from generator-chosen filler. Filler alphabets exclude `z` and `q`
/// so fragment *content* can never collide with the `zq<i>` sentinels,
/// and exclude `#` so raw-string bodies can never fake a terminator.
fn fragment(kind: u8, a: &str, b: &str) -> String {
    let lt: String = a.chars().filter(|c| c.is_ascii_alphabetic()).collect();
    match kind {
        0 => format!("\"{a}\""),
        1 => format!("\"{a}\\\"{b}\""),        // escaped quote inside
        2 => format!("\"{a}\\\\\""),           // trailing escaped backslash
        3 => format!("r#\"{a}\"{b}\"#"),       // raw string containing a quote
        4 => format!("r\"{a}\""),
        5 => format!("br\"{a}\""),
        6 => "'x'".to_string(),
        7 => "'\\n'".to_string(),              // escaped char literal
        8 => format!("'lt{lt}"),               // lifetime tick
        9 => format!("// {a}\n"),
        10 => format!("/* {a} /* {b} */ {a} */"), // nested block comment
        11 => format!("/* {a}\n{b} */"),       // multi-line block comment
        12 => format!("r##\"{a}\n\"{b}\"##"),  // multi-line raw, hash depth 2
        13 => format!("\"{a}\\\n{b}\""),       // line continuation in string
        14 => format!("fn {lt}x(v: u8) -> u8 {{ v }}"),
        _ => format!("{a}; let n = 0x1f + {b}.len();"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn sentinels_survive_any_fragment_soup(
        frags in proptest::collection::vec(
            (0u8..16, "[a-p ]{0,10}", "[a-p ]{0,8}"),
            0..32,
        ),
    ) {
        let mut src = String::new();
        let mut line = 1u32;
        let mut expected: Vec<(String, u32)> = Vec::new();
        for (i, (kind, a, b)) in frags.iter().enumerate() {
            let frag = fragment(*kind, a, b);
            line += frag.matches('\n').count() as u32;
            src.push_str(&frag);
            // Plant the sentinel on its own line after the fragment.
            src.push('\n');
            line += 1;
            let name = format!("zq{i}");
            src.push_str(&name);
            expected.push((name, line));
            src.push('\n');
            line += 1;
        }
        let lexed = lex(&src);
        let got: Vec<(String, u32)> = lexed
            .toks
            .iter()
            .filter_map(|t| {
                t.ident()
                    .filter(|n| n.starts_with("zq"))
                    .map(|n| (n.to_string(), t.line))
            })
            .collect();
        prop_assert_eq!(&got, &expected, "desync lexing: {:?}", src);
        // No token or comment may claim a line past the end of input.
        let total = line;
        for t in &lexed.toks {
            prop_assert!(t.line >= 1 && t.line <= total, "token line {} > {total}", t.line);
        }
        for c in &lexed.comments {
            prop_assert!(c.start_line <= c.end_line && c.end_line <= total);
        }
    }

    #[test]
    fn lexer_total_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        // The lexer must terminate without panicking on arbitrary
        // (lossily decoded) input — unterminated strings, stray ticks,
        // truncated comments and all.
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let lexed = lex(&src);
        let total = src.matches('\n').count() as u32 + 1;
        for t in &lexed.toks {
            prop_assert!(t.line >= 1 && t.line <= total);
        }
    }
}
