//! The link step: image-size accounting with DCE and LTO passes.
//!
//! Figure 8 builds each application "for all combinations of DCE and
//! LTO". Our link model sums the size contributions of the resolved
//! micro-library set, then:
//!
//! - **DCE** drops the unreferenced fraction of each library (its
//!   `dce_keep` calibration — a libc is mostly unused by any one app,
//!   while a tiny purpose-built library is fully used);
//! - **LTO** applies cross-module inlining/merging shrink.
//!
//! The *mechanism* — fewer selected micro-libraries → smaller image —
//! is the real one; the per-library constants are calibrated.

use crate::config::BuildConfig;
use crate::registry::LibRegistry;

/// LTO's cross-module shrink factor (calibrated from Fig 8's LTO bars).
const LTO_FACTOR: f64 = 0.88;

/// Which optimization passes a build enables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkPass {
    /// Plain static link.
    Default,
    /// Link-time optimization only.
    Lto,
    /// Dead-code elimination only.
    Dce,
    /// Both (the paper's smallest images).
    DceLto,
}

impl LinkPass {
    /// All passes in Figure 8's order.
    pub fn all() -> [LinkPass; 4] {
        [LinkPass::Default, LinkPass::Lto, LinkPass::Dce, LinkPass::DceLto]
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            LinkPass::Default => "Default configuration",
            LinkPass::Lto => "+ Link-Time Optim. (LTO)",
            LinkPass::Dce => "+ Dead Code Elim. (DCE)",
            LinkPass::DceLto => "+ DCE + LTO",
        }
    }
}

/// The result of linking an image.
#[derive(Debug, Clone)]
pub struct ImageReport {
    /// Application name.
    pub app: &'static str,
    /// Pass used.
    pub pass: LinkPass,
    /// Final image size in bytes.
    pub size_bytes: u64,
    /// Libraries included.
    pub libs: Vec<&'static str>,
}

impl ImageReport {
    /// Size in KB (for report printing).
    pub fn size_kb(&self) -> f64 {
        self.size_bytes as f64 / 1024.0
    }
}

/// Links `config` with the given pass.
pub fn link_image(
    registry: &LibRegistry,
    config: &BuildConfig,
    pass: LinkPass,
) -> Result<ImageReport, String> {
    let libs = config.resolve(registry)?;
    let mut total = 0f64;
    for name in &libs {
        let lib = registry.get(name).expect("resolved lib exists");
        let mut sz = lib.size_bytes as f64;
        if matches!(pass, LinkPass::Dce | LinkPass::DceLto) {
            sz *= lib.dce_keep;
        }
        total += sz;
    }
    if matches!(pass, LinkPass::Lto | LinkPass::DceLto) {
        total *= LTO_FACTOR;
    }
    Ok(ImageReport {
        app: config.app,
        pass,
        size_bytes: total as u64,
        libs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(app: &'static str, pass: LinkPass) -> ImageReport {
        let r = LibRegistry::standard();
        link_image(&r, &BuildConfig::new(app), pass).unwrap()
    }

    #[test]
    fn passes_shrink_monotonically() {
        for app in ["app-helloworld", "app-nginx", "app-redis", "app-sqlite"] {
            let d = report(app, LinkPass::Default).size_bytes;
            let lto = report(app, LinkPass::Lto).size_bytes;
            let dce = report(app, LinkPass::Dce).size_bytes;
            let both = report(app, LinkPass::DceLto).size_bytes;
            assert!(lto < d, "{app}");
            assert!(dce < d, "{app}");
            assert!(both <= dce && both <= lto, "{app}");
        }
    }

    #[test]
    fn fig8_shapes_hold() {
        // Helloworld ~ hundreds of KB; apps under 2 MB (Fig 8: "all
        // under 2MBs for all of these applications").
        let hello = report("app-helloworld", LinkPass::Default);
        assert!(
            (100_000..400_000).contains(&hello.size_bytes),
            "hello = {}",
            hello.size_bytes
        );
        for app in ["app-nginx", "app-redis", "app-sqlite"] {
            let rep = report(app, LinkPass::Default);
            assert!(rep.size_bytes < 2_000_000, "{app} = {}", rep.size_bytes);
            assert!(rep.size_bytes > 1_000_000, "{app} = {}", rep.size_bytes);
        }
    }

    #[test]
    fn specialized_image_is_smaller() {
        let r = LibRegistry::standard();
        let full = link_image(&r, &BuildConfig::new("app-nginx"), LinkPass::DceLto).unwrap();
        let slim = link_image(
            &r,
            &BuildConfig::new("app-nginx")
                .without_lib("lwip")
                .without_lib("uksched")
                .with_lib("uknetdev"),
            LinkPass::DceLto,
        )
        .unwrap();
        assert!(slim.size_bytes < full.size_bytes);
    }

    #[test]
    fn report_lists_included_libs() {
        let rep = report("app-helloworld", LinkPass::Default);
        assert!(rep.libs.contains(&"nolibc"));
        assert!(rep.size_kb() > 0.0);
    }
}
