//! Quickstart: build and boot a minimal unikernel.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Composes the smallest possible image — platform bootstrap plus the
//! region allocator, no scheduler, no network — boots it on a modelled
//! Firecracker VMM, and prints the per-stage boot breakdown (the guest
//! side of the paper's Figure 10).

use unikraft_rs::core::UnikernelBuilder;
use unikraft_rs::plat::vmm::VmmKind;

fn main() {
    let mut uk = UnikernelBuilder::new("helloworld")
        .platform(VmmKind::Firecracker)
        .memory(8 * 1024 * 1024)
        .build()
        .expect("valid configuration");

    let report = uk.boot().expect("boot succeeds");

    println!("== {} booted on {} ==", report.app, report.vmm.name());
    println!("VMM setup : {:>10} ns (modelled)", report.vmm_ns);
    println!("guest boot: {:>10} ns (measured)", report.guest_ns);
    for stage in &report.stages {
        println!("  stage {:<10} {:>10} ns", stage.name, stage.ns);
    }
    println!("total     : {:>10} ns", report.total_ns());

    // The booted image can serve files from its embedded ramfs.
    let vfs = uk.vfs_mut().expect("vfs mounted");
    let fd = vfs.create("/hello.txt").expect("create");
    vfs.write(fd, b"hello from a unikernel").expect("write");
    vfs.lseek(fd, 0).expect("seek");
    let content = vfs.read(fd, 64).expect("read");
    println!("read back: {}", String::from_utf8_lossy(&content));
}
