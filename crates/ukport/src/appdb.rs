//! Syscall requirement database for the top-30 Debian server apps.
//!
//! The paper selects "the 30 most popular server applications" from the
//! Debian popularity contest and derives their syscall footprints via
//! static + dynamic (strace) analysis. We encode those footprints as
//! compositions of behavioural families — every server needs the base
//! process/memory set; network servers add sockets and event APIs;
//! forking servers add process management; databases add file and
//! SysV-IPC calls — matching the families visible in Figure 5.

use std::sync::LazyLock;

/// Base set every dynamically linked server binary touches.
static BASE: &[u32] = &[
    0,   // read
    1,   // write
    2,   // open
    3,   // close
    4,   // stat
    5,   // fstat
    8,   // lseek
    9,   // mmap
    10,  // mprotect
    11,  // munmap
    12,  // brk
    13,  // rt_sigaction
    14,  // rt_sigprocmask
    16,  // ioctl
    21,  // access
    32,  // dup
    33,  // dup2
    39,  // getpid
    60,  // exit
    63,  // uname
    72,  // fcntl
    79,  // getcwd
    89,  // readlink
    96,  // gettimeofday
    102, // getuid
    104, // getgid
    107, // geteuid
    108, // getegid
    158, // arch_prctl
    218, // set_tid_address
    228, // clock_gettime
    231, // exit_group
    273, // set_robust_list
    302, // prlimit64
];

/// Socket servers.
static NET: &[u32] = &[
    7,   // poll
    23,  // select
    41,  // socket
    42,  // connect
    43,  // accept
    44,  // sendto
    45,  // recvfrom
    46,  // sendmsg
    47,  // recvmsg
    48,  // shutdown
    49,  // bind
    50,  // listen
    51,  // getsockname
    54,  // setsockopt
    55,  // getsockopt
    288, // accept4
];

/// Event-loop APIs (partially WIP in Unikraft: eventfd is missing).
static EVENT: &[u32] = &[
    213, // epoll_create
    232, // epoll_wait
    233, // epoll_ctl
    281, // epoll_pwait
    284, // eventfd
    290, // eventfd2
    291, // epoll_create1
    293, // pipe2
];

/// Multi-process servers (fork/exec model).
static PROC: &[u32] = &[
    56,  // clone
    57,  // fork
    59,  // execve
    61,  // wait4
    62,  // kill
    109, // setpgid
    110, // getppid
    112, // setsid
    95,  // umask
    105, // setuid
    106, // setgid
    116, // setgroups
];

/// Heavy file I/O (databases, mail spools).
static FILES: &[u32] = &[
    17,  // pread64
    18,  // pwrite64
    19,  // readv
    20,  // writev
    40,  // sendfile
    74,  // fsync
    75,  // fdatasync
    77,  // ftruncate
    78,  // getdents
    80,  // chdir
    82,  // rename
    83,  // mkdir
    84,  // rmdir
    87,  // unlink
    90,  // chmod
    92,  // chown
    137, // statfs
    217, // getdents64
    257, // openat
];

/// Threading.
static THREADS: &[u32] = &[
    24,  // sched_yield
    28,  // madvise
    35,  // nanosleep
    186, // gettid
    202, // futex
    203, // sched_setaffinity
    204, // sched_getaffinity
    230, // clock_nanosleep
];

/// SysV IPC (big databases).
static SYSV_IPC: &[u32] = &[
    29, // shmget
    30, // shmat
    31, // shmctl
    64, // semget
    65, // semop
    66, // semctl
    67, // shmdt
];

/// Modern misc calls that trip up port efforts.
static MODERN: &[u32] = &[
    262, // newfstatat
    263, // unlinkat
    318, // getrandom
    131, // sigaltstack
    99,  // sysinfo
    97,  // getrlimit
    98,  // getrusage
];

/// An application and the syscalls it needs to run.
#[derive(Debug, Clone)]
pub struct AppRequirements {
    /// Debian package name.
    pub name: &'static str,
    /// Required syscall numbers (sorted, deduplicated).
    pub syscalls: Vec<u32>,
}

fn app(name: &'static str, families: &[&[u32]], extra: &[u32]) -> AppRequirements {
    let mut syscalls: Vec<u32> = families.iter().flat_map(|f| f.iter().copied()).collect();
    syscalls.extend_from_slice(extra);
    syscalls.sort_unstable();
    syscalls.dedup();
    AppRequirements { name, syscalls }
}

/// The 30 applications of Figures 5 and 7, in the paper's order.
pub static TOP30_APPS: LazyLock<Vec<AppRequirements>> = LazyLock::new(|| {
    vec![
        app("apache", &[BASE, NET, EVENT, PROC, FILES, THREADS], &[]),
        app("avahi", &[BASE, NET, PROC], &[22, 34]),
        app("bind9", &[BASE, NET, EVENT, FILES, THREADS], &[318]),
        app("dovecot", &[BASE, NET, PROC, FILES], &[53, 161]),
        app("exim", &[BASE, NET, PROC, FILES], &[86, 88]),
        app("firebird", &[BASE, NET, FILES, THREADS, SYSV_IPC], &[]),
        app("groonga", &[BASE, NET, EVENT, FILES, THREADS], &[]),
        app("h2o", &[BASE, NET, EVENT, THREADS], &[318, 293]),
        app("influxdb", &[BASE, NET, EVENT, FILES, THREADS, MODERN], &[]),
        app("knot", &[BASE, NET, EVENT, THREADS], &[299, 307]),
        app("lighttpd", &[BASE, NET, EVENT, FILES], &[]),
        app("mariadb", &[BASE, NET, FILES, THREADS, SYSV_IPC, MODERN], &[]),
        app("memcached", &[BASE, NET, EVENT, THREADS], &[]),
        app("mongodb", &[BASE, NET, EVENT, FILES, THREADS, MODERN], &[25]),
        app("mongoose", &[BASE, NET], &[]),
        app("mongrel", &[BASE, NET, PROC], &[]),
        app("mutt", &[BASE, FILES], &[76, 91]),
        app("mysql", &[BASE, NET, FILES, THREADS, SYSV_IPC, MODERN], &[]),
        app("nghttp", &[BASE, NET, EVENT, THREADS], &[]),
        app("nginx", &[BASE, NET, EVENT, FILES], &[53, 40]),
        app("nullmailer", &[BASE, NET, FILES], &[]),
        app("openlitespeedweb", &[BASE, NET, EVENT, PROC, FILES, THREADS], &[]),
        app("opensmtpd", &[BASE, NET, PROC, FILES], &[53]),
        app("postgresql", &[BASE, NET, PROC, FILES, SYSV_IPC, MODERN], &[23]),
        app("redis", &[BASE, NET, EVENT, THREADS], &[36, 38]),
        app("sqlite3", &[BASE, FILES], &[]),
        app("tntnet", &[BASE, NET, EVENT, THREADS], &[]),
        app("webfs", &[BASE, NET, FILES], &[40]),
        app("weborf", &[BASE, NET, FILES], &[40]),
        app("whitedb", &[BASE, FILES, SYSV_IPC], &[]),
    ]
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_thirty_apps() {
        assert_eq!(TOP30_APPS.len(), 30);
    }

    #[test]
    fn requirement_sets_are_sorted_unique() {
        for a in TOP30_APPS.iter() {
            for w in a.syscalls.windows(2) {
                assert!(w[0] < w[1], "{}: {} !< {}", a.name, w[0], w[1]);
            }
        }
    }

    #[test]
    fn every_app_needs_read_and_write() {
        for a in TOP30_APPS.iter() {
            assert!(a.syscalls.contains(&0), "{} missing read", a.name);
            assert!(a.syscalls.contains(&1), "{} missing write", a.name);
        }
    }

    #[test]
    fn databases_need_sysv_ipc() {
        let pg = TOP30_APPS.iter().find(|a| a.name == "postgresql").unwrap();
        assert!(pg.syscalls.contains(&29)); // shmget
        assert!(pg.syscalls.contains(&64)); // semget
        let ngx = TOP30_APPS.iter().find(|a| a.name == "nginx").unwrap();
        assert!(!ngx.syscalls.contains(&64));
    }

    #[test]
    fn footprints_are_realistic_sizes() {
        for a in TOP30_APPS.iter() {
            assert!(
                (30..140).contains(&a.syscalls.len()),
                "{}: {} syscalls",
                a.name,
                a.syscalls.len()
            );
        }
    }
}
