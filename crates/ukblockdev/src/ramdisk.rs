//! RAM-backed block device.

use std::collections::VecDeque;

use ukplat::{Errno, Result};

use crate::{BlockCompletion, BlockDev, BlockDevInfo, BlockReq, SECTOR_SIZE};

/// A volatile sector store.
#[derive(Debug)]
pub struct RamDisk {
    data: Vec<u8>,
    sectors: u64,
    completions: VecDeque<BlockCompletion>,
    reads: u64,
    writes: u64,
}

impl RamDisk {
    /// Creates a zeroed disk of `sectors` sectors.
    pub fn new(sectors: u64) -> Self {
        RamDisk {
            data: vec![0; sectors as usize * SECTOR_SIZE],
            sectors,
            completions: VecDeque::new(),
            reads: 0,
            writes: 0,
        }
    }

    /// Total read requests served.
    pub fn read_count(&self) -> u64 {
        self.reads
    }

    /// Total write requests served.
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    fn do_req(&mut self, req: &BlockReq) -> Result<Vec<u8>> {
        match req {
            BlockReq::Read { lba, count } => {
                let start = *lba as usize * SECTOR_SIZE;
                let len = *count as usize * SECTOR_SIZE;
                if lba + u64::from(*count) > self.sectors {
                    return Err(Errno::Inval);
                }
                self.reads += 1;
                Ok(self.data[start..start + len].to_vec())
            }
            BlockReq::Write { lba, data } => {
                if data.is_empty() || data.len() % SECTOR_SIZE != 0 {
                    return Err(Errno::Inval);
                }
                let count = (data.len() / SECTOR_SIZE) as u64;
                if lba + count > self.sectors {
                    return Err(Errno::NoSpc);
                }
                let start = *lba as usize * SECTOR_SIZE;
                self.data[start..start + data.len()].copy_from_slice(data);
                self.writes += 1;
                Ok(Vec::new())
            }
            BlockReq::Flush => Ok(Vec::new()),
        }
    }
}

impl BlockDev for RamDisk {
    fn info(&self) -> BlockDevInfo {
        BlockDevInfo {
            sectors: self.sectors,
            sector_size: SECTOR_SIZE,
            max_sectors_per_req: 256,
            read_only: false,
        }
    }

    fn submit(&mut self, token: u64, req: BlockReq) -> Result<()> {
        let result = self.do_req(&req);
        self.completions.push_back(BlockCompletion { token, result });
        Ok(())
    }

    fn poll(&mut self, out: &mut Vec<BlockCompletion>) -> usize {
        let n = self.completions.len();
        out.extend(self.completions.drain(..));
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_back() {
        let mut d = RamDisk::new(16);
        let payload = vec![7u8; SECTOR_SIZE];
        d.write_sync(3, &payload).unwrap();
        assert_eq!(d.read_sync(3, 1).unwrap(), payload);
        assert_eq!(d.read_count(), 1);
        assert_eq!(d.write_count(), 1);
    }

    #[test]
    fn out_of_range_read_fails() {
        let mut d = RamDisk::new(4);
        assert_eq!(d.read_sync(3, 2).unwrap_err(), Errno::Inval);
    }

    #[test]
    fn out_of_range_write_fails() {
        let mut d = RamDisk::new(2);
        let data = vec![0u8; SECTOR_SIZE * 3];
        assert_eq!(d.write_sync(0, &data).unwrap_err(), Errno::NoSpc);
    }

    #[test]
    fn unaligned_write_rejected() {
        let mut d = RamDisk::new(4);
        assert_eq!(d.write_sync(0, &[1, 2, 3]).unwrap_err(), Errno::Inval);
    }

    #[test]
    fn async_tokens_preserved() {
        let mut d = RamDisk::new(4);
        d.submit(42, BlockReq::Flush).unwrap();
        d.submit(43, BlockReq::Read { lba: 0, count: 1 }).unwrap();
        let mut done = Vec::new();
        assert_eq!(d.poll(&mut done), 2);
        assert_eq!(done[0].token, 42);
        assert_eq!(done[1].token, 43);
    }

    #[test]
    fn fresh_disk_reads_zeroes() {
        let mut d = RamDisk::new(2);
        assert!(d.read_sync(0, 2).unwrap().iter().all(|&b| b == 0));
    }
}
