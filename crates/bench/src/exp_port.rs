//! Table 2 and Figures 5–7: porting and syscall-compatibility analyses.

use ukport::analysis;
use ukport::appdb::TOP30_APPS;
use ukport::survey::{EffortCategory, SURVEY};
use ukport::table2::generate_table2;
use uksyscall::{syscall_name, UNIKRAFT_SUPPORTED};

fn tick(b: bool) -> &'static str {
    if b {
        "ok"
    } else {
        "X"
    }
}

/// Table 2: automated porting of externally-built archives.
pub fn tab2_automated_porting() -> String {
    let mut out = String::new();
    out.push_str("Table 2: automated porting (externally-built archives)\n");
    out.push_str(&format!(
        "{:<18} {:>9} {:>5} {:>7} | {:>9} {:>5} {:>7} | {:>5}\n",
        "library", "musl MB", "std", "compat", "newlib MB", "std", "compat", "glue"
    ));
    for row in generate_table2() {
        out.push_str(&format!(
            "{:<18} {:>9.3} {:>5} {:>7} | {:>9.3} {:>5} {:>7} | {:>5}\n",
            row.name,
            row.musl_size_mb,
            tick(row.musl_std),
            tick(row.musl_compat),
            row.newlib_size_mb,
            tick(row.newlib_std),
            tick(row.newlib_compat),
            row.glue_loc,
        ));
    }
    out
}

/// Figure 5: syscalls required by 30 server apps vs supported.
pub fn fig5_syscall_heatmap() -> String {
    let counts = analysis::usage_counts();
    let (needed_supported, needed, total) = analysis::heatmap_summary();
    let mut out = String::new();
    out.push_str("Figure 5: syscall requirement heatmap (30 server apps)\n");
    out.push_str(&format!(
        "syscalls needed by >=1 app: {needed} of {total}; supported among needed: {needed_supported}\n"
    ));
    out.push_str(&format!(
        "Unikraft implements {} syscalls total\n\n",
        UNIKRAFT_SUPPORTED.len()
    ));
    out.push_str("nr   name                 apps  supported\n");
    let mut nrs: Vec<u32> = counts.keys().copied().collect();
    nrs.sort_unstable();
    for nr in nrs {
        let supported = UNIKRAFT_SUPPORTED.contains(&nr);
        out.push_str(&format!(
            "{:<4} {:<20} {:>4}  {}\n",
            nr,
            syscall_name(nr).unwrap_or("?"),
            counts[&nr],
            if supported { "yes" } else { "NO" }
        ));
    }
    out
}

/// Figure 6: porting-effort survey timeline.
pub fn fig6_porting_survey() -> String {
    let mut out = String::new();
    out.push_str("Figure 6: developer survey of total porting effort (working days)\n");
    out.push_str(&format!(
        "{:<10} {:>10} {:>10} {:>12} {:>12} {:>8}\n",
        "quarter", "libraries", "deps", "OS prims", "build prims", "total"
    ));
    for q in SURVEY {
        out.push_str(&format!(
            "{:<10} {:>10} {:>10} {:>12} {:>12} {:>8}\n",
            q.quarter, q.libraries, q.dependencies, q.os_primitives, q.build_system, q.total()
        ));
    }
    out.push_str(&format!(
        "\ncategories: {:?}\n",
        EffortCategory::all().map(|c| c.label())
    ));
    out.push_str("take-away: effort declines as the common code base matures\n");
    out
}

/// Figure 7: per-app syscall support with top-N projections.
pub fn fig7_syscall_support() -> String {
    let top5 = analysis::top_missing(5);
    let top10 = analysis::top_missing(10);
    let mut out = String::new();
    out.push_str("Figure 7: syscall support for the top-30 server apps\n");
    out.push_str(&format!(
        "top-5 missing: {:?}\ntop-10 missing: {:?}\n\n",
        top5.iter()
            .map(|n| syscall_name(*n).unwrap_or("?"))
            .collect::<Vec<_>>(),
        top10
            .iter()
            .map(|n| syscall_name(*n).unwrap_or("?"))
            .collect::<Vec<_>>()
    ));
    out.push_str(&format!(
        "{:<18} {:>9} {:>9} {:>9} {:>9}\n",
        "app", "now %", "+top5 %", "+top10 %", "needed"
    ));
    for a in TOP30_APPS.iter() {
        let (s0, t) = analysis::coverage(a);
        let (s5, _) = analysis::coverage_with_extra(a, &top5);
        let (s10, _) = analysis::coverage_with_extra(a, &top10);
        out.push_str(&format!(
            "{:<18} {:>8.1}% {:>8.1}% {:>8.1}% {:>9}\n",
            a.name,
            100.0 * s0 as f64 / t as f64,
            100.0 * s5 as f64 / t as f64,
            100.0 * s10 as f64 / t as f64,
            t
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tab2_has_24_rows() {
        let t = tab2_automated_porting();
        assert_eq!(t.matches("lib-").count(), 24);
    }

    #[test]
    fn fig7_mostly_green() {
        let t = fig7_syscall_support();
        assert!(t.contains("nginx"));
        assert!(t.contains("+top5"));
    }

    #[test]
    fn fig5_reports_146() {
        assert!(fig5_syscall_heatmap().contains("146"));
    }
}
