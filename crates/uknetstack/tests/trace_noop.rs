//! The compile-out guarantee, asserted as a cfg test.
//!
//! Built with the `trace` feature off (`make verify-trace-off`), this
//! binary proves the no-op tracing path adds nothing to the stack:
//! the ring each `NetStack` embeds is a zero-sized type, recording is
//! inert, and `trace!` expands to no tokens at all — so `pump` and the
//! rest of the datapath carry no tracing code, not even a branch.

#![cfg(not(feature = "trace"))]

use uknetdev::backend::VhostKind;
use uknetdev::dev::{NetDev, NetDevConf};
use uknetdev::VirtioNet;
use uknetstack::stack::{NetStack, StackConfig};
use uknetstack::testnet::Network;
use uknetstack::{Endpoint, Ipv4Addr};
use ukplat::time::Tsc;

#[test]
fn noop_ring_is_zero_sized_and_inert() {
    assert!(!uktrace::COMPILED_IN);
    assert_eq!(
        std::mem::size_of::<uktrace::TraceRing>(),
        0,
        "a NetStack embeds a zero-sized ring when tracing is compiled out"
    );
    let mut ring = uktrace::TraceRing::new(1024);
    assert_eq!(ring.capacity(), 0);
    assert!(ring.is_empty());
    assert!(ring.drain().is_empty());
    assert_eq!(ring.dropped(), 0);
}

#[test]
fn datapath_runs_with_tracing_compiled_out_and_records_nothing() {
    let mk = |n: u8| {
        let tsc = Tsc::new(3_600_000_000);
        let mut dev = VirtioNet::new(VhostKind::VhostUser, &tsc);
        dev.configure(NetDevConf::default()).unwrap();
        NetStack::new(StackConfig::node(n), Box::new(dev))
    };
    let mut net = Network::new();
    let ci = net.attach(mk(1));
    let si = net.attach(mk(2));
    let listener = net.stack(si).tcp_listen(7).unwrap();
    let client = net
        .stack(ci)
        .tcp_connect(Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 7))
        .unwrap();
    net.run_until_quiet(32);
    let server = net.stack(si).tcp_accept(listener).unwrap();
    net.stack(ci).tcp_send(client, b"silent").unwrap();
    net.run_until_quiet(32);
    let mut buf = [0u8; 64];
    let n = net.stack(si).tcp_recv_into(server, &mut buf).unwrap();
    assert_eq!(&buf[..n], b"silent");
    // The scenario that fills the ring under `trace` leaves it empty:
    // every instrumentation site compiled to nothing.
    assert!(net.stack(si).trace_events().is_empty());
    assert!(net.stack(ci).trace_events().is_empty());
}
