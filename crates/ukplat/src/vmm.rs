//! VMM (virtual machine monitor) models.
//!
//! Figure 10 of the paper splits total boot time into "VMM" and "Unikraft
//! guest" portions: the guest boots in tens–hundreds of microseconds while
//! the VMM needs milliseconds (QEMU ≈ 38 ms, QEMU microVM ≈ 9 ms, Solo5 and
//! Firecracker ≈ 3 ms). The guest portion is *real code* in `ukboot`; the
//! VMM portion is the calibrated model in this module.

use serde::Serialize;

/// The VMMs/platforms evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum VmmKind {
    /// Stock QEMU with the `pc` machine model.
    Qemu,
    /// QEMU's stripped-down `microvm` machine model.
    QemuMicroVm,
    /// AWS Firecracker.
    Firecracker,
    /// Solo5 hvt tender.
    Solo5,
    /// Xen hypervisor (paravirtual guest).
    Xen,
    /// The `linuxu` debug platform: the unikernel runs as a Linux process,
    /// so there is no VMM at all.
    LinuxUserspace,
}

impl VmmKind {
    /// All VMM kinds, in the order Figure 10 lists them.
    pub fn all() -> [VmmKind; 6] {
        [
            VmmKind::Qemu,
            VmmKind::QemuMicroVm,
            VmmKind::Firecracker,
            VmmKind::Solo5,
            VmmKind::Xen,
            VmmKind::LinuxUserspace,
        ]
    }

    /// Human-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            VmmKind::Qemu => "QEMU",
            VmmKind::QemuMicroVm => "QEMU (MicroVM)",
            VmmKind::Firecracker => "Firecracker",
            VmmKind::Solo5 => "Solo5",
            VmmKind::Xen => "Xen",
            VmmKind::LinuxUserspace => "linuxu",
        }
    }
}

/// A VMM model: process start + machine setup costs, per-device attach
/// costs, and para-virtual transport properties.
#[derive(Debug, Clone, Serialize)]
pub struct Vmm {
    kind: VmmKind,
    /// Time to start the VMM process and create the VM, ns.
    attach_overhead_ns: u64,
    /// Extra setup time per attached virtio NIC, ns.
    nic_attach_ns: u64,
    /// Extra setup time per attached block device, ns.
    blk_attach_ns: u64,
    /// Extra setup time for a 9pfs share, ns (paper: +0.3 ms KVM, +2.7 ms Xen).
    p9_attach_ns: u64,
}

impl Vmm {
    /// Builds the calibrated model for `kind`.
    ///
    /// Calibration sources: paper Fig 10 (QEMU 38.4 ms, QEMU+1NIC 42.7 ms,
    /// microVM 9.1 ms, Solo5 3.1 ms, Firecracker 3.1 ms) and §5.2 for 9pfs
    /// attach costs.
    pub fn new(kind: VmmKind) -> Self {
        let (attach, nic, blk, p9) = match kind {
            VmmKind::Qemu => (38_300_000, 4_300_000, 3_500_000, 300_000),
            VmmKind::QemuMicroVm => (9_000_000, 1_200_000, 1_000_000, 300_000),
            VmmKind::Firecracker => (2_900_000, 450_000, 400_000, 300_000),
            VmmKind::Solo5 => (3_000_000, 350_000, 300_000, 300_000),
            VmmKind::Xen => (11_000_000, 2_000_000, 1_800_000, 2_700_000),
            VmmKind::LinuxUserspace => (200_000, 20_000, 20_000, 10_000),
        };
        Vmm {
            kind,
            attach_overhead_ns: attach,
            nic_attach_ns: nic,
            blk_attach_ns: blk,
            p9_attach_ns: p9,
        }
    }

    /// Which VMM this models.
    pub fn kind(&self) -> VmmKind {
        self.kind
    }

    /// Base VMM start + VM create cost in nanoseconds.
    pub fn attach_overhead_ns(&self) -> u64 {
        self.attach_overhead_ns
    }

    /// Total VMM-side setup time for a configuration with the given device
    /// counts, in nanoseconds.
    pub fn setup_ns(&self, nics: u32, blks: u32, p9_shares: u32) -> u64 {
        self.attach_overhead_ns
            + u64::from(nics) * self.nic_attach_ns
            + u64::from(blks) * self.blk_attach_ns
            + u64::from(p9_shares) * self.p9_attach_ns
    }

    /// 9pfs share attach cost (used by the Fig 20 text experiment).
    pub fn p9_attach_ns(&self) -> u64 {
        self.p9_attach_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_vmm_ordering() {
        // QEMU slowest, microVM middle, Solo5/Firecracker fastest.
        let q = Vmm::new(VmmKind::Qemu).attach_overhead_ns();
        let m = Vmm::new(VmmKind::QemuMicroVm).attach_overhead_ns();
        let s = Vmm::new(VmmKind::Solo5).attach_overhead_ns();
        let f = Vmm::new(VmmKind::Firecracker).attach_overhead_ns();
        assert!(q > m && m > s && s >= f);
    }

    #[test]
    fn nic_attach_adds_cost() {
        let v = Vmm::new(VmmKind::Qemu);
        assert!(v.setup_ns(1, 0, 0) > v.setup_ns(0, 0, 0));
        // Paper: QEMU with one NIC ≈ 42.7 ms total vs 38.4 ms without.
        let delta = v.setup_ns(1, 0, 0) - v.setup_ns(0, 0, 0);
        assert!((3_000_000..6_000_000).contains(&delta));
    }

    #[test]
    fn xen_9pfs_attach_much_larger_than_kvm() {
        let xen = Vmm::new(VmmKind::Xen).p9_attach_ns();
        let kvm = Vmm::new(VmmKind::Qemu).p9_attach_ns();
        // Paper §5.2: 0.3 ms on KVM, 2.7 ms on Xen.
        assert_eq!(kvm, 300_000);
        assert_eq!(xen, 2_700_000);
    }

    #[test]
    fn linuxu_has_negligible_overhead() {
        let v = Vmm::new(VmmKind::LinuxUserspace);
        assert!(v.attach_overhead_ns() < 1_000_000);
    }

    #[test]
    fn all_lists_six_kinds() {
        assert_eq!(VmmKind::all().len(), 6);
        assert_eq!(VmmKind::Qemu.name(), "QEMU");
    }
}
