//! Wait queues.
//!
//! Drivers and filesystems park threads here until an event (interrupt,
//! completion) wakes one or all of them — the mechanism behind §3.1's
//! "the interrupt callback could be used to unblock a receiving or
//! sending thread".

use std::collections::VecDeque;
use std::sync::OnceLock;

use crate::thread::ThreadId;

/// Global park/wake counters shared by every wait queue (names dedup in
/// the registry anyway; one resolve pays the registration lock once).
fn counters() -> &'static (ukstats::Counter, ukstats::Counter) {
    static C: OnceLock<(ukstats::Counter, ukstats::Counter)> = OnceLock::new();
    C.get_or_init(|| {
        (
            ukstats::Counter::register("uksched.parks"),
            ukstats::Counter::register("uksched.wakes"),
        )
    })
}

/// A FIFO wait queue of thread ids.
#[derive(Debug, Default, Clone)]
pub struct WaitQueue {
    waiters: VecDeque<ThreadId>,
}

impl WaitQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parks `id` on the queue. The caller must also block the thread in
    /// its scheduler.
    pub fn wait(&mut self, id: ThreadId) {
        if !self.waiters.contains(&id) {
            self.waiters.push_back(id);
            counters().0.inc();
        }
    }

    /// Removes and returns the first waiter.
    pub fn wake_one(&mut self) -> Option<ThreadId> {
        let woken = self.waiters.pop_front();
        if woken.is_some() {
            counters().1.inc();
        }
        woken
    }

    /// Drains all waiters.
    pub fn wake_all(&mut self) -> Vec<ThreadId> {
        let woken: Vec<ThreadId> = self.waiters.drain(..).collect();
        counters().1.add(woken.len() as u64);
        woken
    }

    /// Removes a specific thread (e.g. on timeout).
    pub fn remove(&mut self, id: ThreadId) -> bool {
        match self.waiters.iter().position(|w| *w == id) {
            Some(i) => {
                self.waiters.remove(i);
                true
            }
            None => false,
        }
    }

    /// Number of parked threads.
    pub fn len(&self) -> usize {
        self.waiters.len()
    }

    /// Whether nobody waits.
    pub fn is_empty(&self) -> bool {
        self.waiters.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = WaitQueue::new();
        q.wait(ThreadId(1));
        q.wait(ThreadId(2));
        assert_eq!(q.wake_one(), Some(ThreadId(1)));
        assert_eq!(q.wake_one(), Some(ThreadId(2)));
        assert_eq!(q.wake_one(), None);
    }

    #[test]
    fn duplicate_wait_ignored() {
        let mut q = WaitQueue::new();
        q.wait(ThreadId(1));
        q.wait(ThreadId(1));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn wake_all_drains() {
        let mut q = WaitQueue::new();
        for i in 0..5 {
            q.wait(ThreadId(i));
        }
        let woken = q.wake_all();
        assert_eq!(woken.len(), 5);
        assert!(q.is_empty());
    }

    #[test]
    fn remove_specific() {
        let mut q = WaitQueue::new();
        q.wait(ThreadId(1));
        q.wait(ThreadId(2));
        assert!(q.remove(ThreadId(1)));
        assert!(!q.remove(ThreadId(9)));
        assert_eq!(q.wake_one(), Some(ThreadId(2)));
    }
}
