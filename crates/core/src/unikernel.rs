//! The unikernel: configuration, boot, and composed subsystems.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

use ukalloc::registry::AllocId;
use ukalloc::{AllocBackend, AllocRegistry};
use ukboot::paging::PagingMode;
use ukboot::sequence::{BootConfig, BootReport, BootSequence, BootStage};
use uknetdev::backend::VhostKind;
use uknetdev::dev::{NetDev, NetDevConf};
use uknetdev::VirtioNet;
use uknetstack::stack::{NetStack, StackConfig};
use ukplat::time::Tsc;
use ukplat::vmm::VmmKind;
use ukplat::{Errno, Result};
use uksched::{CoopScheduler, PreemptScheduler, SchedPolicy, Scheduler};
use uksyscall::shim::{SyscallMode, SyscallShim};
use uksyscall::UNIKRAFT_SUPPORTED;
use ukvfs::{RamFs, Vfs};

use crate::ukdebug::Logger;

/// Network selection for a build.
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Host backend for the virtio NIC.
    pub backend: VhostKind,
    /// Node number (determines MAC 02:…:n and IP 10.0.0.n).
    pub node: u8,
    /// Whether to run the full stack (lwip path) or leave the raw
    /// `uknetdev` device to the application (scenario ➆).
    pub with_stack: bool,
}

/// The resolved configuration of a unikernel build.
#[derive(Debug, Clone)]
pub struct UnikernelConfig {
    /// Image/application name.
    pub name: String,
    /// Hosting VMM.
    pub vmm: VmmKind,
    /// Guest RAM.
    pub ram_bytes: u64,
    /// Paging mode.
    pub paging: PagingMode,
    /// Heap allocator backend.
    pub allocator: AllocBackend,
    /// Scheduler micro-library (or none: run-to-completion).
    pub sched: SchedPolicy,
    /// Optional network device/stack.
    pub net: Option<NetConfig>,
    /// Files embedded into the ramfs root.
    pub rootfs_files: Vec<(String, Vec<u8>)>,
    /// Whether to mount a VFS at all (specialized images may skip it).
    pub with_vfs: bool,
}

/// Builder for [`Unikernel`].
///
/// # Examples
///
/// ```
/// use ukcore::UnikernelBuilder;
/// use ukplat::vmm::VmmKind;
///
/// let mut uk = UnikernelBuilder::new("hello")
///     .platform(VmmKind::Firecracker)
///     .build()
///     .unwrap();
/// let report = uk.boot().unwrap();
/// assert!(report.guest_ns > 0);
/// ```
#[derive(Debug, Clone)]
pub struct UnikernelBuilder {
    config: UnikernelConfig,
}

impl UnikernelBuilder {
    /// Starts a minimal configuration: KVM, 16 MiB RAM, static paging,
    /// bootalloc, no scheduler, no network, ramfs VFS.
    pub fn new(name: impl Into<String>) -> Self {
        UnikernelBuilder {
            config: UnikernelConfig {
                name: name.into(),
                vmm: VmmKind::Qemu,
                ram_bytes: 16 * 1024 * 1024,
                paging: PagingMode::Static,
                allocator: AllocBackend::BootAlloc,
                sched: SchedPolicy::None,
                net: None,
                rootfs_files: Vec::new(),
                with_vfs: true,
            },
        }
    }

    /// Selects the VMM.
    pub fn platform(mut self, vmm: VmmKind) -> Self {
        self.config.vmm = vmm;
        self
    }

    /// Sets guest RAM.
    pub fn memory(mut self, bytes: u64) -> Self {
        self.config.ram_bytes = bytes;
        self
    }

    /// Selects the paging mode.
    pub fn paging(mut self, mode: PagingMode) -> Self {
        self.config.paging = mode;
        self
    }

    /// Selects the heap allocator.
    pub fn allocator(mut self, backend: AllocBackend) -> Self {
        self.config.allocator = backend;
        self
    }

    /// Selects the scheduler micro-library.
    pub fn scheduler(mut self, policy: SchedPolicy) -> Self {
        self.config.sched = policy;
        self
    }

    /// Attaches a virtio NIC (+ the lwip-path stack unless raw).
    pub fn with_net(mut self, backend: VhostKind, node: u8) -> Self {
        self.config.net = Some(NetConfig {
            backend,
            node,
            with_stack: true,
        });
        self
    }

    /// Attaches a raw `uknetdev` NIC without a stack (scenario ➆).
    pub fn with_raw_net(mut self, backend: VhostKind, node: u8) -> Self {
        self.config.net = Some(NetConfig {
            backend,
            node,
            with_stack: false,
        });
        self
    }

    /// Embeds a file into the ramfs image.
    pub fn with_file(mut self, path: impl Into<String>, data: Vec<u8>) -> Self {
        self.config.rootfs_files.push((path.into(), data));
        self
    }

    /// Drops the VFS layer entirely (SHFS-style specialization).
    pub fn without_vfs(mut self) -> Self {
        self.config.with_vfs = false;
        self
    }

    /// Validates and produces the unikernel (not yet booted).
    pub fn build(self) -> Result<Unikernel> {
        if self.config.ram_bytes < 4 * 1024 * 1024 {
            return Err(Errno::NoMem);
        }
        if !self.config.rootfs_files.is_empty() && !self.config.with_vfs {
            return Err(Errno::Inval); // Files need a filesystem.
        }
        Ok(Unikernel::new(self.config))
    }
}

/// A composed, bootable unikernel instance.
pub struct Unikernel {
    config: UnikernelConfig,
    tsc: Tsc,
    registry: Option<AllocRegistry>,
    heap: Option<AllocId>,
    vfs: Option<Vfs>,
    stack: Option<NetStack>,
    raw_net: Option<VirtioNet>,
    sched: Option<Box<dyn Scheduler>>,
    shim: SyscallShim,
    logger: Logger,
    report: Option<BootReport>,
}

impl std::fmt::Debug for Unikernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Unikernel")
            .field("name", &self.config.name)
            .field("booted", &self.report.is_some())
            .finish()
    }
}

impl Unikernel {
    fn new(config: UnikernelConfig) -> Self {
        let tsc = Tsc::new(ukplat::cost::CPU_FREQ_HZ);
        let shim = SyscallShim::new(SyscallMode::UnikraftNative, &tsc);
        Unikernel {
            config,
            tsc,
            registry: None,
            heap: None,
            vfs: None,
            stack: None,
            raw_net: None,
            sched: None,
            shim,
            logger: Logger::new(),
            report: None,
        }
    }

    /// Boots the unikernel: VMM setup (modelled) + the real staged guest
    /// boot, then brings up the selected subsystems, timing each as its
    /// own stage (Figure 14's per-library breakdown).
    pub fn boot(&mut self) -> Result<BootReport> {
        let cfg = &self.config;
        let nics = u32::from(cfg.net.is_some());
        let boot_cfg = BootConfig {
            app: cfg.name.clone(),
            vmm: cfg.vmm,
            ram_bytes: cfg.ram_bytes,
            paging: cfg.paging,
            allocator: cfg.allocator,
            nics,
            blks: 0,
            p9_shares: 0,
        };
        let mut seq = BootSequence::new(boot_cfg);

        // Stage: virtio — probe the NIC (allocates descriptor memory).
        let net_cfg = cfg.net;
        let dev_slot: Rc<RefCell<Option<VirtioNet>>> = Rc::new(RefCell::new(None));
        if let Some(nc) = net_cfg {
            let slot = dev_slot.clone();
            let tsc = self.tsc.clone();
            seq.add_stage("virtio", move |_plat, reg| {
                let mut dev = VirtioNet::new(nc.backend, &tsc);
                dev.configure(NetDevConf::default())?;
                // Descriptor-area allocation from the heap.
                let id = reg.default_id().ok_or(Errno::NoMem)?;
                for _ in 0..8 {
                    reg.malloc(id, 4096).ok_or(Errno::NoMem)?;
                }
                *slot.borrow_mut() = Some(dev);
                Ok(())
            });
        }

        let mut report = seq.run()?;

        // Stage: rootfs — mount the VFS and populate the ramfs.
        if cfg.with_vfs {
            let t = Instant::now();
            let mut ramfs = RamFs::new();
            for (path, data) in &cfg.rootfs_files {
                ramfs.add_file(path.trim_start_matches('/'), data)?;
            }
            let mut vfs = Vfs::new();
            vfs.mount("/", Box::new(ramfs))?;
            self.vfs = Some(vfs);
            report.stages.push(BootStage {
                name: "rootfs".into(),
                ns: t.elapsed().as_nanos() as u64,
            });
        }

        // Stage: lwip — bring up the stack over the probed device.
        if let Some(nc) = net_cfg {
            let dev = dev_slot.borrow_mut().take().ok_or(Errno::Io)?;
            if nc.with_stack {
                let t = Instant::now();
                let stack = NetStack::new(StackConfig::node(nc.node), Box::new(dev));
                self.stack = Some(stack);
                report.stages.push(BootStage {
                    name: "lwip".into(),
                    ns: t.elapsed().as_nanos() as u64,
                });
            } else {
                self.raw_net = Some(dev);
            }
        }

        // Stage: sched — instantiate the selected scheduler.
        if cfg.sched != SchedPolicy::None {
            let t = Instant::now();
            self.sched = Some(match cfg.sched {
                SchedPolicy::Coop => Box::new(CoopScheduler::new(&self.tsc)),
                SchedPolicy::Preempt => Box::new(PreemptScheduler::new(&self.tsc)),
                SchedPolicy::None => unreachable!(),
            });
            report.stages.push(BootStage {
                name: "sched".into(),
                ns: t.elapsed().as_nanos() as u64,
            });
        }

        // Stage: shim — register the supported syscall surface.
        {
            let t = Instant::now();
            self.shim.stub_ok(&UNIKRAFT_SUPPORTED);
            report.stages.push(BootStage {
                name: "shim".into(),
                ns: t.elapsed().as_nanos() as u64,
            });
        }

        report.guest_ns = report.stages.iter().map(|s| s.ns).sum();
        self.registry = seq.registry_mut().map(std::mem::take);
        self.heap = seq.heap_id();
        self.report = Some(report.clone());
        Ok(report)
    }

    /// Allocates an application working set after boot; used by the
    /// minimum-memory search of Figure 11. Fails with `ENOMEM` when the
    /// configured RAM cannot hold it.
    pub fn allocate_workset(&mut self, bytes: usize) -> Result<()> {
        let reg = self.registry.as_mut().ok_or(Errno::Inval)?;
        let heap = self.heap.ok_or(Errno::Inval)?;
        let chunk = 64 * 1024;
        let mut left = bytes;
        while left > 0 {
            let n = left.min(chunk);
            reg.malloc(heap, n).ok_or(Errno::NoMem)?;
            left -= n;
        }
        Ok(())
    }

    /// The boot report, if booted.
    pub fn report(&self) -> Option<&BootReport> {
        self.report.as_ref()
    }

    /// The composed VFS.
    pub fn vfs_mut(&mut self) -> Option<&mut Vfs> {
        self.vfs.as_mut()
    }

    /// The composed network stack.
    pub fn stack_mut(&mut self) -> Option<&mut NetStack> {
        self.stack.as_mut()
    }

    /// Takes the network stack out (to attach it to a testnet hub).
    pub fn take_stack(&mut self) -> Option<NetStack> {
        self.stack.take()
    }

    /// The raw `uknetdev` device for stack-less builds.
    pub fn raw_net_mut(&mut self) -> Option<&mut VirtioNet> {
        self.raw_net.as_mut()
    }

    /// The scheduler, if configured.
    pub fn sched_mut(&mut self) -> Option<&mut Box<dyn Scheduler>> {
        self.sched.as_mut()
    }

    /// The syscall shim.
    pub fn shim_mut(&mut self) -> &mut SyscallShim {
        &mut self.shim
    }

    /// The allocator registry (post-boot).
    pub fn registry_mut(&mut self) -> Option<&mut AllocRegistry> {
        self.registry.as_mut()
    }

    /// The heap allocator id.
    pub fn heap_id(&self) -> Option<AllocId> {
        self.heap
    }

    /// The debug logger.
    pub fn logger_mut(&mut self) -> &mut Logger {
        &mut self.logger
    }

    /// The platform TSC.
    pub fn tsc(&self) -> &Tsc {
        &self.tsc
    }

    /// Configuration snapshot.
    pub fn config(&self) -> &UnikernelConfig {
        &self.config
    }
}

/// Finds the minimum guest RAM (bytes, 1 MiB granularity) for which
/// `make()`'s unikernel boots and can allocate `workset` bytes — the
/// Figure 11 measurement.
pub fn min_memory_to_run(
    make: impl Fn(u64) -> UnikernelBuilder,
    workset: usize,
) -> Result<u64> {
    const MIB: u64 = 1024 * 1024;
    let mut lo = 4 * MIB;
    let mut hi = 512 * MIB;
    let runs = |ram: u64| -> bool {
        match make(ram).memory(ram).build() {
            Ok(mut uk) => uk.boot().is_ok() && uk.allocate_workset(workset).is_ok(),
            Err(_) => false,
        }
    };
    if !runs(hi) {
        return Err(Errno::NoMem);
    }
    if runs(lo) {
        return Ok(lo);
    }
    while hi - lo > MIB {
        let mid = (lo + hi) / 2 / MIB * MIB;
        if runs(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_unikernel_boots() {
        let mut uk = UnikernelBuilder::new("hello")
            .platform(VmmKind::Firecracker)
            .build()
            .unwrap();
        let r = uk.boot().unwrap();
        assert!(r.guest_ns > 0);
        assert!(r.vmm_ns > 0);
        assert!(uk.vfs_mut().is_some());
        assert!(uk.stack_mut().is_none());
    }

    #[test]
    fn full_server_image_composes_everything() {
        let mut uk = UnikernelBuilder::new("nginx")
            .platform(VmmKind::Qemu)
            .allocator(AllocBackend::Tlsf)
            .scheduler(SchedPolicy::Coop)
            .with_net(VhostKind::VhostNet, 1)
            .with_file("/index.html", b"<html>x</html>".to_vec())
            .build()
            .unwrap();
        let r = uk.boot().unwrap();
        assert!(r.stage_ns("virtio").is_some());
        assert!(r.stage_ns("lwip").is_some());
        assert!(r.stage_ns("sched").is_some());
        assert!(uk.stack_mut().is_some());
        // The embedded file is readable through the VFS.
        let vfs = uk.vfs_mut().unwrap();
        let fd = vfs.open("/index.html").unwrap();
        assert_eq!(vfs.read(fd, 64).unwrap(), b"<html>x</html>");
    }

    #[test]
    fn raw_net_build_skips_the_stack() {
        let mut uk = UnikernelBuilder::new("udpkv")
            .with_raw_net(VhostKind::VhostUser, 1)
            .build()
            .unwrap();
        uk.boot().unwrap();
        assert!(uk.raw_net_mut().is_some());
        assert!(uk.stack_mut().is_none());
    }

    #[test]
    fn files_without_vfs_rejected() {
        let e = UnikernelBuilder::new("bad")
            .without_vfs()
            .with_file("/x", vec![1])
            .build()
            .unwrap_err();
        assert_eq!(e, Errno::Inval);
    }

    #[test]
    fn tiny_ram_rejected() {
        let e = UnikernelBuilder::new("tiny")
            .memory(1024 * 1024)
            .build()
            .unwrap_err();
        assert_eq!(e, Errno::NoMem);
    }

    #[test]
    fn workset_allocation_fails_when_ram_too_small() {
        let mut uk = UnikernelBuilder::new("greedy")
            .memory(8 * 1024 * 1024)
            .allocator(AllocBackend::Tlsf)
            .build()
            .unwrap();
        uk.boot().unwrap();
        assert_eq!(
            uk.allocate_workset(64 * 1024 * 1024).unwrap_err(),
            Errno::NoMem
        );
    }

    #[test]
    fn min_memory_search_is_monotone() {
        let min = min_memory_to_run(
            |_| UnikernelBuilder::new("probe").allocator(AllocBackend::Tlsf),
            2 * 1024 * 1024,
        )
        .unwrap();
        assert!(min >= 4 * 1024 * 1024);
        assert!(min <= 16 * 1024 * 1024, "min = {min}");
    }

    #[test]
    fn shim_serves_supported_syscalls_after_boot() {
        let mut uk = UnikernelBuilder::new("hello").build().unwrap();
        uk.boot().unwrap();
        // write (1) is supported → stub returns 0, not -ENOSYS.
        assert_eq!(uk.shim_mut().invoke(1, &[1, 0, 5]), 0);
        // eventfd (284) is not → -ENOSYS.
        assert_eq!(uk.shim_mut().invoke(284, &[]), -38);
    }
}
