//! Allocation statistics shared by all backends.

/// Counters every backend maintains; the basis of the memory-footprint
/// experiments (paper Fig 11 reports minimum memory to run each app).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Bytes currently allocated (payload, not counting metadata).
    pub cur_bytes: usize,
    /// High-water mark of `cur_bytes`.
    pub peak_bytes: usize,
    /// Total successful allocations.
    pub alloc_count: u64,
    /// Total frees.
    pub free_count: u64,
    /// Allocation requests that failed for lack of memory.
    pub failed_count: u64,
    /// Bytes of allocator metadata overhead (headers, bitmaps).
    pub meta_bytes: usize,
}

impl AllocStats {
    /// Records a successful allocation of `bytes`.
    pub fn on_alloc(&mut self, bytes: usize) {
        self.cur_bytes += bytes;
        self.peak_bytes = self.peak_bytes.max(self.cur_bytes);
        self.alloc_count += 1;
    }

    /// Records a free of `bytes`.
    pub fn on_free(&mut self, bytes: usize) {
        self.cur_bytes = self.cur_bytes.saturating_sub(bytes);
        self.free_count += 1;
    }

    /// Records a failed allocation.
    pub fn on_fail(&mut self) {
        self.failed_count += 1;
    }

    /// Live allocations (allocs minus frees).
    pub fn live(&self) -> u64 {
        self.alloc_count.saturating_sub(self.free_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut s = AllocStats::default();
        s.on_alloc(100);
        s.on_alloc(50);
        s.on_free(100);
        s.on_alloc(10);
        assert_eq!(s.cur_bytes, 60);
        assert_eq!(s.peak_bytes, 150);
        assert_eq!(s.live(), 2);
    }

    #[test]
    fn failed_allocs_counted_separately() {
        let mut s = AllocStats::default();
        s.on_fail();
        s.on_fail();
        assert_eq!(s.failed_count, 2);
        assert_eq!(s.alloc_count, 0);
    }

    #[test]
    fn free_saturates_at_zero() {
        let mut s = AllocStats::default();
        s.on_alloc(10);
        s.on_free(100);
        assert_eq!(s.cur_bytes, 0);
    }
}
