//! Criterion benches for the `ukevent` readiness subsystem: wakeup
//! latency (publish → deliver), dispatch throughput over wide interest
//! lists, eventfd counter ops, and the park/wake cycle.

use criterion::{criterion_group, criterion_main, Criterion};
use ukevent::{EventFd, EventMask, EventQueue, ReadySource};
use uksched::ThreadId;

/// One edge published, one event delivered: the subsystem's end-to-end
/// wakeup latency for a single watched object.
fn bench_wakeup_latency(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_wakeup");
    let mut q = EventQueue::new();
    let s = ReadySource::new();
    q.ctl_add(1, &s, EventMask::IN).unwrap();
    g.bench_function("raise_poll_clear", |b| {
        b.iter(|| {
            s.raise(EventMask::IN);
            let n = q.poll_ready(8).len();
            s.clear(EventMask::IN);
            n
        });
    });
    // Edge-triggered variant: the delivery bookkeeping differs.
    let mut qet = EventQueue::new();
    let set = ReadySource::new();
    qet.ctl_add(1, &set, EventMask::IN | EventMask::ET).unwrap();
    g.bench_function("raise_poll_clear_et", |b| {
        b.iter(|| {
            set.raise(EventMask::IN);
            let n = qet.poll_ready(8).len();
            set.clear(EventMask::IN);
            n
        });
    });
    g.finish();
}

/// Events/sec through one queue as the interest list widens: the scan
/// cost a single-loop server pays per turn with N connections.
fn bench_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_dispatch");
    for n in [16usize, 256, 1024] {
        let mut q = EventQueue::new();
        let sources: Vec<ReadySource> = (0..n).map(|_| ReadySource::new()).collect();
        for (i, s) in sources.iter().enumerate() {
            q.ctl_add(i as u64, s, EventMask::IN).unwrap();
        }
        // A realistic turn: 1/8 of the sockets have pending input.
        for s in sources.iter().step_by(8) {
            s.raise(EventMask::IN);
        }
        g.bench_function(format!("poll_{n}_sources"), |b| {
            b.iter(|| q.poll_ready(n).len());
        });
    }
    g.finish();
}

/// eventfd counter signal/consume pairs, normal vs semaphore mode.
fn bench_eventfd(c: &mut Criterion) {
    let mut g = c.benchmark_group("eventfd");
    let mut efd = EventFd::new(0, 0).unwrap();
    g.bench_function("write_read_pair", |b| {
        b.iter(|| {
            efd.write(1).unwrap();
            efd.read().unwrap()
        });
    });
    let mut sem = EventFd::new(0, ukevent::EFD_SEMAPHORE).unwrap();
    g.bench_function("semaphore_pair", |b| {
        b.iter(|| {
            sem.write(1).unwrap();
            sem.read().unwrap()
        });
    });
    g.finish();
}

/// The full blocking-path cycle: park a waiter, publish an edge, drain
/// the wakeup list, deliver — the cost of *not* busy-polling.
fn bench_park_wake(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_park_wake");
    let mut q = EventQueue::new();
    let s = ReadySource::new();
    q.ctl_add(1, &s, EventMask::IN).unwrap();
    let tid = ThreadId(1);
    g.bench_function("park_edge_wake_deliver", |b| {
        b.iter(|| {
            let parked = q.wait(8, tid);
            s.raise(EventMask::IN);
            let woken = q.take_wakeups().len();
            let delivered = q.poll_ready(8).len();
            s.clear(EventMask::IN);
            (matches!(parked, ukevent::WaitOutcome::Parked), woken, delivered)
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_wakeup_latency,
    bench_dispatch,
    bench_eventfd,
    bench_park_wake
);
criterion_main!(benches);
