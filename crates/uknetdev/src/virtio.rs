//! The virtio-net device model.
//!
//! Implements [`NetDev`] over descriptor rings and a [`HostBackend`].
//! TX path: the driver enqueues a burst into the TX virtqueue; for a
//! vhost-net backend it then kicks (one trap per *burst*, which is where
//! batching wins), for vhost-user the polling backend drains the ring
//! without any notification. Completed buffers park in a done-list the
//! application reclaims into its pool.
//!
//! RX path: the host injects frames into the RX ring; `rx_burst` drains
//! it. In interrupt mode, draining the ring dry arms the queue's
//! interrupt; the next injected frame fires the callback once and disarms
//! it — §3.1's storm-free scheme, which degrades to polling under load.
//!
//! Checksum offload (`VIRTIO_NET_F_CSUM`): a TX netbuf carrying a
//! [`CsumRequest`](crate::netbuf::CsumRequest) holds only the partial
//! pseudo-header sum in its checksum field; the device completes the
//! Internet checksum over the requested region before the frame
//! reaches the backend. Frames *without* a request claim a complete
//! checksum — in debug builds the device verifies that claim
//! (IPv4 header + TCP/UDP transport sums), so a broken no-offload path
//! cannot silently put bad frames on the wire.

use ukplat::cost;
use ukplat::time::Tsc;
use ukplat::{Errno, Result};

use crate::backend::{HostBackend, VhostKind};
use crate::csum::inet_checksum;
use crate::dev::{BurstStats, NetDev, NetDevConf, NetDevInfo, QueueMode, RxStatus, TxStatus};
use crate::netbuf::Netbuf;
use crate::ring::DescRing;
use crate::MAX_BURST;

struct RxQueue {
    ring: DescRing,
    mode: QueueMode,
    irq_armed: bool,
    callback: Option<Box<dyn FnMut()>>,
    irq_fires: u64,
}

struct TxQueue {
    ring: DescRing,
    done: Vec<Netbuf>,
}

/// Global device-plane stats, pre-registered at construction so every
/// hot-path touch is one relaxed atomic op (see `ukstats`).
#[derive(Clone, Copy)]
struct DevCounters {
    tx_bursts: ukstats::Counter,
    tx_frames: ukstats::Counter,
    tx_bytes: ukstats::Counter,
    rx_bursts: ukstats::Counter,
    rx_frames: ukstats::Counter,
    rx_ring_drops: ukstats::Counter,
    csum_offload_hits: ukstats::Counter,
    tso_super_frames: ukstats::Counter,
    irq_fires: ukstats::Counter,
    tx_burst_frames: ukstats::Histogram,
    rx_burst_frames: ukstats::Histogram,
}

impl DevCounters {
    fn register() -> Self {
        DevCounters {
            tx_bursts: ukstats::Counter::register("netdev.tx_bursts"),
            tx_frames: ukstats::Counter::register("netdev.tx_frames"),
            tx_bytes: ukstats::Counter::register("netdev.tx_bytes"),
            rx_bursts: ukstats::Counter::register("netdev.rx_bursts"),
            rx_frames: ukstats::Counter::register("netdev.rx_frames"),
            rx_ring_drops: ukstats::Counter::register("netdev.rx_ring_drops"),
            csum_offload_hits: ukstats::Counter::register("netdev.csum_offload_hits"),
            tso_super_frames: ukstats::Counter::register("netdev.tso_super_frames"),
            irq_fires: ukstats::Counter::register("netdev.irq_fires"),
            tx_burst_frames: ukstats::Histogram::register("netdev.tx_burst_frames"),
            rx_burst_frames: ukstats::Histogram::register("netdev.rx_burst_frames"),
        }
    }
}

/// The virtio-net device.
pub struct VirtioNet {
    tsc: Tsc,
    backend: HostBackend,
    rxqs: Vec<RxQueue>,
    txqs: Vec<TxQueue>,
    configured: bool,
    /// Whether `VIRTIO_NET_F_HOST_TSO4` is negotiated (tests flip this
    /// off to exercise the stack's software-segmentation fallback).
    tso: bool,
    /// Whether `VIRTIO_NET_F_GUEST_TSO4`/`MRG_RXBUF` are negotiated
    /// (tests flip this off to force the host-side MSS cut on
    /// delivery).
    guest_tso: bool,
    /// GSO super-frames accepted on TX.
    tso_frames: u64,
    ustats: DevCounters,
}

impl std::fmt::Debug for VirtioNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VirtioNet")
            .field("backend", &self.backend.kind().name())
            .field("rx_queues", &self.rxqs.len())
            .field("tx_queues", &self.txqs.len())
            .finish()
    }
}

impl VirtioNet {
    /// Creates an unconfigured device over the given backend kind.
    pub fn new(kind: VhostKind, tsc: &Tsc) -> Self {
        VirtioNet {
            tsc: tsc.clone(),
            backend: HostBackend::new(kind, tsc),
            rxqs: Vec::new(),
            txqs: Vec::new(),
            configured: false,
            tso: true,
            guest_tso: true,
            tso_frames: 0,
            ustats: DevCounters::register(),
        }
    }

    /// Enables/disables TSO feature negotiation (ablation and the
    /// software-segmentation fallback path).
    pub fn set_tso(&mut self, on: bool) {
        self.tso = on;
    }

    /// Enables/disables big-receive feature negotiation
    /// (`VIRTIO_NET_F_GUEST_TSO4`): off forces the host to cut MSS
    /// frames on delivery to this device.
    pub fn set_guest_tso(&mut self, on: bool) {
        self.guest_tso = on;
    }

    /// GSO super-frames accepted on TX so far.
    pub fn tso_frames(&self) -> u64 {
        self.tso_frames
    }

    /// Host-side injection of received frames (the test/wire harness).
    /// Fires the queue interrupt if it is armed.
    fn inject_rx_inner(&mut self, queue: u16, frames: &mut Vec<Netbuf>) -> Result<BurstStats> {
        let q = self
            .rxqs
            .get_mut(queue as usize)
            .ok_or(Errno::Inval)?;
        // Ring full: stop, like a real NIC dropping; buffers that do
        // not fit stay with the caller (which owns their memory).
        let injected = q.ring.room().min(frames.len());
        let mut stats = BurstStats {
            frames: injected,
            bytes: 0,
            drops: frames.len() - injected,
        };
        for f in frames.drain(..injected) {
            stats.bytes += f.len();
            q.ring.push(f).expect("room checked");
        }
        self.ustats.rx_ring_drops.add(stats.drops as u64);
        if injected > 0 && q.irq_armed {
            // One interrupt, then the line stays off until re-armed.
            q.irq_armed = false;
            q.irq_fires += 1;
            self.ustats.irq_fires.inc();
            self.tsc.advance(cost::IRQ_INJECT_CYCLES);
            if let Some(cb) = q.callback.as_mut() {
                cb();
            }
        }
        Ok(stats)
    }

    /// Direct access to backend statistics.
    pub fn backend(&self) -> &HostBackend {
        &self.backend
    }

    /// Interrupt deliveries on an RX queue.
    pub fn irq_fires(&self, queue: u16) -> u64 {
        self.rxqs
            .get(queue as usize)
            .map(|q| q.irq_fires)
            .unwrap_or(0)
    }

    /// Whether an RX queue's interrupt line is currently armed.
    pub fn irq_armed(&self, queue: u16) -> bool {
        self.rxqs
            .get(queue as usize)
            .map(|q| q.irq_armed)
            .unwrap_or(false)
    }
}

/// Debug-build wire validation for frames that did *not* request
/// checksum offload: parses just enough Ethernet/IPv4 framing
/// (independently of the stack's codecs — a device-side second
/// opinion) to verify the IPv4 header checksum and the TCP/UDP
/// transport checksum. Non-IPv4 frames and frames too short to parse
/// pass — malformed traffic is the stack's RX path's problem, silent
/// checksum corruption is this check's.
fn frame_checksums_valid(frame: &[u8]) -> bool {
    const ETH: usize = 14;
    const IHL: usize = 20;
    if frame.len() < ETH + IHL || frame[12..14] != [0x08, 0x00] || frame[ETH] != 0x45 {
        return true;
    }
    let ip = &frame[ETH..ETH + IHL];
    if inet_checksum(ip, 0) != 0 {
        return false;
    }
    let total = u16::from_be_bytes([ip[2], ip[3]]) as usize;
    if total < IHL || ETH + total > frame.len() {
        return true;
    }
    let body = &frame[ETH + IHL..ETH + total];
    let proto = ip[9];
    if proto != 6 && proto != 17 {
        return true;
    }
    if proto == 17 && body.len() >= 8 && body[6..8] == [0, 0] {
        return true; // UDP checksum 0: not used.
    }
    let mut pseudo = u32::from(u16::from_be_bytes([ip[12], ip[13]]))
        + u32::from(u16::from_be_bytes([ip[14], ip[15]]))
        + u32::from(u16::from_be_bytes([ip[16], ip[17]]))
        + u32::from(u16::from_be_bytes([ip[18], ip[19]]));
    pseudo += u32::from(proto) + body.len() as u32;
    inet_checksum(body, pseudo) == 0
}

impl NetDev for VirtioNet {
    fn info(&self) -> NetDevInfo {
        NetDevInfo {
            max_rx_queues: 16,
            max_tx_queues: 16,
            max_mtu: crate::MTU,
            tx_csum_offload: true,
            tso: self.tso,
            guest_tso: self.guest_tso,
            rx_csum_offload: true,
            max_ring_size: 1024,
        }
    }

    fn configure(&mut self, conf: NetDevConf) -> Result<()> {
        let info = self.info();
        if conf.nr_rx_queues == 0
            || conf.nr_tx_queues == 0
            || conf.nr_rx_queues > info.max_rx_queues
            || conf.nr_tx_queues > info.max_tx_queues
            || !conf.ring_size.is_power_of_two()
            || conf.ring_size > info.max_ring_size
        {
            return Err(Errno::Inval);
        }
        self.rxqs = (0..conf.nr_rx_queues)
            .map(|_| RxQueue {
                ring: DescRing::new(conf.ring_size),
                mode: QueueMode::Polling,
                irq_armed: false,
                callback: None,
                irq_fires: 0,
            })
            .collect();
        self.txqs = (0..conf.nr_tx_queues)
            .map(|_| TxQueue {
                ring: DescRing::new(conf.ring_size),
                done: Vec::new(),
            })
            .collect();
        self.configured = true;
        Ok(())
    }

    fn set_queue_mode(&mut self, queue: u16, mode: QueueMode) -> Result<()> {
        let q = self.rxqs.get_mut(queue as usize).ok_or(Errno::Inval)?;
        q.mode = mode;
        if mode == QueueMode::Polling {
            q.irq_armed = false;
        }
        Ok(())
    }

    fn set_rx_callback(&mut self, queue: u16, cb: Box<dyn FnMut()>) -> Result<()> {
        let q = self.rxqs.get_mut(queue as usize).ok_or(Errno::Inval)?;
        q.callback = Some(cb);
        Ok(())
    }

    fn tx_burst(&mut self, queue: u16, pkts: &mut Vec<Netbuf>) -> Result<TxStatus> {
        if !self.configured {
            return Err(Errno::Inval);
        }
        let q = self.txqs.get_mut(queue as usize).ok_or(Errno::Inval)?;
        // Alloc-free enqueue: clamp to ring room up front and drain the
        // caller's buffers straight into the ring — no staging vector,
        // nothing bounces back to the caller.
        let sent = pkts.len().min(MAX_BURST).min(q.ring.room());
        let mut bytes = 0;
        let mut tso_frames = 0;
        for mut nb in pkts.drain(..sent) {
            if nb.gso_request().is_some() {
                // VIRTIO_NET_F_HOST_TSO4: an oversized TCP frame whose
                // MSS cutting — and per-frame checksum completion —
                // happens on the host side of the ring (see
                // `crate::gso`). The request rides the buffer through
                // to the host cutter; its CsumRequest stays unserviced
                // here because the per-frame checksums only exist
                // after the cut.
                debug_assert!(self.tso, "GSO frame on a device without TSO");
                debug_assert!(
                    nb.csum_request().is_some(),
                    "TSO requires checksum offload (VIRTIO_NET_F_CSUM)"
                );
                tso_frames += 1;
            } else if let Some(req) = nb.take_csum_request() {
                // VIRTIO_NET_F_CSUM: complete a partial transport
                // checksum before the frame leaves the guest.
                let start = nb.chain_len() - req.region_len as usize;
                let field = start + req.field_off as usize;
                // The field holds the folded pseudo-header sum, so
                // summing the region as-is yields the full checksum. A
                // result of 0 is emitted as the congruent 0xffff (UDP
                // reserves 0 for "no checksum"; for TCP both encode
                // zero in one's complement).
                let ck = match inet_checksum(&nb.payload()[start..], 0) {
                    0 => 0xffff,
                    ck => ck,
                };
                nb.payload_mut()[field..field + 2].copy_from_slice(&ck.to_be_bytes());
                self.ustats.csum_offload_hits.inc();
            } else {
                // No offload requested: the frame claims complete
                // checksums — hold it to that in debug builds.
                debug_assert!(
                    frame_checksums_valid(nb.payload()),
                    "tx_burst: frame without csum offload carries a bad checksum"
                );
            }
            bytes += nb.chain_len();
            q.ring.push(nb).expect("room checked");
        }
        self.tso_frames += tso_frames;
        if sent > 0 {
            self.ustats.tx_bursts.inc();
            self.ustats.tx_frames.add(sent as u64);
            self.ustats.tx_bytes.add(bytes as u64);
            self.ustats.tso_super_frames.add(tso_frames);
            self.ustats.tx_burst_frames.record(sent as u64);
        }
        // Notify / drain the backend.
        if sent > 0 {
            if self.backend.needs_kick() {
                self.backend.kick();
            }
            // Completions land on the done-list tail; the backend is
            // charged for exactly that slice (no inflight copy-out).
            let start = q.done.len();
            q.ring.pop_burst(&mut q.done, sent);
            self.backend.process_tx(&q.done[start..]);
        }
        Ok(TxStatus {
            stats: BurstStats {
                frames: sent,
                bytes,
                drops: 0,
            },
            more_room: !q.ring.is_full(),
        })
    }

    fn rx_burst(&mut self, queue: u16, out: &mut Vec<Netbuf>, max: usize) -> Result<RxStatus> {
        if !self.configured {
            return Err(Errno::Inval);
        }
        let q = self.rxqs.get_mut(queue as usize).ok_or(Errno::Inval)?;
        let received = q.ring.pop_burst(out, max.min(MAX_BURST));
        if received > 0 {
            self.ustats.rx_bursts.inc();
            self.ustats.rx_frames.add(received as u64);
            self.ustats.rx_burst_frames.record(received as u64);
        }
        let more = !q.ring.is_empty();
        if !more && q.mode == QueueMode::Interrupt {
            // Queue ran dry: arm the interrupt line (§3.1).
            q.irq_armed = true;
        }
        Ok(RxStatus { received, more })
    }

    fn reclaim_tx(&mut self, queue: u16, out: &mut Vec<Netbuf>) -> Result<usize> {
        let q = self.txqs.get_mut(queue as usize).ok_or(Errno::Inval)?;
        let n = q.done.len();
        out.append(&mut q.done);
        Ok(n)
    }

    fn inject_rx(&mut self, queue: u16, frames: &mut Vec<Netbuf>) -> Result<BurstStats> {
        self.inject_rx_inner(queue, frames)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    fn mk(kind: VhostKind) -> (VirtioNet, Tsc) {
        let tsc = Tsc::new(cost::CPU_FREQ_HZ);
        let mut dev = VirtioNet::new(kind, &tsc);
        dev.configure(NetDevConf::default()).unwrap();
        (dev, tsc)
    }

    fn pkts(n: usize, len: usize) -> Vec<Netbuf> {
        (0..n)
            .map(|_| {
                let mut nb = Netbuf::alloc(2048, 64);
                nb.set_len(len);
                nb
            })
            .collect()
    }

    #[test]
    fn tx_burst_sends_and_reclaims() {
        let (mut dev, _t) = mk(VhostKind::VhostUser);
        let mut batch = pkts(16, 64);
        let st = dev.tx_burst(0, &mut batch).unwrap();
        assert_eq!(st.sent(), 16);
        assert!(batch.is_empty());
        assert_eq!(dev.backend().tx_packets(), 16);
        let mut done = Vec::new();
        assert_eq!(dev.reclaim_tx(0, &mut done).unwrap(), 16);
    }

    #[test]
    fn vhost_net_kicks_once_per_burst() {
        let (mut dev, _t) = mk(VhostKind::VhostNet);
        let mut batch = pkts(32, 64);
        dev.tx_burst(0, &mut batch).unwrap();
        assert_eq!(dev.backend().kicks(), 1, "one kick per burst (batching)");
        let mut batch = pkts(32, 64);
        dev.tx_burst(0, &mut batch).unwrap();
        assert_eq!(dev.backend().kicks(), 2);
    }

    #[test]
    fn vhost_user_never_kicks() {
        let (mut dev, _t) = mk(VhostKind::VhostUser);
        let mut batch = pkts(32, 64);
        dev.tx_burst(0, &mut batch).unwrap();
        assert_eq!(dev.backend().kicks(), 0);
    }

    #[test]
    fn oversized_burst_is_clamped() {
        let (mut dev, _t) = mk(VhostKind::VhostUser);
        let mut batch = pkts(MAX_BURST + 10, 64);
        let st = dev.tx_burst(0, &mut batch).unwrap();
        assert_eq!(st.sent(), MAX_BURST);
        assert_eq!(batch.len(), 10, "overflow stays with the caller");
    }

    #[test]
    fn rx_burst_drains_injected_frames() {
        let (mut dev, _t) = mk(VhostKind::VhostUser);
        dev.inject_rx(0, &mut pkts(8, 100)).unwrap();
        let mut out = Vec::new();
        let st = dev.rx_burst(0, &mut out, 4).unwrap();
        assert_eq!(st.received, 4);
        assert!(st.more);
        let st = dev.rx_burst(0, &mut out, 8).unwrap();
        assert_eq!(st.received, 4);
        assert!(!st.more);
        assert_eq!(out.len(), 8);
    }

    #[test]
    fn interrupt_mode_arms_on_dry_and_fires_once() {
        let (mut dev, _t) = mk(VhostKind::VhostUser);
        dev.set_queue_mode(0, QueueMode::Interrupt).unwrap();
        let fired = Rc::new(Cell::new(0));
        let f = fired.clone();
        dev.set_rx_callback(0, Box::new(move || f.set(f.get() + 1)))
            .unwrap();
        // Drain the empty queue → arms the IRQ.
        let mut out = Vec::new();
        dev.rx_burst(0, &mut out, 16).unwrap();
        assert!(dev.irq_armed(0));
        // First injection fires the callback once and disarms.
        dev.inject_rx(0, &mut pkts(2, 64)).unwrap();
        assert_eq!(fired.get(), 1);
        assert!(!dev.irq_armed(0));
        // Further injections while not re-armed do NOT fire (storm-free).
        dev.inject_rx(0, &mut pkts(2, 64)).unwrap();
        assert_eq!(fired.get(), 1);
        // Draining dry re-arms.
        dev.rx_burst(0, &mut out, 16).unwrap();
        assert!(dev.irq_armed(0));
        assert_eq!(dev.irq_fires(0), 1);
    }

    #[test]
    fn polling_mode_never_arms() {
        let (mut dev, _t) = mk(VhostKind::VhostUser);
        let mut out = Vec::new();
        dev.rx_burst(0, &mut out, 16).unwrap();
        assert!(!dev.irq_armed(0));
    }

    #[test]
    fn rx_ring_overflow_drops() {
        let (mut dev, _t) = mk(VhostKind::VhostUser);
        let st = dev.inject_rx(0, &mut pkts(300, 64)).unwrap();
        assert_eq!(st.frames, 256, "default ring holds 256 descriptors");
        assert_eq!(st.drops, 44, "overflow counted as drops");
    }

    #[test]
    fn unconfigured_device_rejects_io() {
        let tsc = Tsc::new(cost::CPU_FREQ_HZ);
        let mut dev = VirtioNet::new(VhostKind::VhostUser, &tsc);
        let mut batch = pkts(1, 64);
        assert_eq!(dev.tx_burst(0, &mut batch).unwrap_err(), Errno::Inval);
    }

    #[test]
    fn multi_queue_traffic_is_isolated() {
        // §3.1: the API supports multiple queues; traffic on one queue
        // must not appear on another.
        let tsc = Tsc::new(cost::CPU_FREQ_HZ);
        let mut dev = VirtioNet::new(VhostKind::VhostUser, &tsc);
        dev.configure(NetDevConf {
            nr_rx_queues: 4,
            nr_tx_queues: 4,
            ring_size: 64,
        })
        .unwrap();
        for q in 0..4u16 {
            dev.inject_rx(q, &mut pkts(usize::from(q) + 1, 64)).unwrap();
        }
        for q in 0..4u16 {
            let mut out = Vec::new();
            let st = dev.rx_burst(q, &mut out, 16).unwrap();
            assert_eq!(st.received, usize::from(q) + 1, "queue {q}");
        }
        // TX per queue accumulates its own completions.
        let mut b0 = pkts(3, 64);
        let mut b2 = pkts(5, 64);
        dev.tx_burst(0, &mut b0).unwrap();
        dev.tx_burst(2, &mut b2).unwrap();
        let mut done = Vec::new();
        assert_eq!(dev.reclaim_tx(0, &mut done).unwrap(), 3);
        assert_eq!(dev.reclaim_tx(2, &mut done).unwrap(), 5);
        assert_eq!(dev.reclaim_tx(1, &mut done).unwrap(), 0);
    }

    #[test]
    fn per_queue_interrupt_modes_are_independent() {
        let tsc = Tsc::new(cost::CPU_FREQ_HZ);
        let mut dev = VirtioNet::new(VhostKind::VhostUser, &tsc);
        dev.configure(NetDevConf {
            nr_rx_queues: 2,
            nr_tx_queues: 1,
            ring_size: 64,
        })
        .unwrap();
        dev.set_queue_mode(0, QueueMode::Interrupt).unwrap();
        // Queue 1 stays polled.
        let mut out = Vec::new();
        dev.rx_burst(0, &mut out, 8).unwrap();
        dev.rx_burst(1, &mut out, 8).unwrap();
        assert!(dev.irq_armed(0));
        assert!(!dev.irq_armed(1));
    }

    #[test]
    fn invalid_configure_rejected() {
        let tsc = Tsc::new(cost::CPU_FREQ_HZ);
        let mut dev = VirtioNet::new(VhostKind::VhostUser, &tsc);
        let bad = NetDevConf {
            nr_rx_queues: 0,
            ..Default::default()
        };
        assert_eq!(dev.configure(bad).unwrap_err(), Errno::Inval);
        let bad = NetDevConf {
            ring_size: 300,
            ..Default::default()
        };
        assert_eq!(dev.configure(bad).unwrap_err(), Errno::Inval);
    }
}
