//! The workspace walker: finds the `.rs` files ukcheck scans and runs
//! the passes over them.

use std::fs;
use std::path::{Path, PathBuf};

use crate::lints::{check_source, Violation};
use crate::manifest;

/// Scans the workspace rooted at `root`: the root crate's `src/` and
/// every `crates/*/src/` tree, skipping [`manifest::SKIP_DIRS`].
/// Returns violations sorted by path and line, or an IO error message.
pub fn check_workspace(root: &Path) -> Result<Vec<Violation>, String> {
    let mut files = Vec::new();
    collect_rs(&root.join("src"), &mut files);
    let crates_dir = root.join("crates");
    if let Ok(entries) = fs::read_dir(&crates_dir) {
        let mut dirs: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for d in dirs {
            collect_rs(&d.join("src"), &mut files);
        }
    }
    if files.is_empty() {
        return Err(format!(
            "no Rust sources found under {} — is this the workspace root?",
            root.display()
        ));
    }
    files.sort();
    let mut out = Vec::new();
    for f in files {
        let rel = rel_label(root, &f);
        let src = fs::read_to_string(&f)
            .map_err(|e| format!("reading {}: {e}", f.display()))?;
        out.extend(check_source(
            &rel,
            &src,
            manifest::is_hot(&rel),
            manifest::is_relaxed_only(&rel),
        ));
    }
    Ok(out)
}

/// Checks an explicit file list (the fixture-test entry point).
/// `hot` applies the hot-path passes to every file.
pub fn check_files(paths: &[PathBuf], hot: bool) -> Result<Vec<Violation>, String> {
    let mut out = Vec::new();
    for f in paths {
        let src = fs::read_to_string(f)
            .map_err(|e| format!("reading {}: {e}", f.display()))?;
        let label = f.to_string_lossy().replace('\\', "/");
        out.extend(check_source(&label, &src, hot, hot));
    }
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if !manifest::SKIP_DIRS.contains(&name) {
                collect_rs(&p, out);
            }
        } else if p.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(p);
        }
    }
}

fn rel_label(root: &Path, f: &Path) -> String {
    f.strip_prefix(root)
        .unwrap_or(f)
        .to_string_lossy()
        .replace('\\', "/")
}
