//! UDP codec with pseudo-header checksums.

use uknetdev::netbuf::Netbuf;
use ukplat::{Errno, Result};

use crate::inet_checksum;
use crate::ipv4::Ipv4Header;

/// UDP header length.
pub const UDP_HDR_LEN: usize = 8;

/// A parsed UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
}

impl UdpHeader {
    /// Serializes header + payload into a datagram with a valid checksum
    /// computed over the given IPv4 pseudo header.
    pub fn encode(&self, ip: &Ipv4Header, payload: &[u8]) -> Vec<u8> {
        let len = (UDP_HDR_LEN + payload.len()) as u16;
        let mut dgram = Vec::with_capacity(len as usize);
        dgram.extend_from_slice(&self.src_port.to_be_bytes());
        dgram.extend_from_slice(&self.dst_port.to_be_bytes());
        dgram.extend_from_slice(&len.to_be_bytes());
        dgram.extend_from_slice(&[0, 0]); // Checksum placeholder.
        dgram.extend_from_slice(payload);
        let ck = inet_checksum(&dgram, ip.pseudo_header_sum());
        let ck = if ck == 0 { 0xffff } else { ck };
        dgram[6..8].copy_from_slice(&ck.to_be_bytes());
        dgram
    }

    /// Prepends the 8-byte header into `nb`'s headroom; the payload
    /// already in the buffer becomes the datagram body without being
    /// copied. The checksum is computed in place over header + payload
    /// with the pseudo-header seed — byte-identical to
    /// [`encode`](Self::encode).
    ///
    /// # Panics
    ///
    /// Panics if `nb` has less than [`UDP_HDR_LEN`] bytes of headroom.
    pub fn encode_into(&self, ip: &Ipv4Header, nb: &mut Netbuf) {
        let len = nb.len() as u16 + UDP_HDR_LEN as u16;
        let hdr = nb.push_header_uninit(UDP_HDR_LEN);
        hdr[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        hdr[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        hdr[4..6].copy_from_slice(&len.to_be_bytes());
        hdr[6..8].copy_from_slice(&[0, 0]); // Checksum placeholder.
        let ck = inet_checksum(nb.payload(), ip.pseudo_header_sum());
        let ck = if ck == 0 { 0xffff } else { ck };
        nb.payload_mut()[6..8].copy_from_slice(&ck.to_be_bytes());
    }

    /// The checksum-offload form of [`encode_into`](Self::encode_into):
    /// prepends the header with the checksum field holding only the
    /// *folded pseudo-header sum* (uncomplemented) and attaches a
    /// [`CsumRequest`](uknetdev::netbuf::CsumRequest) to the netbuf, so
    /// the device completes the sum over the whole datagram on
    /// `tx_burst` — the frame that reaches the wire is byte-identical
    /// to the software path's.
    ///
    /// # Panics
    ///
    /// Panics if `nb` has less than [`UDP_HDR_LEN`] bytes of headroom.
    pub fn encode_into_partial(&self, ip: &Ipv4Header, nb: &mut Netbuf) {
        let len = nb.len() as u16 + UDP_HDR_LEN as u16;
        let hdr = nb.push_header_uninit(UDP_HDR_LEN);
        hdr[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        hdr[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        hdr[4..6].copy_from_slice(&len.to_be_bytes());
        let partial = uknetdev::csum::fold_partial_sum(u64::from(ip.pseudo_header_sum()));
        hdr[6..8].copy_from_slice(&partial.to_be_bytes());
        nb.request_csum(nb.len(), 6);
    }

    /// Parses and verifies a datagram; returns header + payload.
    pub fn decode<'a>(ip: &Ipv4Header, dgram: &'a [u8]) -> Result<(UdpHeader, &'a [u8])> {
        Self::decode_inner(ip, dgram, true)
    }

    /// [`decode`](Self::decode) for a frame the wire/device already
    /// marked checksum-validated (`VIRTIO_NET_F_GUEST_CSUM`):
    /// structural validation only, the checksum pass over the datagram
    /// is skipped.
    pub fn decode_trusted<'a>(ip: &Ipv4Header, dgram: &'a [u8]) -> Result<(UdpHeader, &'a [u8])> {
        Self::decode_inner(ip, dgram, false)
    }

    fn decode_inner<'a>(
        ip: &Ipv4Header,
        dgram: &'a [u8],
        verify_csum: bool,
    ) -> Result<(UdpHeader, &'a [u8])> {
        if dgram.len() < UDP_HDR_LEN {
            return Err(Errno::Inval);
        }
        let len = u16::from_be_bytes([dgram[4], dgram[5]]) as usize;
        if len < UDP_HDR_LEN || len > dgram.len() {
            return Err(Errno::Inval);
        }
        let ck = u16::from_be_bytes([dgram[6], dgram[7]]);
        if verify_csum && ck != 0 && inet_checksum(&dgram[..len], ip.pseudo_header_sum()) != 0 {
            return Err(Errno::Io);
        }
        Ok((
            UdpHeader {
                src_port: u16::from_be_bytes([dgram[0], dgram[1]]),
                dst_port: u16::from_be_bytes([dgram[2], dgram[3]]),
            },
            &dgram[UDP_HDR_LEN..len],
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipv4::IpProto;
    use crate::Ipv4Addr;

    fn ip(payload_len: usize) -> Ipv4Header {
        Ipv4Header {
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::new(10, 0, 0, 2),
            proto: IpProto::Udp,
            payload_len,
            ttl: 64,
        }
    }

    #[test]
    fn roundtrip_with_checksum() {
        let h = UdpHeader {
            src_port: 5000,
            dst_port: 53,
        };
        let payload = b"dns-query";
        let ip = ip(UDP_HDR_LEN + payload.len());
        let dgram = h.encode(&ip, payload);
        let (h2, p2) = UdpHeader::decode(&ip, &dgram).unwrap();
        assert_eq!(h, h2);
        assert_eq!(p2, payload);
    }

    #[test]
    fn corrupt_payload_detected() {
        let h = UdpHeader {
            src_port: 1,
            dst_port: 2,
        };
        let ip = ip(UDP_HDR_LEN + 4);
        let mut dgram = h.encode(&ip, &[1, 2, 3, 4]);
        dgram[9] ^= 0x55;
        assert_eq!(UdpHeader::decode(&ip, &dgram).unwrap_err(), Errno::Io);
    }

    #[test]
    fn short_datagram_rejected() {
        let ip = ip(4);
        assert_eq!(
            UdpHeader::decode(&ip, &[0; 4]).unwrap_err(),
            Errno::Inval
        );
    }
}
