//! `ukstats`: a global, lock-free registry of named counters, gauges and
//! log-bucketed latency histograms.
//!
//! Unikraft exports per-library state through `ukstore`; the evaluation
//! (Figs. 10–13 style throughput/latency curves) depends on measuring
//! *inside* the unikernel without perturbing the hot path. This crate is
//! that substrate:
//!
//! * **Registration** happens at subsystem construction time
//!   ([`Counter::register`], [`Gauge::register`],
//!   [`Histogram::register`]). Slots are static atomics; registering the
//!   same name twice returns the same slot, so counters aggregate across
//!   instances. Registration may take a lock and touch the heap — it is
//!   *setup-time only*.
//! * **Increments** ([`Counter::add`], [`Histogram::record`]) are relaxed
//!   atomic RMWs on pre-resolved `&'static` slots: no lock, no allocation,
//!   no lookup. The zero-alloc tier-1 tests run with stats enabled and
//!   still assert 0.000 allocs/frame.
//! * **Snapshots** ([`snapshot`]) walk the registry under the
//!   registration lock and render to plain structs (and JSON via
//!   [`Snapshot::to_json`]) — they allocate, and belong on the control
//!   plane (`/stats`, bench reports, tests), never in `pump`.
//!
//! Histograms are log-bucketed in the HDR shape: power-of-two octaves with
//! 8 linear sub-buckets each, so any recorded value lands in a bucket whose
//! bounds are within 12.5 % of the value. Quantiles ([`Histogram::quantile`])
//! return the upper bound of the bucket holding the rank — the naive
//! sorted-vec quantile is guaranteed to lie inside that bucket, which is
//! exactly what the property tests check.
//!
//! Building with `--no-default-features` compiles every handle down to a
//! zero-sized no-op: `add`/`record` become empty inline functions and the
//! registry reports itself [`COMPILED_IN`]` == false`.

#[cfg(feature = "stats")]
use std::sync::Mutex;

/// Whether the stats plane is compiled in (`stats` feature).
pub const COMPILED_IN: bool = cfg!(feature = "stats");

/// Counter slots available before [`Counter::register`] panics.
pub const MAX_COUNTERS: usize = 256;
/// Gauge slots available before [`Gauge::register`] panics.
pub const MAX_GAUGES: usize = 64;
/// Histogram slots available before [`Histogram::register`] panics.
pub const MAX_HISTOGRAMS: usize = 32;

const SUB_BUCKETS: usize = 8; // 3 bits of sub-bucket precision per octave.
#[cfg_attr(not(feature = "stats"), allow(dead_code))]
const NUM_BUCKETS: usize = 61 * SUB_BUCKETS + SUB_BUCKETS; // 496

/// Maps a value to its HDR-shaped bucket index.
///
/// Values below 8 get exact unit buckets; above that, each power-of-two
/// octave is split into 8 linear sub-buckets.
#[cfg_attr(not(feature = "stats"), allow(dead_code))]
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as usize;
        let shift = msb - 3;
        (shift + 1) * SUB_BUCKETS + ((v >> shift) as usize & (SUB_BUCKETS - 1))
    }
}

/// Inclusive `(low, high)` value bounds of bucket `idx`.
#[cfg_attr(not(feature = "stats"), allow(dead_code))]
fn bucket_bounds(idx: usize) -> (u64, u64) {
    if idx < SUB_BUCKETS {
        (idx as u64, idx as u64)
    } else {
        let shift = idx / SUB_BUCKETS - 1;
        let base = ((SUB_BUCKETS + idx % SUB_BUCKETS) as u64) << shift;
        (base, base + ((1u64 << shift) - 1))
    }
}

/// One counter in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnap {
    pub name: &'static str,
    pub value: u64,
}

/// One gauge in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeSnap {
    pub name: &'static str,
    pub value: u64,
}

/// One histogram in a snapshot: totals plus the three headline quantiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnap {
    pub name: &'static str,
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub p50: u64,
    pub p99: u64,
    pub p999: u64,
}

/// A point-in-time copy of the whole registry.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    pub counters: Vec<CounterSnap>,
    pub gauges: Vec<GaugeSnap>,
    pub hists: Vec<HistSnap>,
}

impl Snapshot {
    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|c| c.name == name).map(|c| c.value)
    }

    /// Looks up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Looks up a histogram by name.
    pub fn hist(&self, name: &str) -> Option<&HistSnap> {
        self.hists.iter().find(|h| h.name == name)
    }

    /// Counter deltas relative to an earlier snapshot, dropping zeros.
    /// This is how the bench harness attributes global counters to one
    /// ablation cell.
    // ukcheck: allow(alloc) -- snapshot diffing runs in the bench
    // harness between measured windows, never on the packet path
    pub fn counters_since(&self, base: &Snapshot) -> Vec<CounterSnap> {
        self.counters
            .iter()
            .map(|c| CounterSnap {
                name: c.name,
                value: c.value - base.counter(c.name).unwrap_or(0),
            })
            .filter(|c| c.value != 0)
            .collect()
    }

    /// Renders the snapshot as a JSON object (hand-rolled — the registry
    /// has no serde dependency; names are static identifiers that never
    /// need escaping).
    // ukcheck: allow(alloc) -- cold /stats export path; the hot ops are
    // the Relaxed atomic add/store/observe on the slot arrays
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"counters\":{");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", c.name, c.value));
        }
        out.push_str("},\"gauges\":{");
        for (i, g) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", g.name, g.value));
        }
        out.push_str("},\"histograms\":{");
        for (i, h) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let min = if h.count == 0 { 0 } else { h.min };
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
                 \"p50\":{},\"p99\":{},\"p999\":{}}}",
                h.name, h.count, h.sum, min, h.max, h.p50, h.p99, h.p999
            ));
        }
        out.push_str("}}");
        out
    }
}

#[cfg(feature = "stats")]
struct Index {
    counters: Vec<&'static str>,
    gauges: Vec<&'static str>,
    hists: Vec<&'static str>,
}

#[cfg(feature = "stats")]
static INDEX: Mutex<Index> = Mutex::new(Index {
    counters: Vec::new(), // ukcheck: allow(alloc) -- const-eval empty Vec, no heap
    gauges: Vec::new(),   // ukcheck: allow(alloc) -- const-eval empty Vec, no heap
    hists: Vec::new(),    // ukcheck: allow(alloc) -- const-eval empty Vec, no heap
});

#[cfg(feature = "stats")]
mod imp {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

    // `const` items with interior mutability are re-instantiated per array
    // element, which is exactly what static slot arrays need.
    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO: AtomicU64 = AtomicU64::new(0);

    static COUNTERS: [AtomicU64; MAX_COUNTERS] = [ZERO; MAX_COUNTERS];
    static GAUGES: [AtomicU64; MAX_GAUGES] = [ZERO; MAX_GAUGES];

    pub(super) struct HistSlot {
        pub(super) count: AtomicU64,
        pub(super) sum: AtomicU64,
        pub(super) min: AtomicU64,
        pub(super) max: AtomicU64,
        pub(super) buckets: [AtomicU64; NUM_BUCKETS],
    }

    #[allow(clippy::declare_interior_mutable_const)]
    const EMPTY_HIST: HistSlot = HistSlot {
        count: AtomicU64::new(0),
        sum: AtomicU64::new(0),
        min: AtomicU64::new(u64::MAX),
        max: AtomicU64::new(0),
        buckets: [ZERO; NUM_BUCKETS],
    };

    static HISTS: [HistSlot; MAX_HISTOGRAMS] = [EMPTY_HIST; MAX_HISTOGRAMS];

    /// A monotonically increasing counter. `Copy`: handles are meant to be
    /// resolved once at registration and embedded in the owning struct.
    #[derive(Clone, Copy)]
    pub struct Counter {
        slot: &'static AtomicU64,
    }

    impl Counter {
        /// Registers (or re-resolves) the counter named `name`.
        ///
        /// # Panics
        ///
        /// Panics if more than [`MAX_COUNTERS`] distinct names register.
        pub fn register(name: &'static str) -> Counter {
            // A panic while holding the lock leaves the index structurally
            // valid (it only appends static names), so recover it
            // rather than cascading the poison into every later user.
            let mut idx = INDEX.lock().unwrap_or_else(|p| p.into_inner());
            let i = match idx.counters.iter().position(|n| *n == name) {
                Some(i) => i,
                None => {
                    assert!(idx.counters.len() < MAX_COUNTERS, "ukstats: counter slots exhausted");
                    idx.counters.push(name);
                    idx.counters.len() - 1
                }
            };
            Counter { slot: &COUNTERS[i] }
        }

        /// Adds `n`: one relaxed atomic add, the whole hot path.
        #[inline(always)]
        pub fn add(&self, n: u64) {
            self.slot.fetch_add(n, Relaxed);
        }

        /// Adds one.
        #[inline(always)]
        pub fn inc(&self) {
            self.add(1);
        }

        /// Current value.
        pub fn get(&self) -> u64 {
            self.slot.load(Relaxed)
        }
    }

    /// A last-value / high-watermark cell.
    #[derive(Clone, Copy)]
    pub struct Gauge {
        slot: &'static AtomicU64,
    }

    impl Gauge {
        /// Registers (or re-resolves) the gauge named `name`.
        ///
        /// # Panics
        ///
        /// Panics if more than [`MAX_GAUGES`] distinct names register.
        pub fn register(name: &'static str) -> Gauge {
            // A panic while holding the lock leaves the index structurally
            // valid (it only appends static names), so recover it
            // rather than cascading the poison into every later user.
            let mut idx = INDEX.lock().unwrap_or_else(|p| p.into_inner());
            let i = match idx.gauges.iter().position(|n| *n == name) {
                Some(i) => i,
                None => {
                    assert!(idx.gauges.len() < MAX_GAUGES, "ukstats: gauge slots exhausted");
                    idx.gauges.push(name);
                    idx.gauges.len() - 1
                }
            };
            Gauge { slot: &GAUGES[i] }
        }

        /// Stores `v`.
        #[inline(always)]
        pub fn set(&self, v: u64) {
            self.slot.store(v, Relaxed);
        }

        /// Raises the gauge to `v` if `v` is higher (high-watermark use).
        #[inline(always)]
        pub fn set_max(&self, v: u64) {
            self.slot.fetch_max(v, Relaxed);
        }

        /// Current value.
        pub fn get(&self) -> u64 {
            self.slot.load(Relaxed)
        }
    }

    /// A log-bucketed latency histogram (HDR shape).
    #[derive(Clone, Copy)]
    pub struct Histogram {
        slot: &'static HistSlot,
    }

    impl Histogram {
        /// Registers (or re-resolves) the histogram named `name`.
        ///
        /// # Panics
        ///
        /// Panics if more than [`MAX_HISTOGRAMS`] distinct names register.
        pub fn register(name: &'static str) -> Histogram {
            // A panic while holding the lock leaves the index structurally
            // valid (it only appends static names), so recover it
            // rather than cascading the poison into every later user.
            let mut idx = INDEX.lock().unwrap_or_else(|p| p.into_inner());
            let i = match idx.hists.iter().position(|n| *n == name) {
                Some(i) => i,
                None => {
                    assert!(
                        idx.hists.len() < MAX_HISTOGRAMS,
                        "ukstats: histogram slots exhausted"
                    );
                    idx.hists.push(name);
                    idx.hists.len() - 1
                }
            };
            Histogram { slot: &HISTS[i] }
        }

        /// Records one sample: a handful of relaxed atomic RMWs, no
        /// allocation, no lock.
        #[inline]
        pub fn record(&self, v: u64) {
            self.slot.buckets[bucket_index(v)].fetch_add(1, Relaxed);
            self.slot.count.fetch_add(1, Relaxed);
            self.slot.sum.fetch_add(v, Relaxed);
            self.slot.min.fetch_min(v, Relaxed);
            self.slot.max.fetch_max(v, Relaxed);
        }

        /// Samples recorded.
        pub fn count(&self) -> u64 {
            self.slot.count.load(Relaxed)
        }

        /// Inclusive bucket bounds containing the `q`-quantile
        /// (`0.0 ..= 1.0`). The naive sorted-sample quantile
        /// `sorted[max(1, ceil(q·n)) - 1]` is guaranteed to lie within.
        /// Returns `None` when the histogram is empty.
        pub fn quantile_bounds(&self, q: f64) -> Option<(u64, u64)> {
            let count = self.count();
            if count == 0 {
                return None;
            }
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut cum = 0u64;
            for (i, b) in self.slot.buckets.iter().enumerate() {
                cum += b.load(Relaxed);
                if cum >= rank {
                    return Some(bucket_bounds(i));
                }
            }
            Some(bucket_bounds(NUM_BUCKETS - 1))
        }

        /// Upper bound of the bucket containing the `q`-quantile; 0 when
        /// empty.
        pub fn quantile(&self, q: f64) -> u64 {
            self.quantile_bounds(q).map(|(_, hi)| hi).unwrap_or(0)
        }

        fn snap(&self, name: &'static str) -> HistSnap {
            HistSnap {
                name,
                count: self.count(),
                sum: self.slot.sum.load(Relaxed),
                min: self.slot.min.load(Relaxed),
                max: self.slot.max.load(Relaxed),
                p50: self.quantile(0.50),
                p99: self.quantile(0.99),
                p999: self.quantile(0.999),
            }
        }
    }

    /// Copies the whole registry.
    // ukcheck: allow(alloc) -- snapshotting copies the registry for
    // export/bench attribution; callers take it outside measured windows
    pub fn snapshot() -> Snapshot {
        // See `register`: a poisoned index is still structurally valid.
        let idx = INDEX.lock().unwrap_or_else(|p| p.into_inner());
        Snapshot {
            counters: idx
                .counters
                .iter()
                .enumerate()
                .map(|(i, &name)| CounterSnap {
                    name,
                    value: COUNTERS[i].load(Relaxed),
                })
                .collect(),
            gauges: idx
                .gauges
                .iter()
                .enumerate()
                .map(|(i, &name)| GaugeSnap {
                    name,
                    value: GAUGES[i].load(Relaxed),
                })
                .collect(),
            hists: idx
                .hists
                .iter()
                .enumerate()
                .map(|(i, &name)| Histogram { slot: &HISTS[i] }.snap(name))
                .collect(),
        }
    }

    /// Zeroes every registered value while keeping registrations. Meant
    /// for single-threaded harnesses (benches) — racing resets against
    /// live increments only loses increments, never corrupts.
    pub fn reset_all() {
        // See `register`: a poisoned index is still structurally valid.
        let idx = INDEX.lock().unwrap_or_else(|p| p.into_inner());
        for i in 0..idx.counters.len() {
            COUNTERS[i].store(0, Relaxed);
        }
        for i in 0..idx.gauges.len() {
            GAUGES[i].store(0, Relaxed);
        }
        for i in 0..idx.hists.len() {
            let h = &HISTS[i];
            h.count.store(0, Relaxed);
            h.sum.store(0, Relaxed);
            h.min.store(u64::MAX, Relaxed);
            h.max.store(0, Relaxed);
            for b in h.buckets.iter() {
                b.store(0, Relaxed);
            }
        }
    }
}

#[cfg(not(feature = "stats"))]
mod imp {
    use super::Snapshot;

    /// No-op counter: the stats plane is compiled out.
    #[derive(Clone, Copy)]
    pub struct Counter;

    impl Counter {
        pub fn register(_name: &'static str) -> Counter {
            Counter
        }
        #[inline(always)]
        pub fn add(&self, _n: u64) {}
        #[inline(always)]
        pub fn inc(&self) {}
        pub fn get(&self) -> u64 {
            0
        }
    }

    /// No-op gauge: the stats plane is compiled out.
    #[derive(Clone, Copy)]
    pub struct Gauge;

    impl Gauge {
        pub fn register(_name: &'static str) -> Gauge {
            Gauge
        }
        #[inline(always)]
        pub fn set(&self, _v: u64) {}
        #[inline(always)]
        pub fn set_max(&self, _v: u64) {}
        pub fn get(&self) -> u64 {
            0
        }
    }

    /// No-op histogram: the stats plane is compiled out.
    #[derive(Clone, Copy)]
    pub struct Histogram;

    impl Histogram {
        pub fn register(_name: &'static str) -> Histogram {
            Histogram
        }
        #[inline(always)]
        pub fn record(&self, _v: u64) {}
        pub fn count(&self) -> u64 {
            0
        }
        pub fn quantile_bounds(&self, _q: f64) -> Option<(u64, u64)> {
            None
        }
        pub fn quantile(&self, _q: f64) -> u64 {
            0
        }
    }

    /// Empty snapshot: nothing is recorded when compiled out.
    pub fn snapshot() -> Snapshot {
        Snapshot::default()
    }

    /// No-op.
    pub fn reset_all() {}
}

pub use imp::{reset_all, snapshot, Counter, Gauge, Histogram};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiled_out_handles_are_zero_sized() {
        if !COMPILED_IN {
            assert_eq!(std::mem::size_of::<Counter>(), 0);
            assert_eq!(std::mem::size_of::<Gauge>(), 0);
            assert_eq!(std::mem::size_of::<Histogram>(), 0);
            assert!(snapshot().counters.is_empty());
        }
    }

    #[test]
    fn bucket_index_and_bounds_agree() {
        for v in [0u64, 1, 7, 8, 9, 15, 16, 17, 100, 1_000, 65_535, u64::MAX] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi, "{v} outside [{lo},{hi}]");
            // HDR shape: bucket width within 12.5 % of the value.
            assert!(hi - lo <= lo.max(1) / 8 + 1, "bucket too wide at {v}");
        }
    }

    #[cfg(feature = "stats")]
    mod live {
        use super::super::*;

        #[test]
        fn register_dedups_and_counts() {
            let a = Counter::register("test.dedup");
            let b = Counter::register("test.dedup");
            let before = a.get();
            a.inc();
            b.add(2);
            assert_eq!(a.get(), before + 3, "same name, same slot");
            assert!(snapshot().counter("test.dedup").unwrap() >= 3);
        }

        #[test]
        fn gauge_set_max_is_a_high_watermark() {
            let g = Gauge::register("test.hiwater");
            g.set(0);
            g.set_max(5);
            g.set_max(3);
            assert_eq!(g.get(), 5);
        }

        #[test]
        fn histogram_quantiles_bound_the_samples() {
            let h = Histogram::register("test.hist");
            for v in 1..=1000u64 {
                h.record(v);
            }
            assert!(h.count() >= 1000);
            let (lo, hi) = h.quantile_bounds(0.5).unwrap();
            assert!(lo <= 500 && 500 <= hi + hi / 8, "p50 near 500: [{lo},{hi}]");
            let p999 = h.quantile(0.999);
            assert!(p999 >= 999, "p999 upper bound covers the tail");
        }

        #[test]
        fn snapshot_renders_json() {
            let c = Counter::register("test.json_counter");
            c.inc();
            let h = Histogram::register("test.json_hist");
            h.record(42);
            let json = snapshot().to_json();
            assert!(json.contains("\"test.json_counter\":"));
            assert!(json.contains("\"test.json_hist\":{\"count\":"));
            assert!(json.starts_with('{') && json.ends_with('}'));
        }

        #[test]
        fn counters_since_reports_deltas_only() {
            let c = Counter::register("test.delta");
            let base = snapshot();
            c.add(7);
            let now = snapshot();
            let d = now.counters_since(&base);
            assert!(d.iter().any(|s| s.name == "test.delta" && s.value == 7));
        }
    }
}
