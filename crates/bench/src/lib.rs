//! Benchmark harness (`ukbench`).
//!
//! One module per group of experiments; the `figures` binary dispatches
//! experiment ids (`tab1`, `fig8`, … or `all`) to these functions, each
//! of which regenerates the corresponding paper table/figure as text
//! rows (and DOT files for the graph figures). Criterion benches under
//! `benches/` reuse the same code for statistically rigorous timing of
//! the hot paths.

pub mod exp_ablation;
pub mod exp_apps;
pub mod exp_boot;
pub mod exp_build;
pub mod exp_io;
pub mod exp_micro;
pub mod exp_port;
pub mod netharness;
pub mod util;

/// All experiment ids in paper order.
pub static ALL_EXPERIMENTS: &[&str] = &[
    "tab1", "tab2", "tab4", "fig1", "fig2", "fig3", "fig5", "fig6", "fig7", "fig8", "fig9",
    "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
    "fig20", "fig21", "fig22", "ablate-batch", "ablate-pools", "ablate-sched",
];

/// Runs one experiment by id, returning its report text.
pub fn run_experiment(id: &str) -> Option<String> {
    let out = match id {
        "tab1" => exp_micro::tab1_syscall_costs(),
        "tab2" => exp_port::tab2_automated_porting(),
        "tab4" => exp_io::tab4_udp_kv(),
        "fig1" => exp_build::fig1_linux_graph(),
        "fig2" => exp_build::fig2_nginx_graph(),
        "fig3" => exp_build::fig3_hello_graph(),
        "fig5" => exp_port::fig5_syscall_heatmap(),
        "fig6" => exp_port::fig6_porting_survey(),
        "fig7" => exp_port::fig7_syscall_support(),
        "fig8" => exp_build::fig8_image_sizes(),
        "fig9" => exp_build::fig9_cross_os_sizes(),
        "fig10" => exp_boot::fig10_boot_time_per_vmm(),
        "fig11" => exp_boot::fig11_min_memory(),
        "fig12" => exp_apps::fig12_redis_throughput(),
        "fig13" => exp_apps::fig13_nginx_throughput(),
        "fig14" => exp_boot::fig14_boot_per_allocator(),
        "fig15" => exp_apps::fig15_nginx_per_allocator(),
        "fig16" => exp_apps::fig16_sqlite_speedup(),
        "fig17" => exp_apps::fig17_sqlite_insert_time(),
        "fig18" => exp_apps::fig18_redis_per_allocator(),
        "fig19" => exp_io::fig19_tx_throughput(),
        "fig20" => exp_io::fig20_9pfs_latency(),
        "fig21" => exp_boot::fig21_page_table_boot(),
        "fig22" => exp_io::fig22_shfs_vs_vfs(),
        "ablate-batch" => exp_ablation::ablate_batching(),
        "ablate-pools" => exp_ablation::ablate_pools(),
        "ablate-sched" => exp_ablation::ablate_scheduler(),
        _ => return None,
    };
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_experiment_resolves() {
        // Smoke-run only the cheap, deterministic ones here; the rest
        // run in integration tests and via the binary.
        for id in ["fig1", "fig6", "tab2"] {
            assert!(run_experiment(id).is_some(), "{id}");
        }
        assert!(run_experiment("nope").is_none());
    }
}
