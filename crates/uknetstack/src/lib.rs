//! Network stack micro-library (the paper's lwIP port).
//!
//! Unikraft runs lwIP on top of `uknetdev`; applications choose between
//! the standard socket interface (scenario ➁ in the paper's Figure 4) or
//! the raw `uknetdev` burst API (scenario ➆) when performance dictates.
//! This crate is the socket-path substrate: a small but real stack —
//! byte-level Ethernet/ARP/IPv4/UDP/TCP codecs with genuine Internet
//! checksums, an ARP cache, a TCP state machine with sequence tracking,
//! and a non-blocking socket layer.
//!
//! # Zero-copy pooled datapath
//!
//! The stack follows `uknetdev`'s §3.1 buffer-ownership model end to
//! end. Every protocol codec has two serializers: `encode()` — the
//! allocating reference form — and `encode_into(&mut Netbuf)`, which
//! *prepends* the header into a pooled buffer's headroom in place
//! (property-tested byte-identical to the reference). On transmit the
//! payload is written once behind [`stack::TX_HEADROOM`] bytes of
//! headroom and TCP/UDP/ICMP → IPv4 → Ethernet headers are pushed in
//! front of it; the same buffer goes to `tx_burst`, is reclaimed on
//! completion and recycled into the [`NetbufPool`]. On receive the
//! buffer walks back up via `pull_header` and is *kept*: UDP payloads
//! queue on sockets as netbufs and TCP payloads queue on connections
//! as netbufs (GRO-coalesced per burst), until a reader either copies
//! them out (`udp_recv_into`/`tcp_recv_into`) or takes the buffers
//! whole — the zero-copy receive path
//! (`tcp_recv_netbuf`/`udp_recv_netbuf`, recycled by the caller).
//! Steady-state packet processing performs zero heap allocations
//! (asserted by the `zero_alloc` integration test and the `netpath`
//! smoke bench).
//!
//! Frames travel through a [`VirtioNet`](uknetdev::VirtioNet) device;
//! [`testnet::Network`] wires multiple stacks together so clients and
//! servers exchange real packets in-process — the wire moves netbufs
//! between pools too, one DMA-style copy per hop.
//!
//! # Connection lifecycle and the timer wheel
//!
//! With a virtual clock installed ([`NetStack::set_clock`]), every
//! connection walks the full RFC 793 state machine:
//!
//! ```text
//!            LISTEN ──SYN──▶ SYN_RECEIVED ──ACK──▶ ESTABLISHED
//!                               │ handshake                │ close
//!                               ▼ timeout                  ▼
//!                             (reaped)                FIN_WAIT_1/2 ── CLOSING
//!            SYN_SENT ──SYN-ACK─────────▶                  │
//!                                                          ▼
//!            CLOSE_WAIT ─▶ LAST_ACK ─▶ CLOSED         TIME_WAIT ──2MSL──▶ (port
//!                                                                         recycled)
//! ```
//!
//! Every time-driven transition — retransmission (RTO), zero-window
//! persist probes, delayed ACKs, the SYN_RECEIVED handshake timeout,
//! FIN_WAIT_2 orphan reaping, TIME_WAIT's 2MSL park, and keepalive
//! probing with dead-peer teardown — is a deadline on one
//! **hierarchical timer wheel** ([`timer::TimerWheel`]: 4 levels ×
//! 64 slots at 1 ms ticks, O(1) arm/cancel, cascading advance,
//! generation-tagged tokens, zero allocations once warm) driven from
//! `pump` instead of per-connection scans. Demux is a hashed
//! open-addressing flow table ([`flow::FlowTable`]) over an inline
//! TCB slab — no per-connection boxing, no per-lookup allocation.
//!
//! The accept path is bounded on both sides
//! ([`StackConfig::listen_backlog`]): when the half-open SYN queue is
//! full, the **oldest half-open** embryo is evicted (its buffers
//! return to the pool) to admit the new SYN — the
//! `netstack.tcp.syn_overflow` counter records each eviction; when
//! the accept backlog is full, handshake-completing ACKs are dropped
//! and the client's retransmission finishes the handshake once the
//! application drains `tcp_accept`. Segments matching no flow draw a
//! correctly-sequenced RST (never RST-on-RST); in-window RSTs to a
//! LISTEN socket are dropped rather than wedging the listener. For
//! stacks holding very large mostly-idle connection populations,
//! [`StackConfig::lean_tcbs`] trades the per-TCB queue preallocation
//! for on-demand growth — idle connections then cost well under a
//! kilobyte each (measured in the `netpath` bench's connection-scale
//! grid at 100K concurrent connections).
//!
//! [`NetbufPool`]: uknetdev::NetbufPool
//! [`NetStack::set_clock`]: stack::NetStack::set_clock
//! [`StackConfig::listen_backlog`]: stack::StackConfig::listen_backlog
//! [`StackConfig::lean_tcbs`]: stack::StackConfig::lean_tcbs

pub mod arp;
pub mod eth;
pub mod flow;
pub mod icmp;
pub mod ipv4;
pub mod stack;
pub mod tcp;
pub mod testnet;
pub mod timer;
pub mod udp;

pub use stack::{NetStack, SocketHandle, StackConfig};
pub use testnet::Network;

use std::fmt;

/// A MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mac(pub [u8; 6]);

impl Mac {
    /// The broadcast address.
    pub const BROADCAST: Mac = Mac([0xff; 6]);

    /// Deterministic MAC for test node `n`.
    pub fn node(n: u8) -> Mac {
        Mac([0x02, 0x00, 0x00, 0x00, 0x00, n])
    }
}

impl fmt::Display for Mac {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            m[0], m[1], m[2], m[3], m[4], m[5]
        )
    }
}

/// An IPv4 address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ipv4Addr(pub u32);

impl Ipv4Addr {
    /// Builds an address from octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4Addr(u32::from_be_bytes([a, b, c, d]))
    }

    /// Byte representation (network order).
    pub fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }
}

impl fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

/// An (address, port) endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Endpoint {
    /// IPv4 address.
    pub addr: Ipv4Addr,
    /// Port.
    pub port: u16,
}

impl Endpoint {
    /// Builds an endpoint.
    pub fn new(addr: Ipv4Addr, port: u16) -> Self {
        Endpoint { addr, port }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.addr, self.port)
    }
}

/// The Internet checksum (RFC 1071) over `data`, seeded with `initial`.
///
/// Delegates to the one-pass unrolled implementation in
/// [`uknetdev::csum`] — shared with the virtio device model, which
/// completes offloaded transport checksums with the same code the
/// stack's software fallback and RX verification use.
pub fn inet_checksum(data: &[u8], initial: u32) -> u16 {
    uknetdev::csum::inet_checksum(data, initial)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_of_rfc1071_example() {
        // Classic example: 00 01 f2 03 f4 f5 f6 f7 → checksum 0x220d.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(inet_checksum(&data, 0), 0x220d);
    }

    #[test]
    fn checksum_odd_length() {
        let data = [0x01, 0x02, 0x03];
        // 0x0102 + 0x0300 = 0x0402 → !0x0402 = 0xfbfd.
        assert_eq!(inet_checksum(&data, 0), 0xfbfd);
    }

    #[test]
    fn checksum_verifies_to_zero() {
        let mut data = vec![0x45, 0x00, 0x00, 0x1c, 0xab, 0xcd, 0x00, 0x00, 0x40, 0x11];
        let ck = inet_checksum(&data, 0);
        data.extend_from_slice(&ck.to_be_bytes());
        assert_eq!(inet_checksum(&data, 0), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Ipv4Addr::new(10, 0, 0, 1).to_string(), "10.0.0.1");
        assert_eq!(Mac::node(3).to_string(), "02:00:00:00:00:03");
        assert_eq!(
            Endpoint::new(Ipv4Addr::new(1, 2, 3, 4), 80).to_string(),
            "1.2.3.4:80"
        );
    }
}
