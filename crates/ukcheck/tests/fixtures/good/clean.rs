// Known-good: branch-and-arithmetic datapath code, nothing to flag.
pub fn fold(sum: u64) -> u16 {
    let mut s = sum;
    while s >> 16 != 0 {
        s = (s & 0xffff) + (s >> 16);
    }
    s as u16
}

pub fn pick(q: &[u8]) -> u8 {
    match q.first() {
        Some(b) => *b,
        None => 0,
    }
}
