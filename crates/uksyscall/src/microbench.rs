//! Table 1 microbenchmark helpers: real function-call and syscall costs.
//!
//! Where the host allows it (x86_64 Linux), `real_getpid_ns` issues an
//! actual `SYS_getpid` via the `syscall` instruction so the measured
//! Linux row of Table 1 is genuine; the function-call row is always
//! measured for real. The modelled rows come from
//! [`SyscallMode::overhead_cycles`](crate::shim::SyscallMode).

use std::hint::black_box;
use std::time::Instant;

/// A deliberately un-inlinable no-op function (the "function call" row).
#[inline(never)]
pub fn noop_function(x: u64) -> u64 {
    black_box(x)
}

/// Measures the average cost of a no-op function call over `iters`
/// iterations, in nanoseconds.
pub fn function_call_ns(iters: u64) -> f64 {
    let start = Instant::now();
    let mut acc = 0u64;
    for i in 0..iters {
        acc = acc.wrapping_add(noop_function(black_box(i)));
    }
    black_box(acc);
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Issues one real `getpid` syscall via the `syscall` instruction.
///
/// Returns `None` on non-x86_64 or non-Linux hosts.
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
pub fn raw_getpid() -> Option<i64> {
    let ret: i64;
    // SAFETY: SYS_getpid (39) takes no arguments, cannot fail, and only
    // clobbers the registers listed; issuing it has no side effects.
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") 39i64 => ret,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack, preserves_flags)
        );
    }
    Some(ret)
}

/// Fallback for other targets.
#[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
pub fn raw_getpid() -> Option<i64> {
    None
}

/// Measures the average cost of a real `getpid` syscall, ns; `None` when
/// raw syscalls are unavailable.
pub fn real_getpid_ns(iters: u64) -> Option<f64> {
    raw_getpid()?;
    let start = Instant::now();
    for _ in 0..iters {
        black_box(raw_getpid());
    }
    Some(start.elapsed().as_nanos() as f64 / iters as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn function_call_is_fast() {
        let ns = function_call_ns(100_000);
        // Generous bound: a no-op call is well under 100 ns even in CI.
        assert!(ns < 100.0, "function call took {ns} ns");
    }

    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    #[test]
    fn raw_getpid_matches_std() {
        let pid = raw_getpid().unwrap();
        assert_eq!(pid as u32, std::process::id());
    }

    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    #[test]
    fn syscall_costs_more_than_function_call() {
        let f = function_call_ns(50_000);
        let s = real_getpid_ns(50_000).unwrap();
        assert!(
            s > f,
            "syscall ({s} ns) must cost more than a function call ({f} ns)"
        );
    }
}
