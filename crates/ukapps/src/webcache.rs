//! The Figure 22 web cache: VFS path vs specialized SHFS path.
//!
//! §6.3 measures "the time it takes to look up a file and open a file
//! descriptor for it" over 1000 open requests, for files that exist and
//! files that do not, comparing: the specialized SHFS unikernel, the
//! same app over `vfscore` (no specialization), and a Linux VM. The two
//! Unikraft paths here are *real code*; the Linux VM adds the guest
//! kernel's per-open cost.

use ukplat::cost;
use ukplat::time::Tsc;
use ukplat::{Errno, Result};
use ukvfs::shfs::Shfs;
use ukvfs::vfscore::Vfs;
use ukvfs::RamFs;

/// Which open path the cache uses (Figure 22's bars).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheBackend {
    /// Specialized: direct SHFS hash open (scenario ➇ specialization).
    Shfs,
    /// Standard: full vfscore path walk + fd table.
    Vfs,
    /// Linux VM baseline: vfscore-equivalent work + guest-kernel
    /// syscall/VFS overhead charged per open.
    LinuxVm,
}

impl CacheBackend {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            CacheBackend::Shfs => "Unikraft SHFS",
            CacheBackend::Vfs => "Unikraft VFS",
            CacheBackend::LinuxVm => "Linux VM",
        }
    }
}

/// The web cache application.
pub struct WebCache {
    backend: CacheBackend,
    shfs: Option<Shfs>,
    vfs: Option<Vfs>,
    tsc: Tsc,
    hits: u64,
    misses: u64,
}

impl std::fmt::Debug for WebCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WebCache")
            .field("backend", &self.backend.name())
            .field("hits", &self.hits)
            .finish()
    }
}

impl WebCache {
    /// Builds a cache with `files` preloaded, over the chosen backend.
    pub fn new(backend: CacheBackend, files: &[(&str, &[u8])], tsc: &Tsc) -> Result<Self> {
        let mut cache = WebCache {
            backend,
            shfs: None,
            vfs: None,
            tsc: tsc.clone(),
            hits: 0,
            misses: 0,
        };
        match backend {
            CacheBackend::Shfs => {
                let mut fs = Shfs::new();
                for (name, data) in files {
                    fs.insert(name, data.to_vec());
                }
                cache.shfs = Some(fs);
            }
            CacheBackend::Vfs | CacheBackend::LinuxVm => {
                let mut ramfs = RamFs::new();
                for (name, data) in files {
                    ramfs.add_file(name, data)?;
                }
                let mut vfs = Vfs::new();
                vfs.mount("/", Box::new(ramfs))?;
                cache.vfs = Some(vfs);
            }
        }
        Ok(cache)
    }

    /// One cache lookup: open the file (and close it again on the VFS
    /// paths, as the benchmark loop does). Returns the file size.
    pub fn open_request(&mut self, name: &str) -> Result<usize> {
        fn vfs_open(vfs: &mut Vfs, name: &str) -> Result<usize> {
            let path = format!("/{name}");
            let fd = vfs.open(&path)?;
            let size = vfs.fsize(fd)? as usize;
            vfs.close(fd)?;
            Ok(size)
        }
        let r = match self.backend {
            CacheBackend::Shfs => {
                let fs = self.shfs.as_mut().expect("backend built");
                fs.open(name).and_then(|h| fs.size(h))
            }
            CacheBackend::Vfs => vfs_open(self.vfs.as_mut().expect("backend built"), name),
            CacheBackend::LinuxVm => {
                // Same VFS work plus the Linux guest's per-open cost:
                // syscall traps (open/fstat/close) and the kernel path.
                self.tsc.advance(3 * cost::LINUX_SYSCALL_CYCLES);
                self.tsc.advance(cost::LINUX_GUEST_FILE_REQ_CYCLES / 16);
                vfs_open(self.vfs.as_mut().expect("backend built"), name)
            }
        };
        match &r {
            Ok(_) => self.hits += 1,
            Err(Errno::NoEnt) => self.misses += 1,
            Err(_) => {}
        }
        r
    }

    /// (hits, misses).
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn files() -> Vec<(&'static str, &'static [u8])> {
        vec![
            ("index.html", b"<html>index</html>" as &[u8]),
            ("logo.png", b"\x89PNG fake"),
        ]
    }

    fn tsc() -> Tsc {
        Tsc::new(cost::CPU_FREQ_HZ)
    }

    #[test]
    fn all_backends_serve_hits_and_misses() {
        for b in [CacheBackend::Shfs, CacheBackend::Vfs, CacheBackend::LinuxVm] {
            let t = tsc();
            let mut c = WebCache::new(b, &files(), &t).unwrap();
            assert_eq!(c.open_request("index.html").unwrap(), 18, "{b:?}");
            assert_eq!(c.open_request("nope").unwrap_err(), Errno::NoEnt);
            assert_eq!(c.stats(), (1, 1));
        }
    }

    #[test]
    fn linux_vm_charges_guest_costs() {
        let t = tsc();
        let mut c = WebCache::new(CacheBackend::LinuxVm, &files(), &t).unwrap();
        c.open_request("index.html").unwrap();
        assert!(t.now_cycles() > 0);
        let t2 = tsc();
        let mut c2 = WebCache::new(CacheBackend::Vfs, &files(), &t2).unwrap();
        c2.open_request("index.html").unwrap();
        assert_eq!(t2.now_cycles(), 0, "Unikraft paths charge nothing virtual");
    }
}
