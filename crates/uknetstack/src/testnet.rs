//! An in-process network: wires stacks together through their devices.
//!
//! Frames harvested from one stack's TX completions are injected into the
//! destination stack's RX ring, selected by destination MAC (broadcast
//! goes everywhere). This replaces the paper's physical 10 GbE cable
//! between two Shuttle machines with a lossless in-memory link — the code
//! under test (drivers, stack, sockets) is identical.
//!
//! The wire moves *netbufs*, not owned byte vectors — and it moves
//! them in **bursts**: TX completions are reclaimed as pooled buffers
//! ([`NetStack::harvest_tx`]), each frame is "DMA"-copied onto a
//! buffer posted from the receiver's own pool (one copy, exactly what
//! a NIC does on the cable) and staged per destination, and every
//! destination gets its whole batch with a single
//! [`NetStack::deliver_burst`] — one ring crossing per burst, not per
//! frame. The sender's buffers are recycled. In steady state a `step`
//! performs zero heap allocations — buffers just circulate through
//! the pools.
//!
//! The wire is also the **host side of the device's offloads**, the
//! role vhost plays for virtio-net:
//!
//! - a harvested frame carrying a `GsoRequest`
//!   (`VIRTIO_NET_F_HOST_TSO4`) is cut into per-MSS wire frames by
//!   [`uknetdev::gso::cut_frame`] *directly onto the receiver's
//!   pooled RX buffers* — the cut and the DMA copy are the same pass,
//!   so an oversized super-segment chain costs one ring crossing and
//!   one staging entry on the TX side no matter how many MSS frames
//!   it becomes;
//! - every frame the wire delivers is marked checksum-validated
//!   (`VIRTIO_NET_F_GUEST_CSUM`): the sending device completed or
//!   verified the checksums before the frame reached the cable, so
//!   the receiving stack may skip its software verification pass.
//!   Frames injected by other means (tests forging corruption) stay
//!   unmarked and are always verified.
//!
//! For receive-path robustness tests the wire can also be made
//! **imperfect**: [`Network::set_dup_every`] duplicates every n-th
//! delivered plain frame, [`Network::set_reorder_every`] swaps
//! every n-th with its predecessor in the same destination's batch,
//! [`Network::set_drop_every`] silently discards every n-th, and
//! [`Network::set_drop_burst`] discards a whole run of consecutive
//! frames on a cadence (congestive tail loss) — deterministic
//! stand-ins for the duplicated/reordered/lost deliveries a real L2
//! can produce, which the TCP loss-recovery machinery must survive
//! with byte-identical delivery (retransmit the hole, reassemble the
//! out-of-order tail, never desync on a reordered FIN). Injected
//! faults are visible both through [`Network::faults_injected`] and,
//! for drops, through the `testnet.drops_injected` counter in the
//! global `ukstats` registry, so fault schedules show up in `/stats`
//! and bench snapshots.
//!
//! [`Network::set_bandwidth_delay`] turns the ideal cable into a
//! bandwidth-delay pipe: delivered frames sit in an in-flight line for
//! a fixed number of steps (propagation delay) and at most a budget of
//! frames drains per step (link rate), so congestion-control tests see
//! queueing, RTT, and a real in-flight cap. [`Network::set_clock`]
//! shares one virtual [`ukplat::time::Tsc`] across every attached
//! stack and advances it per step ([`Network::set_step_ns`]), driving
//! the stacks' retransmission timers deterministically.

use uknetdev::netbuf::Netbuf;

use crate::arp::{ArpOp, ArpPacket};
use crate::eth::{EthHeader, EtherType};
use crate::ipv4::{IpProto, Ipv4Header};
use crate::stack::NetStack;
use crate::tcp::{TcpFlags, TcpHeader, TCP_HDR_LEN};
use crate::{Endpoint, Ipv4Addr, Mac};

/// A hub connecting multiple stacks.
#[derive(Debug, Default)]
pub struct Network {
    stacks: Vec<NetStack>,
    /// Harvest scratch, reused across steps.
    wire_scratch: Vec<Netbuf>,
    /// Per-destination injection staging (reused across steps).
    inject_stage: Vec<Vec<Netbuf>>,
    /// When capturing, every delivered wire frame's bytes in delivery
    /// order (post-TSO-cut — what the receivers actually see).
    wire_log: Option<Vec<Vec<u8>>>,
    /// Duplicate every n-th delivered plain frame (0 = off).
    dup_every: u64,
    /// Swap every n-th delivered plain frame with its predecessor in
    /// the same destination batch (0 = off).
    reorder_every: u64,
    /// Discard every n-th delivered plain frame (0 = off).
    drop_every: u64,
    /// Bit-flip every n-th delivered plain IPv4 frame (0 = off).
    corrupt_every: u64,
    /// Start a drop burst every n-th plain frame (0 = off).
    drop_burst_every: u64,
    /// Length of each drop burst (frames).
    drop_burst_len: u64,
    /// Frames still to discard in the current burst.
    drop_burst_left: u64,
    /// Plain frames delivered since the fault counters were armed.
    fault_tick: u64,
    /// Faults injected so far (tests assert against this).
    faults_injected: u64,
    /// Propagation delay in steps for the bandwidth-delay pipe
    /// (0 with `bw_per_step == 0` = ideal cable).
    delay_steps: u64,
    /// Frames released from the in-flight line per step (0 = no cap).
    bw_per_step: usize,
    /// In-flight frames: (release step, destination, frame).
    delay_line: std::collections::VecDeque<(u64, usize, Netbuf)>,
    /// Steps taken (drives the delay line).
    step_no: u64,
    /// Shared virtual clock, advanced per step when armed.
    clock: Option<ukplat::time::Tsc>,
    /// Nanoseconds the clock advances per step.
    step_ns: u64,
}

/// The wire-side drop counter, shared by every [`Network`] in the
/// process (the `ukstats` registry is global; registration dedups by
/// name, so this is one slot no matter how many wires exist).
fn drops_counter() -> ukstats::Counter {
    static C: std::sync::OnceLock<ukstats::Counter> = std::sync::OnceLock::new();
    *C.get_or_init(|| ukstats::Counter::register("testnet.drops_injected"))
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a stack; returns its index.
    pub fn attach(&mut self, stack: NetStack) -> usize {
        self.stacks.push(stack);
        // Pre-sized for the deepest step backlogs the bulk workloads
        // reach: harvest and stage depth shifts between runs with the
        // stacks' recovery/ACK timing, and the zero-alloc guards would
        // see a mid-measurement Vec growth as a datapath allocation.
        self.inject_stage.push(Vec::with_capacity(256));
        if self.wire_scratch.capacity() < 256 {
            self.wire_scratch.reserve(256 - self.wire_scratch.capacity());
        }
        self.stacks.len() - 1
    }

    /// Access a stack by index.
    pub fn stack(&mut self, idx: usize) -> &mut NetStack {
        &mut self.stacks[idx]
    }

    /// Starts recording every delivered wire frame (post-TSO-cut).
    /// Tests use this to prove framing properties — e.g. that TSO
    /// device cutting and software segmentation are byte-identical on
    /// the wire. Capturing allocates; perf paths leave it off.
    pub fn start_wire_capture(&mut self) {
        self.wire_log = Some(Vec::new());
    }

    /// Takes the captured frames recorded since
    /// [`start_wire_capture`](Self::start_wire_capture) (capture stays
    /// on with an empty log).
    pub fn take_wire_capture(&mut self) -> Vec<Vec<u8>> {
        self.wire_log.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Stops recording wire frames and discards anything captured —
    /// capturing allocates per frame, so drivers that interleave
    /// capture-assisted setup with allocation-sensitive measurement
    /// turn it off before the timed window.
    pub fn stop_wire_capture(&mut self) {
        self.wire_log = None;
    }

    /// Duplicates every `n`-th delivered plain (unchained) frame: the
    /// receiver sees the frame twice back-to-back, like a flapping
    /// switch path. `0` disables. Deterministic — tests get the same
    /// fault pattern every run.
    pub fn set_dup_every(&mut self, n: u64) {
        self.dup_every = n;
        self.fault_tick = 0;
    }

    /// Swaps every `n`-th delivered plain frame with the frame staged
    /// just before it for the same destination (adjacent reorder).
    /// `0` disables.
    pub fn set_reorder_every(&mut self, n: u64) {
        self.reorder_every = n;
        self.fault_tick = 0;
    }

    /// Discards every `n`-th delivered plain frame before it reaches
    /// the receiver's ring, like congestive loss on a real cable. `0`
    /// disables. Each drop bumps `testnet.drops_injected` in the
    /// global stats registry. Datagram traffic (UDP, pings) loses
    /// those frames for good; TCP streams recover them through the
    /// stack's retransmission machinery.
    pub fn set_drop_every(&mut self, n: u64) {
        self.drop_every = n;
        self.fault_tick = 0;
        drops_counter(); // Register the slot up front.
    }

    /// Flips one payload bit in every `n`-th delivered plain IPv4
    /// frame — in-flight corruption a real cable or a flaky NIC can
    /// produce. `0` disables. The corrupted frame loses its
    /// device-verified checksum mark (`VIRTIO_NET_F_GUEST_CSUM` no
    /// longer vouches for it), so the receiving stack's software
    /// verification pass detects the damage and drops the frame — to
    /// TCP it looks like loss and is recovered by retransmission.
    /// Non-IP frames (ARP) are exempt: they carry no checksum to
    /// detect the damage with.
    pub fn set_corrupt_every(&mut self, n: u64) {
        self.corrupt_every = n;
        self.fault_tick = 0;
    }

    /// Discards `len` *consecutive* plain frames starting at every
    /// `every`-th delivery — the congestive tail-loss pattern that
    /// defeats fast retransmit (not enough dup-ACKs survive) and
    /// forces the RTO path. `every == 0` disables.
    pub fn set_drop_burst(&mut self, every: u64, len: u64) {
        self.drop_burst_every = every;
        self.drop_burst_len = len;
        self.drop_burst_left = 0;
        self.fault_tick = 0;
        drops_counter(); // Register the slot up front.
    }

    /// Turns the ideal cable into a bandwidth-delay pipe: every
    /// delivered frame sits in flight for `delay_steps` steps
    /// (propagation delay), and at most `per_step` frames drain from
    /// the line per step (the link rate; `0` = uncapped). Frames
    /// beyond the budget queue behind — the standing queue a
    /// congestion controller is supposed to regulate. `(0, 0)`
    /// restores the ideal cable (any frames still in flight are
    /// delivered on the following steps).
    pub fn set_bandwidth_delay(&mut self, delay_steps: u64, per_step: usize) {
        self.delay_steps = delay_steps;
        self.bw_per_step = per_step;
    }

    /// Shares one virtual clock across every *currently attached*
    /// stack (arming their retransmission timers) and keeps a handle
    /// so [`step`](Self::step) can advance it. Pair with
    /// [`set_step_ns`](Self::set_step_ns).
    pub fn set_clock(&mut self, tsc: &ukplat::time::Tsc) {
        for s in &mut self.stacks {
            s.set_clock(tsc);
        }
        self.clock = Some(tsc.clone());
    }

    /// Nanoseconds the shared clock advances at the start of every
    /// [`step`](Self::step) (default 0 — the clock only moves when the
    /// test advances it by hand).
    pub fn set_step_ns(&mut self, ns: u64) {
        self.step_ns = ns;
    }

    /// Faults (duplicates + reorders + drops) injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.faults_injected
    }

    /// Moves frames between stacks once **without** pumping them — the
    /// pure wire half of [`step`](Self::step). Callers that need to
    /// attribute work per side (the receive-path benches time the
    /// receiver's pump separately) drive the pumps themselves.
    pub fn transfer(&mut self) -> usize {
        let mut moved = 0;
        let mut scratch = std::mem::take(&mut self.wire_scratch);
        let mut stage = std::mem::take(&mut self.inject_stage);
        for src in 0..self.stacks.len() {
            self.stacks[src].harvest_tx(&mut scratch);
            for nb in scratch.drain(..) {
                // The device must have completed any offloaded
                // checksum before the frame reached the wire — except
                // on a GSO frame, whose per-frame checksums only exist
                // after the cut below services the request.
                debug_assert!(
                    nb.csum_request().is_none() || nb.gso_request().is_some(),
                    "frame crossed the wire with an unserviced csum request"
                );
                let dst = match EthHeader::decode(nb.payload()) {
                    Ok((h, _)) => h.dst,
                    Err(_) => {
                        self.stacks[src].recycle(nb);
                        continue;
                    }
                };
                let deliverable = dst == Mac::BROADCAST
                    || self
                        .stacks
                        .iter()
                        .enumerate()
                        .any(|(i, s)| i != src && dst == s.mac());
                if !deliverable {
                    // Addressed to a MAC nobody owns (e.g. a response
                    // drawn by forged traffic): the frame vanishes on
                    // the wire — but the capture still sees it, so
                    // drivers can observe what the victim answered.
                    if let Some(log) = self.wire_log.as_mut() {
                        log.push(nb.chain_segments().flatten().copied().collect());
                    }
                }
                for i in 0..self.stacks.len() {
                    if i == src {
                        continue;
                    }
                    if dst != self.stacks[i].mac() && dst != Mac::BROADCAST {
                        continue;
                    }
                    let staged_from = stage[i].len();
                    if let Some(gso) = nb.gso_request() {
                        if self.stacks[i].accepts_super_frames() {
                            // Guest-to-guest fast path
                            // (`VIRTIO_NET_F_GUEST_TSO4`/`MRG_RXBUF`):
                            // the super-segment is never cut — it
                            // crosses as one chain, DMA-copied extent
                            // by extent onto the receiver's pooled
                            // buffers. One delivery, one demux, one
                            // ingest on the other side.
                            let stack = &mut self.stacks[i];
                            let mut segs = nb.chain_segments();
                            let mut rx = stack.take_rx_buf();
                            rx.set_payload(segs.next().expect("chain head"));
                            for seg in segs {
                                let mut frag = stack.take_rx_buf();
                                frag.set_payload(seg);
                                rx.chain_append(frag);
                            }
                            stage[i].push(rx);
                            moved += 1;
                        } else {
                            // Host-side TSO cut
                            // (`VIRTIO_NET_F_HOST_TSO4` without a
                            // big-receive peer): cut MSS frames
                            // straight onto the receiver's pooled RX
                            // buffers — the cut is the DMA copy.
                            let stack = &mut self.stacks[i];
                            match uknetdev::gso::cut_frame(
                                &nb,
                                gso.mss,
                                || stack.take_rx_buf(),
                                &mut stage[i],
                            ) {
                                Ok(n) => moved += n,
                                Err(_) => continue, // Malformed: dropped.
                            }
                        }
                    } else {
                        // Wire "DMA": copy the frame onto a buffer
                        // from the receiver's pool and stage it for
                        // that destination's burst.
                        let mut rx = self.stacks[i].take_rx_buf();
                        rx.set_payload(nb.payload());
                        stage[i].push(rx);
                        moved += 1;
                    }
                    for rx in &mut stage[i][staged_from..] {
                        // The sending device completed/verified every
                        // checksum (`VIRTIO_NET_F_GUEST_CSUM`).
                        rx.mark_csum_verified();
                    }
                    if let Some(log) = self.wire_log.as_mut() {
                        for rx in &stage[i][staged_from..] {
                            // A chain logs as one flattened frame.
                            log.push(rx.chain_segments().flatten().copied().collect());
                        }
                    }
                    // Configured wire faults: drop, duplicate delivery
                    // and adjacent reorder of plain frames, on
                    // deterministic cadences. Every plain frame staged
                    // by this delivery ticks the cadence once — a
                    // host-cut super-segment exposes each cut frame to
                    // the schedule individually, exactly as it would
                    // travel a real lossy link. Chained big-receive
                    // frames stay exempt (they never exist on a real
                    // wire as one frame).
                    if self.dup_every > 0
                        || self.reorder_every > 0
                        || self.drop_every > 0
                        || self.drop_burst_every > 0
                        || self.corrupt_every > 0
                    {
                        let mut k = staged_from;
                        while k < stage[i].len() {
                            if stage[i][k].has_frags() {
                                k += 1;
                                continue;
                            }
                            self.fault_tick += 1;
                            let mut drop =
                                self.drop_every > 0 && self.fault_tick % self.drop_every == 0;
                            if self.drop_burst_left > 0 {
                                // Mid-burst: this frame goes down too.
                                self.drop_burst_left -= 1;
                                drop = true;
                            } else if self.drop_burst_every > 0
                                && self.fault_tick % self.drop_burst_every == 0
                            {
                                self.drop_burst_left = self.drop_burst_len.saturating_sub(1);
                                drop = true;
                            }
                            if drop {
                                // The frame came off the receiver's pool;
                                // recycle it there so loss never leaks.
                                let lost = stage[i].remove(k);
                                self.stacks[i].recycle(lost);
                                moved -= 1;
                                self.faults_injected += 1;
                                drops_counter().inc();
                                continue; // `k` now names the next frame.
                            }
                            if self.corrupt_every > 0
                                && self.fault_tick % self.corrupt_every == 0
                            {
                                // Only IPv4 frames: a flipped ARP byte
                                // has no checksum to be caught by and
                                // would poison address resolution
                                // outside the fault model.
                                let rx = &mut stage[i][k];
                                let is_ipv4 = rx.payload().len() > 14
                                    && rx.payload()[12..14] == [0x08, 0x00];
                                if is_ipv4 {
                                    // Flip a bit in the last byte —
                                    // always inside the transport
                                    // checksum's coverage.
                                    let end = rx.payload().len() - 1;
                                    rx.payload_mut()[end] ^= 0x10;
                                    // The device's checksum guarantee
                                    // no longer holds: the receiver
                                    // must software-verify (and drop).
                                    rx.clear_csum_verified();
                                    self.faults_injected += 1;
                                }
                            }
                            if self.dup_every > 0 && self.fault_tick % self.dup_every == 0 {
                                let mut dup = self.stacks[i].take_rx_buf();
                                dup.set_payload(stage[i][k].payload());
                                // The copy inherits the original's
                                // checksum state: duplicating a frame
                                // the corrupt fault just touched must
                                // not restore the trusted mark.
                                if stage[i][k].csum_verified() {
                                    dup.mark_csum_verified();
                                }
                                stage[i].insert(k + 1, dup);
                                moved += 1;
                                self.faults_injected += 1;
                                k += 1; // The copy itself never ticks.
                            }
                            if self.reorder_every > 0
                                && self.fault_tick % self.reorder_every == 0
                                && k >= 1
                            {
                                stage[i].swap(k, k - 1);
                                self.faults_injected += 1;
                            }
                            k += 1;
                        }
                    }
                }
                self.stacks[src].recycle(nb);
            }
        }
        // Bandwidth-delay pipe: staged frames enter the in-flight
        // line; only the frames whose propagation delay has elapsed —
        // at most the per-step link budget — reach the rings below.
        self.step_no += 1;
        if self.delay_steps > 0 || self.bw_per_step > 0 || !self.delay_line.is_empty() {
            for (i, frames) in stage.iter_mut().enumerate() {
                for nb in frames.drain(..) {
                    self.delay_line
                        .push_back((self.step_no + self.delay_steps, i, nb));
                }
            }
            let budget = if self.bw_per_step == 0 {
                usize::MAX
            } else {
                self.bw_per_step
            };
            let mut released = 0;
            while released < budget {
                match self.delay_line.front() {
                    Some(&(due, _, _)) if due <= self.step_no => {}
                    _ => break,
                }
                let (_, i, nb) = self.delay_line.pop_front().expect("checked front");
                stage[i].push(nb);
                released += 1;
            }
            if !self.delay_line.is_empty() {
                // Frames still in flight: keep `run_until_quiet`
                // stepping until the pipe drains.
                moved += 1;
            }
        }
        // One ring injection per destination per step.
        for (i, frames) in stage.iter_mut().enumerate() {
            if !frames.is_empty() {
                self.stacks[i].deliver_burst(frames);
            }
        }
        self.wire_scratch = scratch;
        self.inject_stage = stage;
        moved
    }

    /// Moves frames between stacks once and lets every stack process
    /// what arrived; returns frames moved (wire frames, i.e. a TSO
    /// super-segment counts once per cut frame).
    pub fn step(&mut self) -> usize {
        if let Some(c) = self.clock.as_ref() {
            c.advance_ns(self.step_ns);
        }
        let moved = self.transfer();
        for s in &mut self.stacks {
            s.pump();
        }
        moved
    }

    /// Steps until no frames move (or `max_rounds` to bound livelock).
    pub fn run_until_quiet(&mut self, max_rounds: usize) -> usize {
        let mut total = 0;
        for _ in 0..max_rounds {
            let moved = self.step();
            total += moved;
            if moved == 0 {
                break;
            }
        }
        total
    }

    /// Teaches stack `dst` an ARP mapping by injecting a forged reply,
    /// the way an attacker on the L2 segment would poison the cache.
    /// The mapping lets the victim's responses (SYN-ACKs, RSTs) leave
    /// the stack instead of parking on a never-answered ARP request —
    /// they cross the wire to a MAC nobody owns and are recycled, so
    /// robustness tests can leak-check the victim's pool.
    pub fn inject_arp_reply(&mut self, dst: usize, ip: Ipv4Addr, mac: Mac) {
        let victim_mac = self.stacks[dst].mac();
        let victim_ip = self.stacks[dst].ip();
        let mut nb = Netbuf::alloc(2048, 64);
        nb.append(
            &ArpPacket {
                op: ArpOp::Reply,
                sha: mac,
                spa: ip,
                tha: victim_mac,
                tpa: victim_ip,
            }
            .encode(),
        );
        EthHeader {
            dst: victim_mac,
            src: mac,
            ethertype: EtherType::Arp,
        }
        .encode_into(&mut nb);
        self.stacks[dst].deliver_frame(nb);
    }

    /// Forges a bare TCP segment (no payload) from a spoofed remote
    /// endpoint and delivers it straight into stack `dst`'s RX ring.
    /// The segment carries a valid checksum and is wire-marked, so it
    /// exercises the demux and state machine, not the verification
    /// pass. This is the raw material for SYN floods, stray-segment
    /// RST tests, and handshake-timeout reclamation.
    pub fn inject_tcp(
        &mut self,
        dst: usize,
        from: Endpoint,
        from_mac: Mac,
        dst_port: u16,
        flags: TcpFlags,
        seq: u32,
        ack: u32,
    ) {
        let victim_mac = self.stacks[dst].mac();
        let victim_ip = self.stacks[dst].ip();
        let mut nb = Netbuf::alloc(2048, 64);
        let ip = Ipv4Header {
            src: from.addr,
            dst: victim_ip,
            proto: IpProto::Tcp,
            payload_len: TCP_HDR_LEN,
            ttl: 64,
        };
        TcpHeader {
            src_port: from.port,
            dst_port,
            seq,
            ack,
            flags,
            window: 65_535,
        }
        .encode_into(&ip, &mut nb);
        ip.encode_into(&mut nb);
        EthHeader {
            dst: victim_mac,
            src: from_mac,
            ethertype: EtherType::Ipv4,
        }
        .encode_into(&mut nb);
        nb.mark_csum_verified();
        self.stacks[dst].deliver_frame(nb);
    }

    /// The spoofed source endpoint and MAC the flood driver uses for
    /// attacker index `i` — a disjoint address plane (10.66.x.y) so
    /// forged traffic can never collide with attached stacks (10.0.0.n).
    pub fn spoofed_peer(i: usize) -> (Endpoint, Mac) {
        let ep = Endpoint::new(
            Ipv4Addr::new(10, 66, (i >> 8) as u8, i as u8),
            40_000 + (i % 20_000) as u16,
        );
        let mac = Mac([0x66, 0x66, 0x00, 0x00, (i >> 8) as u8, i as u8]);
        (ep, mac)
    }

    /// SYN-floods stack `dst`'s listener on `dst_port` with `count`
    /// forged handshake openers from distinct spoofed endpoints
    /// (`spoofed_peer(base)` through `spoofed_peer(base + count - 1)`)
    /// that will never complete — half-open connections. Each spoofed
    /// peer first teaches the victim its MAC so SYN-ACK replies drain
    /// onto the wire (and vanish) instead of pinning pool buffers
    /// under a pending ARP request. Frames are delivered in bursts of
    /// `per_step` with a wire step between bursts, like a real flood
    /// arriving across ring interrupts. Pass a fresh `base` per call
    /// to keep four-tuples distinct across calls.
    pub fn syn_flood(
        &mut self,
        dst: usize,
        dst_port: u16,
        base: usize,
        count: usize,
        per_step: usize,
    ) {
        let syn = TcpFlags {
            syn: true,
            ..TcpFlags::default()
        };
        let mut i = base;
        while i < base + count {
            let end = (i + per_step.max(1)).min(base + count);
            for j in i..end {
                let (ep, mac) = Self::spoofed_peer(j);
                self.inject_arp_reply(dst, ep.addr, mac);
                self.inject_tcp(dst, ep, mac, dst_port, syn, 0x1000_0000 + j as u32, 0);
            }
            self.step();
            i = end;
        }
    }

    /// Establishes `count` connections on stack `dst`'s listener on
    /// `dst_port` from spoofed peers `base..base + count`, completing
    /// each forged handshake: per burst of `per_step`, the driver
    /// poisons ARP, injects the SYNs, reads the listener's SYN-ACKs
    /// off the wire capture, and answers each with its matching ACK.
    /// The graduated connections land in the listener's accept backlog
    /// — the caller drains them with `tcp_accept` (so `count` per call
    /// must fit the backlog). Returns how many handshakes completed.
    /// This is the connection-scale driver: thousands of established
    /// TCBs on one stack without thousands of peer stacks.
    pub fn forge_established(
        &mut self,
        dst: usize,
        dst_port: u16,
        base: usize,
        count: usize,
        per_step: usize,
    ) -> usize {
        let victim_ip = self.stacks[dst].ip();
        let syn = TcpFlags {
            syn: true,
            ..TcpFlags::default()
        };
        let ack_flags = TcpFlags {
            ack: true,
            ..TcpFlags::default()
        };
        let mut completed = 0;
        let mut i = base;
        while i < base + count {
            let end = (i + per_step.max(1)).min(base + count);
            self.start_wire_capture();
            let mut burst: std::collections::HashMap<(Ipv4Addr, u16), (usize, Mac)> =
                std::collections::HashMap::new();
            for j in i..end {
                let (ep, mac) = Self::spoofed_peer(j);
                burst.insert((ep.addr, ep.port), (j, mac));
                self.inject_arp_reply(dst, ep.addr, mac);
                self.inject_tcp(dst, ep, mac, dst_port, syn, 0x1000_0000 + j as u32, 0);
            }
            // Two steps: the first pump processes the SYNs and stages
            // the SYN-ACKs; the second step's transfer carries them
            // across the (captured) wire.
            self.step();
            self.step();
            for frame in self.take_wire_capture() {
                let Ok((eth, rest)) = EthHeader::decode(&frame) else {
                    continue;
                };
                if eth.ethertype != EtherType::Ipv4 {
                    continue;
                }
                let Ok((ip, seg)) = Ipv4Header::decode_trusted(rest) else {
                    continue;
                };
                if ip.proto != IpProto::Tcp || ip.src != victim_ip {
                    continue;
                }
                let Ok((h, _)) = TcpHeader::decode_trusted(&ip, seg) else {
                    continue;
                };
                let Some(&(j, mac)) = burst.get(&(ip.dst, h.dst_port)) else {
                    continue;
                };
                if !(h.flags.syn && h.flags.ack) || h.src_port != dst_port {
                    continue;
                }
                let ep = Endpoint::new(ip.dst, h.dst_port);
                self.inject_tcp(
                    dst,
                    ep,
                    mac,
                    dst_port,
                    ack_flags,
                    0x1000_0000 + j as u32 + 1,
                    h.seq.wrapping_add(1),
                );
                completed += 1;
            }
            self.step(); // ACKs graduate embryos into the backlog.
            i = end;
        }
        self.stop_wire_capture();
        completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::{SocketHandle, StackConfig};
    use crate::tcp::TcpState;
    use crate::{Endpoint, Ipv4Addr};
    use uknetdev::backend::VhostKind;
    use uknetdev::dev::{NetDev, NetDevConf};
    use uknetdev::VirtioNet;
    use ukplat::time::Tsc;

    fn mk_stack(n: u8) -> NetStack {
        let tsc = Tsc::new(3_600_000_000);
        let mut dev = VirtioNet::new(VhostKind::VhostUser, &tsc);
        dev.configure(NetDevConf::default()).unwrap();
        NetStack::new(StackConfig::node(n), Box::new(dev))
    }

    fn two_node_net() -> Network {
        let mut net = Network::new();
        net.attach(mk_stack(1));
        net.attach(mk_stack(2));
        net
    }

    #[test]
    fn forge_established_graduates_into_the_backlog() {
        let mut net = Network::new();
        net.attach(mk_stack(1));
        let victim = {
            let tsc = Tsc::new(3_600_000_000);
            let mut dev = VirtioNet::new(VhostKind::VhostUser, &tsc);
            dev.configure(NetDevConf::default()).unwrap();
            let mut cfg = StackConfig::node(2);
            cfg.listen_backlog = 128;
            cfg.lean_tcbs = true;
            NetStack::new(cfg, Box::new(dev))
        };
        let si = net.attach(victim);
        let clock = Tsc::new(1_000_000_000);
        net.set_clock(&clock);
        net.set_step_ns(1_000_000);
        let listener = net.stack(si).tcp_listen(9300).unwrap();
        let completed = net.forge_established(si, 9300, 0, 96, 32);
        assert_eq!(completed, 96, "every forged handshake answered");
        let mut got = Vec::new();
        while let Some(h) = net.stack(si).tcp_accept(listener) {
            got.push(h);
        }
        assert_eq!(got.len(), 96, "every completion graduated");
        for h in got {
            assert_eq!(net.stack(si).tcp_state(h), Some(TcpState::Established));
        }
        // Forged frames are heap buffers and SYN-ACKs went to the
        // wire: the victim's pool is whole.
        net.run_until_quiet(16);
        assert_eq!(net.stack(si).pool_available(), Some(512));
    }

    #[test]
    fn udp_round_trip_through_real_packets() {
        let mut net = two_node_net();
        let server_sock = net.stack(1).udp_bind(7).unwrap();
        let client_sock = net.stack(0).udp_bind(5000).unwrap();
        let server_ep = Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 7);
        net.stack(0)
            .udp_send_to(client_sock, b"echo me", server_ep)
            .unwrap();
        net.run_until_quiet(16);
        let (from, data) = net.stack(1).udp_recv_from(server_sock).unwrap();
        assert_eq!(data, b"echo me");
        assert_eq!(from.addr, Ipv4Addr::new(10, 0, 0, 1));
        // Reply.
        net.stack(1).udp_send_to(server_sock, b"reply", from).unwrap();
        net.run_until_quiet(16);
        let (_, data) = net.stack(0).udp_recv_from(client_sock).unwrap();
        assert_eq!(data, b"reply");
    }

    #[test]
    fn tcp_connect_accept_exchange() {
        let mut net = two_node_net();
        let listener = net.stack(1).tcp_listen(80).unwrap();
        let server_ep = Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 80);
        let client = net.stack(0).tcp_connect(server_ep).unwrap();
        net.run_until_quiet(32);
        assert_eq!(net.stack(0).tcp_state(client), Some(TcpState::Established));
        let server_conn: SocketHandle = net.stack(1).tcp_accept(listener).unwrap();
        assert_eq!(
            net.stack(1).tcp_state(server_conn),
            Some(TcpState::Established)
        );
        // Request/response.
        net.stack(0).tcp_send(client, b"GET /\r\n").unwrap();
        net.run_until_quiet(32);
        let req = net.stack(1).tcp_recv(server_conn, 1024).unwrap();
        assert_eq!(req, b"GET /\r\n");
        net.stack(1).tcp_send(server_conn, b"200 OK\r\n").unwrap();
        net.run_until_quiet(32);
        let resp = net.stack(0).tcp_recv(client, 1024).unwrap();
        assert_eq!(resp, b"200 OK\r\n");
        // Teardown.
        net.stack(0).tcp_close(client).unwrap();
        net.run_until_quiet(32);
        assert!(net.stack(1).tcp_peer_closed(server_conn));
    }

    #[test]
    fn large_tcp_transfer_crosses_segmentation() {
        let mut net = two_node_net();
        let listener = net.stack(1).tcp_listen(9000).unwrap();
        let server_ep = Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 9000);
        let client = net.stack(0).tcp_connect(server_ep).unwrap();
        net.run_until_quiet(32);
        let conn = net.stack(1).tcp_accept(listener).unwrap();
        let blob: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        net.stack(0).tcp_send(client, &blob).unwrap();
        net.run_until_quiet(64);
        let got = net.stack(1).tcp_recv(conn, usize::MAX).unwrap();
        assert_eq!(got, blob);
    }

    #[test]
    fn et_retriggers_on_new_data_while_level_high() {
        use ukevent::{EventMask, EventQueue};
        let mut net = two_node_net();
        let listener = net.stack(1).tcp_listen(8100).unwrap();
        let client = net
            .stack(0)
            .tcp_connect(Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 8100))
            .unwrap();
        net.run_until_quiet(32);
        let conn = net.stack(1).tcp_accept(listener).unwrap();
        let src = net.stack(1).ready_source(conn);
        let mut q = EventQueue::new();
        q.ctl_add(1, &src, EventMask::IN | EventMask::ET).unwrap();

        net.stack(0).tcp_send(client, b"first").unwrap();
        net.run_until_quiet(32);
        assert_eq!(q.poll_ready(4).len(), 1);
        assert!(q.poll_ready(4).is_empty(), "edge consumed");
        // More data lands while the first is still unread: the level
        // never falls, but Linux ET re-triggers on each new arrival.
        net.stack(0).tcp_send(client, b"second").unwrap();
        net.run_until_quiet(32);
        assert_eq!(
            q.poll_ready(4).len(),
            1,
            "new arrival must re-trigger the edge watcher"
        );
    }

    #[test]
    fn window_closed_is_visible_through_stack_api() {
        let mut net = two_node_net();
        let listener = net.stack(1).tcp_listen(8000).unwrap();
        let client = net
            .stack(0)
            .tcp_connect(Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 8000))
            .unwrap();
        net.run_until_quiet(32);
        let conn = net.stack(1).tcp_accept(listener).unwrap();
        assert!(!net.stack(0).tcp_window_closed(client));

        // Flood more than one receive window; the server does not read.
        let big = vec![0x11u8; 80_000];
        let accepted = net.stack(0).tcp_send(client, &big).unwrap();
        assert_eq!(accepted, crate::tcp::SND_BUF_CAP, "partial write at cap");
        net.run_until_quiet(64);
        assert!(net.stack(0).tcp_window_closed(client), "peer window exhausted");
        assert!(net.stack(0).tcp_send_capacity(client) < crate::tcp::SND_BUF_CAP);

        // Server drains; the window update reopens the sender.
        let got = net.stack(1).tcp_recv(conn, usize::MAX).unwrap();
        assert_eq!(got.len(), crate::tcp::RCV_BUF_CAP);
        net.run_until_quiet(64);
        assert!(!net.stack(0).tcp_window_closed(client));
        let rest = net.stack(1).tcp_recv(conn, usize::MAX).unwrap();
        assert_eq!(got.len() + rest.len(), accepted, "no byte lost");
    }

    #[test]
    fn udp_burst_apis_round_trip_a_full_batch() {
        let mut net = two_node_net();
        let ss = net.stack(1).udp_bind(7).unwrap();
        let cs = net.stack(0).udp_bind(5000).unwrap();
        let ep = Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 7);
        // Warm ARP so the whole burst goes out as one staged batch.
        net.stack(0).udp_send_to(cs, b"warm", ep).unwrap();
        net.run_until_quiet(16);
        let mut scratch = [0u8; 2048];
        net.stack(1).udp_recv_into(ss, &mut scratch).unwrap();

        let payloads: Vec<Vec<u8>> = (0..32u8).map(|i| vec![i; 64 + i as usize]).collect();
        let sent = net
            .stack(0)
            .udp_send_burst(cs, payloads.iter().map(|p| (&p[..], ep)))
            .unwrap();
        assert_eq!(sent, 32, "whole batch staged in one burst");
        net.run_until_quiet(16);

        // recvmmsg-style drain: all 32 datagrams in one call, packed
        // back-to-back, order preserved.
        let mut buf = vec![0u8; 32 * 2048];
        let mut msgs = Vec::new();
        let n = net.stack(1).udp_recv_burst_into(ss, &mut buf, &mut msgs, 64);
        assert_eq!(n, 32);
        let mut off = 0;
        for (i, &(from, len)) in msgs.iter().enumerate() {
            assert_eq!(from.addr, Ipv4Addr::new(10, 0, 0, 1));
            assert_eq!(&buf[off..off + len], &payloads[i][..], "datagram {i}");
            off += len;
        }
        // Echo the batch back through the burst send path.
        let mut off = 0;
        let replies = msgs.iter().map(|&(from, len)| {
            let s = &buf[off..off + len];
            off += len;
            (s, from)
        });
        assert_eq!(net.stack(1).udp_send_burst(ss, replies).unwrap(), 32);
        net.run_until_quiet(16);
        let mut back = vec![0u8; 32 * 2048];
        let mut back_msgs = Vec::new();
        assert_eq!(
            net.stack(0).udp_recv_burst_into(cs, &mut back, &mut back_msgs, 64),
            32,
            "all replies arrive"
        );
    }

    #[test]
    fn udp_recv_burst_respects_max_and_buffer_space() {
        let mut net = two_node_net();
        let ss = net.stack(1).udp_bind(7).unwrap();
        let cs = net.stack(0).udp_bind(5000).unwrap();
        let ep = Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 7);
        for _ in 0..8 {
            net.stack(0).udp_send_to(cs, &[0x5a; 100], ep).unwrap();
        }
        net.run_until_quiet(16);
        let mut buf = [0u8; 4096];
        let mut msgs = Vec::new();
        // `max` caps the batch…
        assert_eq!(net.stack(1).udp_recv_burst_into(ss, &mut buf, &mut msgs, 3), 3);
        // …and a buffer with room for only two more stops early
        // without truncating (the rest stays queued).
        msgs.clear();
        assert_eq!(
            net.stack(1).udp_recv_burst_into(ss, &mut buf[..250], &mut msgs, 64),
            2
        );
        msgs.clear();
        assert_eq!(net.stack(1).udp_recv_burst_into(ss, &mut buf, &mut msgs, 64), 3);
    }

    #[test]
    fn csum_offload_ablation_interoperates_with_software_path() {
        // One node offloads TX checksums to the device, the other
        // computes them in software; the wire traffic must be
        // indistinguishable and every checksum valid on receive.
        let mut net = Network::new();
        let mut cfg = StackConfig::node(1);
        cfg.tx_csum_offload = false;
        let tsc = Tsc::new(3_600_000_000);
        let mut dev = VirtioNet::new(VhostKind::VhostUser, &tsc);
        dev.configure(NetDevConf::default()).unwrap();
        let soft = net.attach(NetStack::new(cfg, Box::new(dev)));
        let hard = net.attach(mk_stack(2));
        assert!(!net.stack(soft).csum_offload());
        assert!(net.stack(hard).csum_offload());

        let listener = net.stack(hard).tcp_listen(80).unwrap();
        let client = net
            .stack(soft)
            .tcp_connect(Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 80))
            .unwrap();
        net.run_until_quiet(32);
        let conn = net.stack(hard).tcp_accept(listener).unwrap();
        net.stack(soft).tcp_send(client, b"no-offload -> offload").unwrap();
        net.run_until_quiet(32);
        assert_eq!(
            net.stack(hard).tcp_recv(conn, 1024).unwrap(),
            b"no-offload -> offload"
        );
        net.stack(hard).tcp_send(conn, b"offload -> no-offload").unwrap();
        net.run_until_quiet(32);
        assert_eq!(
            net.stack(soft).tcp_recv(client, 1024).unwrap(),
            b"offload -> no-offload"
        );
        assert_eq!(
            net.stack(soft).stats().csum_offloaded,
            0,
            "software node never offloads"
        );
        assert!(
            net.stack(hard).stats().csum_offloaded > 0,
            "offload node stamps partial sums"
        );
    }

    /// Establishes a client→server connection on an arbitrary net and
    /// returns the server-side conn handle.
    fn establish(net: &mut Network, ci: usize, si: usize, port: u16) -> (SocketHandle, SocketHandle) {
        let listener = net.stack(si).tcp_listen(port).unwrap();
        let server_ip = net.stack(si).ip();
        let client = net
            .stack(ci)
            .tcp_connect(Endpoint::new(server_ip, port))
            .unwrap();
        net.run_until_quiet(32);
        let conn = net.stack(si).tcp_accept(listener).unwrap();
        (client, conn)
    }

    /// Sends `data` client→server (chunked through the send buffer)
    /// and returns what the server read.
    fn bulk_send(
        net: &mut Network,
        ci: usize,
        si: usize,
        client: SocketHandle,
        conn: SocketHandle,
        data: &[u8],
    ) -> Vec<u8> {
        let mut got = Vec::new();
        let mut sent = 0;
        let mut buf = vec![0u8; 64 * 1024];
        for _ in 0..10_000 {
            if sent < data.len() {
                let n = net
                    .stack(ci)
                    .tcp_send_queued(client, &data[sent..])
                    .unwrap_or(0);
                sent += n;
                net.stack(ci).flush_output().unwrap();
            }
            net.step();
            loop {
                let n = net.stack(si).tcp_recv_into(conn, &mut buf).unwrap();
                if n == 0 {
                    break;
                }
                got.extend_from_slice(&buf[..n]);
            }
            if got.len() == data.len() {
                break;
            }
        }
        got
    }

    #[test]
    fn tso_bulk_transfer_moves_super_segments_and_stays_intact() {
        let mut net = two_node_net();
        assert!(net.stack(0).tso(), "VirtioNet advertises TSO");
        let (client, conn) = establish(&mut net, 0, 1, 9100);
        let blob: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
        let got = bulk_send(&mut net, 0, 1, client, conn, &blob);
        assert_eq!(got.len(), blob.len(), "every byte arrived");
        assert_eq!(got, blob, "stream intact across TSO cutting");
        let stats = net.stack(0).stats();
        assert!(
            stats.tso_super_frames > 0,
            "bulk data left as GSO super-segments"
        );
        assert!(
            stats.tso_super_bytes >= 150_000,
            "most of the stream rode super-segments ({} bytes)",
            stats.tso_super_bytes
        );
        // The whole point: far fewer device/staging crossings than
        // wire frames. 200 KB is ~137 MSS frames; the sender should
        // have pushed an order of magnitude fewer TX frames.
        assert!(
            stats.tx_frames < 60,
            "super-segments amortize the TX path ({} tx frames)",
            stats.tx_frames
        );
        // And the receiver negotiated big receive: the supers arrived
        // whole as chains — one demux each — not as cut MSS frames.
        let rx = net.stack(1).stats();
        assert!(net.stack(1).accepts_super_frames());
        assert_eq!(
            rx.rx_super_frames, stats.tso_super_frames,
            "every super-segment was delivered whole (guest TSO)"
        );
        assert!(
            rx.rx_frames < 60,
            "big receive amortizes the RX path ({} rx frames)",
            rx.rx_frames
        );
    }

    #[test]
    fn supers_are_cut_to_mss_for_receivers_without_guest_tso() {
        // The receiver declines big receive (software RX checksums ⇒
        // no GUEST_TSO4, per the virtio feature dependency): the host
        // side must cut MSS frames — with valid checksums, since the
        // receiver verifies them in software.
        let mut net = Network::new();
        net.attach(mk_stack(1));
        let tsc = Tsc::new(3_600_000_000);
        let mut dev = VirtioNet::new(VhostKind::VhostUser, &tsc);
        dev.configure(NetDevConf::default()).unwrap();
        let mut cfg = StackConfig::node(2);
        cfg.rx_csum_offload = false;
        let rx = net.attach(NetStack::new(cfg, Box::new(dev)));
        assert!(!net.stack(rx).accepts_super_frames());

        let (client, conn) = establish(&mut net, 0, rx, 9600);
        let blob: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let got = bulk_send(&mut net, 0, rx, client, conn, &blob);
        assert_eq!(got, blob, "stream intact through the host-side cut");
        assert!(net.stack(0).stats().tso_super_frames > 0, "sender used TSO");
        let stats = net.stack(rx).stats();
        assert_eq!(stats.rx_super_frames, 0, "nothing arrived as a chain");
        assert!(
            stats.rx_frames > 70,
            "the wire delivered per-MSS cut frames ({})",
            stats.rx_frames
        );
        assert_eq!(stats.rx_csum_skipped, 0, "software verification ran");
    }

    #[test]
    fn tso_chain_buffers_recycle_to_sender_pool() {
        let mut net = two_node_net();
        let (client, conn) = establish(&mut net, 0, 1, 9200);
        let blob = vec![0x42u8; 100_000];
        let got = bulk_send(&mut net, 0, 1, client, conn, &blob);
        assert_eq!(got.len(), blob.len());
        net.run_until_quiet(32);
        let outstanding =
            net.stack(0).stats().tx_frames; // just to touch stats
        let _ = outstanding;
        let cfg_pool = 512;
        assert_eq!(
            net.stack(0).pool_available(),
            Some(cfg_pool),
            "every chain head and fragment returned to the client pool"
        );
        assert_eq!(
            net.stack(1).pool_available(),
            Some(cfg_pool),
            "every RX buffer returned to the server pool"
        );
    }

    #[test]
    fn tso_ablation_interoperates_with_software_segmentation() {
        // One node cuts on the device (TSO), the other segments in
        // software; streams in both directions must be intact.
        let mut net = Network::new();
        let mut cfg = StackConfig::node(1);
        cfg.tso = false;
        let tsc = Tsc::new(3_600_000_000);
        let mut dev = VirtioNet::new(VhostKind::VhostUser, &tsc);
        dev.configure(NetDevConf::default()).unwrap();
        let soft = net.attach(NetStack::new(cfg, Box::new(dev)));
        let hard = net.attach(mk_stack(2));
        assert!(!net.stack(soft).tso());
        assert!(net.stack(hard).tso());

        let (client, conn) = establish(&mut net, soft, hard, 9300);
        let blob: Vec<u8> = (0..80_000u32).map(|i| (i.wrapping_mul(7) % 256) as u8).collect();
        let got = bulk_send(&mut net, soft, hard, client, conn, &blob);
        assert_eq!(got, blob, "software-segmentation → TSO node");
        assert_eq!(net.stack(soft).stats().tso_super_frames, 0);

        // And back: the TSO node serves the software node.
        let back: Vec<u8> = blob.iter().rev().copied().collect();
        let mut sent = 0;
        let mut got2 = Vec::new();
        let mut buf = vec![0u8; 64 * 1024];
        for _ in 0..10_000 {
            if sent < back.len() {
                let n = net.stack(hard).tcp_send_queued(conn, &back[sent..]).unwrap_or(0);
                sent += n;
                net.stack(hard).flush_output().unwrap();
            }
            net.step();
            loop {
                let n = net.stack(soft).tcp_recv_into(client, &mut buf).unwrap();
                if n == 0 {
                    break;
                }
                got2.extend_from_slice(&buf[..n]);
            }
            if got2.len() == back.len() {
                break;
            }
        }
        assert_eq!(got2, back, "TSO node → software node");
        assert!(net.stack(hard).stats().tso_super_frames > 0);
    }

    #[test]
    fn stack_falls_back_to_software_segmentation_without_device_tso() {
        // The wire peer (device/host) does not advertise
        // VIRTIO_NET_F_HOST_TSO4: the stack's `tso` wish degrades to
        // the software per-MSS fallback transparently.
        let mut net = Network::new();
        let tsc = Tsc::new(3_600_000_000);
        let mut dev = VirtioNet::new(VhostKind::VhostUser, &tsc);
        dev.set_tso(false);
        dev.configure(NetDevConf::default()).unwrap();
        let cfg = StackConfig::node(1); // tso wish is on…
        let soft = net.attach(NetStack::new(cfg, Box::new(dev)));
        let hard = net.attach(mk_stack(2));
        assert!(!net.stack(soft).tso(), "…but the device lacks the feature");

        let (client, conn) = establish(&mut net, soft, hard, 9400);
        let blob = vec![0x5au8; 50_000];
        let got = bulk_send(&mut net, soft, hard, client, conn, &blob);
        assert_eq!(got, blob);
        assert_eq!(
            net.stack(soft).stats().tso_super_frames,
            0,
            "no super-segments without the device feature"
        );
    }

    #[test]
    fn out_of_range_tuning_knobs_are_clamped_safe() {
        // An oversized MSS would overflow a pooled buffer's usable
        // payload and an oversized GSO budget the IPv4 16-bit total
        // length; both must clamp rather than panic or stall.
        let mut net = Network::new();
        let mk = |n: u8| {
            let tsc = Tsc::new(3_600_000_000);
            let mut dev = VirtioNet::new(VhostKind::VhostUser, &tsc);
            dev.configure(NetDevConf::default()).unwrap();
            let mut cfg = StackConfig::node(n);
            cfg.mss = 5000;
            cfg.gso_max_size = 1_000_000;
            NetStack::new(cfg, Box::new(dev))
        };
        let ci = net.attach(mk(1));
        let si = net.attach(mk(2));
        let (client, conn) = establish(&mut net, ci, si, 9700);
        let blob: Vec<u8> = (0..150_000u32).map(|i| (i % 251) as u8).collect();
        let got = bulk_send(&mut net, ci, si, client, conn, &blob);
        assert_eq!(got, blob, "clamped knobs still move the stream intact");
        assert!(net.stack(ci).stats().tso_super_frames > 0);
    }

    #[test]
    fn rx_csum_offload_skips_software_verification() {
        let mut net = two_node_net();
        let (client, conn) = establish(&mut net, 0, 1, 9500);
        net.stack(0).tcp_send(client, b"marked frames skip the csum pass").unwrap();
        net.run_until_quiet(32);
        assert_eq!(
            net.stack(1).tcp_recv(conn, 1024).unwrap(),
            b"marked frames skip the csum pass"
        );
        assert!(
            net.stack(1).stats().rx_csum_skipped > 0,
            "wire-marked frames bypassed software verification"
        );
    }

    #[test]
    fn corrupted_unmarked_frames_are_still_dropped() {
        use crate::ipv4::{IpProto, Ipv4Header};
        use crate::udp::UdpHeader;
        let mut net = two_node_net();
        let sock = net.stack(1).udp_bind(7).unwrap();

        // Forge a full frame with a corrupted UDP payload byte and
        // inject it *without* the wire's checksum-validated mark.
        let forge = |corrupt: bool, marked: bool| -> Netbuf {
            let mut nb = Netbuf::alloc(2048, 64);
            nb.append(b"checksummed payload");
            let ip = Ipv4Header {
                src: Ipv4Addr::new(10, 0, 0, 1),
                dst: Ipv4Addr::new(10, 0, 0, 2),
                proto: IpProto::Udp,
                payload_len: 8 + nb.len(),
                ttl: 64,
            };
            UdpHeader {
                src_port: 5000,
                dst_port: 7,
            }
            .encode_into(&ip, &mut nb);
            ip.encode_into(&mut nb);
            EthHeader {
                dst: Mac::node(2),
                src: Mac::node(1),
                ethertype: crate::eth::EtherType::Ipv4,
            }
            .encode_into(&mut nb);
            if corrupt {
                let last = nb.len() - 1;
                nb.payload_mut()[last] ^= 0xff;
            }
            if marked {
                nb.mark_csum_verified();
            }
            nb
        };

        // Corrupt + unmarked: the software verification pass runs and
        // drops it, RX checksum offload notwithstanding.
        let dropped_before = net.stack(1).stats().dropped;
        let nb = forge(true, false);
        net.stack(1).deliver_frame(nb);
        net.stack(1).pump();
        assert_eq!(net.stack(1).stats().dropped, dropped_before + 1);
        assert!(net.stack(1).udp_recv_from(sock).is_none(), "nothing queued");

        // Corrupt + marked: the mark short-circuits verification —
        // proof the skip is real (a real NIC would not mark it).
        let nb = forge(true, true);
        net.stack(1).deliver_frame(nb);
        net.stack(1).pump();
        assert!(
            net.stack(1).udp_recv_from(sock).is_some(),
            "marked frame skipped the software checksum pass"
        );

        // Corrupt + marked, but the receiver disabled RX offload: the
        // ablation switch restores full software verification.
        let mut net2 = Network::new();
        let tsc = Tsc::new(3_600_000_000);
        let mut dev = VirtioNet::new(VhostKind::VhostUser, &tsc);
        dev.configure(NetDevConf::default()).unwrap();
        let mut cfg = StackConfig::node(2);
        cfg.rx_csum_offload = false;
        net2.attach(mk_stack(1));
        let rx = net2.attach(NetStack::new(cfg, Box::new(dev)));
        assert!(!net2.stack(rx).rx_csum_offload());
        let sock2 = net2.stack(rx).udp_bind(7).unwrap();
        let dropped_before = net2.stack(rx).stats().dropped;
        let nb = forge(true, true);
        net2.stack(rx).deliver_frame(nb);
        net2.stack(rx).pump();
        assert_eq!(net2.stack(rx).stats().dropped, dropped_before + 1);
        assert!(net2.stack(rx).udp_recv_from(sock2).is_none());
    }

    /// A wire that duplicates frames: the receiver must drop every
    /// stale copy (answering with a dup-ACK, not silence), keep the
    /// stream byte-exact, and recycle the dropped buffers — no pool
    /// leak. The sender runs without TSO so real per-MSS data frames
    /// are what get duplicated.
    #[test]
    fn duplicated_wire_frames_leave_the_stream_exact_and_leak_nothing() {
        let mut net = Network::new();
        let tsc = Tsc::new(3_600_000_000);
        let mut dev = VirtioNet::new(VhostKind::VhostUser, &tsc);
        dev.configure(NetDevConf::default()).unwrap();
        let mut cfg = StackConfig::node(1);
        cfg.tso = false; // Per-MSS frames on the wire.
        let ci = net.attach(NetStack::new(cfg, Box::new(dev)));
        let si = net.attach(mk_stack(2));
        net.set_dup_every(4);
        let (client, conn) = establish(&mut net, ci, si, 9800);
        let blob: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let got = bulk_send(&mut net, ci, si, client, conn, &blob);
        assert_eq!(got.len(), blob.len(), "every byte arrived exactly once");
        assert_eq!(got, blob, "stream exact despite duplicated deliveries");
        assert!(net.faults_injected() > 10, "the wire really duplicated");
        net.run_until_quiet(32);
        assert_eq!(
            net.stack(si).pool_available(),
            Some(512),
            "every dropped duplicate was recycled to the pool"
        );
        assert_eq!(net.stack(ci).pool_available(), Some(512));
    }

    /// The FIN-reorder regression at wire level: the wire swaps the
    /// final data segment with the FIN behind it, so the FIN arrives
    /// first (out of order). The receiver must drop the FIN without
    /// touching the sequence space — the data that follows still lands
    /// in order and the stream stays exact. (The old ingest advanced
    /// `rcv_nxt` for the early FIN and transitioned to CloseWait,
    /// after which the real data could never be accepted.)
    #[test]
    fn reordered_fin_does_not_desync_the_stream() {
        let mut net = two_node_net();
        let (client, conn) = establish(&mut net, 0, 1, 9900);
        // Everything already settled; now arm adjacent reordering for
        // every delivery whose batch has two frames.
        net.set_reorder_every(1);
        let payload = b"the last chunk before close";
        net.stack(0).tcp_send_queued(client, payload).unwrap();
        net.stack(0).tcp_close(client).unwrap(); // Data + FIN, one batch.
        net.run_until_quiet(32);
        assert!(net.faults_injected() > 0, "the wire really reordered");
        let got = net.stack(1).tcp_recv(conn, 1024).unwrap();
        assert_eq!(got, payload, "data accepted despite the early FIN");
        // The reordered FIN was dropped, not processed out of order:
        // the connection is still Established (no clock is armed here,
        // so the peer's FIN retransmission never fires — the sequence
        // space staying intact is the property under test).
        assert_eq!(
            net.stack(1).tcp_state(conn),
            Some(TcpState::Established),
            "no bogus CloseWait from an out-of-order FIN"
        );
        assert!(!net.stack(1).tcp_peer_closed(conn));
    }

    /// GRO engages on per-MSS bursts: a non-TSO sender's consecutive
    /// segments are merged into multi-frame ingests, and the received
    /// stream plus the zero-copy netbuf drain are byte-exact.
    #[test]
    fn gro_coalesces_per_mss_bursts_and_netbuf_recv_drains_them() {
        let mut net = Network::new();
        let tsc = Tsc::new(3_600_000_000);
        let mut dev = VirtioNet::new(VhostKind::VhostUser, &tsc);
        dev.configure(NetDevConf::default()).unwrap();
        let mut cfg = StackConfig::node(1);
        cfg.tso = false; // Per-MSS sender: the GRO target workload.
        let ci = net.attach(NetStack::new(cfg, Box::new(dev)));
        let si = net.attach(mk_stack(2));
        assert!(net.stack(si).gro());
        let (client, conn) = establish(&mut net, ci, si, 9950);
        let blob: Vec<u8> = (0..120_000u32).map(|i| (i.wrapping_mul(13) % 251) as u8).collect();

        let mut got = Vec::new();
        let mut bufs: Vec<Netbuf> = Vec::new();
        let mut sent = 0;
        for _ in 0..10_000 {
            if sent < blob.len() {
                sent += net.stack(ci).tcp_send_queued(client, &blob[sent..]).unwrap_or(0);
                net.stack(ci).flush_output().unwrap();
            }
            net.step();
            // Zero-copy drain: whole payload buffers, recycled after.
            loop {
                let n = net.stack(si).tcp_recv_burst_netbuf(conn, &mut bufs, 64);
                if n == 0 {
                    break;
                }
                for nb in bufs.drain(..) {
                    got.extend_from_slice(nb.payload());
                    net.stack(si).recycle(nb);
                }
            }
            if got.len() == blob.len() {
                break;
            }
        }
        assert_eq!(got, blob, "stream exact through GRO + netbuf recv");
        let stats = net.stack(si).stats();
        assert!(stats.gro_runs > 0, "GRO really merged runs");
        assert!(
            stats.gro_merged_frames >= 2 * stats.gro_runs,
            "runs contain at least two frames each"
        );
        net.run_until_quiet(32);
        assert_eq!(
            net.stack(si).pool_available(),
            Some(512),
            "all receive-queue buffers returned to the pool"
        );
    }

    /// A fine-grained sender (many small segments, never drained) must
    /// not pin one pool buffer per segment: small extents coalesce
    /// into the receive-queue tail's tailroom (`tcp_try_coalesce`
    /// shape), so the buffers pinned stay proportional to the *bytes*
    /// buffered, not the segment count.
    #[test]
    fn small_segment_flood_does_not_pin_a_buffer_per_segment() {
        let mut net = two_node_net();
        let (client, conn) = establish(&mut net, 0, 1, 9850);
        // 300 separate 100-byte segments: sent one per step so the
        // send queue cannot merge them into MSS segments — each is
        // its own wire frame. The server never reads.
        let chunk = [0x4du8; 100];
        for _ in 0..300 {
            net.stack(0).tcp_send(client, &chunk).unwrap();
            net.step();
        }
        assert_eq!(net.stack(1).tcp_readable(conn), 300 * 100, "all buffered");
        let pinned = 512 - net.stack(1).pool_available().unwrap();
        assert!(
            pinned <= 32,
            "30 KB of 100-byte segments must coalesce into few buffers \
             ({pinned} pinned)"
        );
        // The stream is intact and every buffer comes back.
        let got = net.stack(1).tcp_recv(conn, usize::MAX).unwrap();
        assert_eq!(got.len(), 300 * 100);
        assert!(got.iter().all(|&b| b == 0x4d));
        net.run_until_quiet(16);
        assert_eq!(net.stack(1).pool_available(), Some(512), "no leak");
    }

    /// A lossy wire: every 3rd plain frame is silently discarded. The
    /// surviving datagrams arrive intact and in order, the loss shows
    /// up in both the wire's fault counter and the global
    /// `testnet.drops_injected` stat, and the dropped buffers are
    /// recycled — no pool leak. UDP carries the test so nothing
    /// retransmits and every injected loss stays visible end to end.
    #[test]
    fn dropped_wire_frames_are_counted_and_leak_nothing() {
        let mut net = two_node_net();
        let ss = net.stack(1).udp_bind(7).unwrap();
        let cs = net.stack(0).udp_bind(5000).unwrap();
        let ep = Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 7);
        // Warm ARP before arming the fault so the resolution exchange
        // itself cannot be eaten.
        net.stack(0).udp_send_to(cs, b"warm", ep).unwrap();
        net.run_until_quiet(16);
        net.stack(1).udp_recv_from(ss).unwrap();

        let base = ukstats::snapshot();
        net.set_drop_every(3);
        for i in 0..30u8 {
            net.stack(0).udp_send_to(cs, &[i; 32], ep).unwrap();
            net.run_until_quiet(16);
        }
        let mut got = Vec::new();
        while let Some((_, data)) = net.stack(1).udp_recv_from(ss) {
            got.push(data[0]);
        }
        assert_eq!(got.len(), 20, "every 3rd of 30 datagrams was lost");
        // Survivors arrive in order with their payloads intact.
        assert!(got.windows(2).all(|w| w[0] < w[1]), "order preserved: {got:?}");
        assert_eq!(net.faults_injected(), 10, "the wire really dropped");
        if ukstats::COMPILED_IN {
            let snap = ukstats::snapshot();
            let before = base.counter("testnet.drops_injected").unwrap_or(0);
            assert_eq!(
                snap.counter("testnet.drops_injected").unwrap() - before,
                10,
                "drops are observable in the stats registry"
            );
        }
        net.run_until_quiet(16);
        assert_eq!(net.stack(1).pool_available(), Some(512), "no leak on loss");
        assert_eq!(net.stack(0).pool_available(), Some(512));

        // Disarming restores the lossless wire.
        net.set_drop_every(0);
        net.stack(0).udp_send_to(cs, b"clean", ep).unwrap();
        net.run_until_quiet(16);
        assert_eq!(net.stack(1).udp_recv_from(ss).unwrap().1, b"clean");
    }

    #[test]
    fn ping_round_trip() {
        let mut net = two_node_net();
        net.stack(0)
            .ping(Ipv4Addr::new(10, 0, 0, 2), 0x77, 1)
            .unwrap();
        net.run_until_quiet(16);
        let replies = net.stack(0).ping_replies();
        assert_eq!(replies, vec![(Ipv4Addr::new(10, 0, 0, 2), 0x77, 1)]);
        // The target recorded no stray replies.
        assert!(net.stack(1).ping_replies().is_empty());
    }

    #[test]
    fn three_stacks_share_the_wire() {
        let mut net = Network::new();
        net.attach(mk_stack(1));
        net.attach(mk_stack(2));
        net.attach(mk_stack(3));
        let s2 = net.stack(1).udp_bind(1000).unwrap();
        let s3 = net.stack(2).udp_bind(1000).unwrap();
        let c = net.stack(0).udp_bind(2000).unwrap();
        net.stack(0)
            .udp_send_to(c, b"to-2", Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 1000))
            .unwrap();
        net.stack(0)
            .udp_send_to(c, b"to-3", Endpoint::new(Ipv4Addr::new(10, 0, 0, 3), 1000))
            .unwrap();
        net.run_until_quiet(16);
        assert_eq!(net.stack(1).udp_recv_from(s2).unwrap().1, b"to-2");
        assert_eq!(net.stack(2).udp_recv_from(s3).unwrap().1, b"to-3");
    }
}
