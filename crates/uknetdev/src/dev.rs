//! The `uk_netdev` driver API.
//!
//! "Drivers register their callbacks (e.g. send and receive) to a
//! `uk_netdev` structure which the application then uses to call the
//! driver routines" (§3.1). Applications drive configuration: they query
//! [`NetDevInfo`] for capabilities, choose queue counts and ring sizes,
//! and operate each queue in polling or interrupt mode.

use ukplat::Result;

use crate::netbuf::Netbuf;

/// Driver capabilities, filled in by the device for the application to
/// pick "the best set of driver properties and features" (§3.1).
#[derive(Debug, Clone, Copy)]
pub struct NetDevInfo {
    /// Maximum receive queues the device supports.
    pub max_rx_queues: u16,
    /// Maximum transmit queues.
    pub max_tx_queues: u16,
    /// Maximum MTU.
    pub max_mtu: usize,
    /// Whether checksum offload is available.
    pub tx_csum_offload: bool,
    /// Whether TSO/GSO segmentation offload is available
    /// (`VIRTIO_NET_F_HOST_TSO4` shape): the device accepts one
    /// oversized TCP frame per send and the host cuts MSS frames.
    pub tso: bool,
    /// Whether the device can *deliver* oversized TCP frames to the
    /// guest (`VIRTIO_NET_F_GUEST_TSO4` + `VIRTIO_NET_F_MRG_RXBUF`
    /// shape): a peer's super-segment arrives whole as a buffer chain
    /// instead of being cut into MSS frames at the host boundary —
    /// the guest-to-guest fast path. Requires RX checksum offload
    /// (the spec ties `GUEST_TSO4` to `GUEST_CSUM`).
    pub guest_tso: bool,
    /// Whether the device marks received frames checksum-validated
    /// (`VIRTIO_NET_F_GUEST_CSUM` shape), letting the stack skip
    /// software verification.
    pub rx_csum_offload: bool,
    /// Maximum descriptors per ring.
    pub max_ring_size: usize,
}

/// Application-chosen device configuration.
#[derive(Debug, Clone, Copy)]
pub struct NetDevConf {
    /// Number of RX queues to set up.
    pub nr_rx_queues: u16,
    /// Number of TX queues to set up.
    pub nr_tx_queues: u16,
    /// Descriptors per ring (power of two).
    pub ring_size: usize,
}

impl Default for NetDevConf {
    fn default() -> Self {
        NetDevConf {
            nr_rx_queues: 1,
            nr_tx_queues: 1,
            ring_size: 256,
        }
    }
}

/// How a queue is operated (§3.1: "polling, interrupt-driven or mixed").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueMode {
    /// Application polls; no interrupts (the default).
    Polling,
    /// Interrupt line armed when the queue runs dry.
    Interrupt,
}

/// Accounting for one burst crossing the device boundary: the unit of
/// work of the burst datapath. Every layer that moves a burst
/// (`tx_burst`, `inject_rx`, the stack's pump sweep) reports one of
/// these so per-burst amortization is observable end to end.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BurstStats {
    /// Frames that crossed.
    pub frames: usize,
    /// Payload bytes that crossed.
    pub bytes: usize,
    /// Frames that could not cross (ring full) and were left behind.
    pub drops: usize,
}

impl BurstStats {
    /// Merges another burst's counts into this one.
    pub fn merge(&mut self, other: BurstStats) {
        self.frames += other.frames;
        self.bytes += other.bytes;
        self.drops += other.drops;
    }
}

/// Result of a TX burst: what crossed onto the queue and whether there
/// is still room ("the function returns flags that indicate if there
/// is still room on the queue").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxStatus {
    /// Frames/bytes enqueued this call (the in/out `cnt` parameter);
    /// `drops` stays 0 — frames that do not fit remain with the
    /// caller, which owns their memory and retries or recycles.
    pub stats: BurstStats,
    /// Whether more packets could be enqueued right now.
    pub more_room: bool,
}

impl TxStatus {
    /// Frames enqueued this call.
    pub fn sent(&self) -> usize {
        self.stats.frames
    }
}

/// Result of an RX burst.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RxStatus {
    /// Packets received into the caller's array.
    pub received: usize,
    /// Whether more packets are already waiting.
    pub more: bool,
}

/// The `uk_netdev` interface.
pub trait NetDev {
    /// Device capability query.
    fn info(&self) -> NetDevInfo;

    /// Applies the application-chosen configuration. Must be called
    /// before any queue operation.
    fn configure(&mut self, conf: NetDevConf) -> Result<()>;

    /// Sets the operating mode of an RX queue.
    fn set_queue_mode(&mut self, queue: u16, mode: QueueMode) -> Result<()>;

    /// Registers the per-queue interrupt callback ("during driver
    /// configuration the application can register an interrupt handler
    /// per queue").
    fn set_rx_callback(&mut self, queue: u16, cb: Box<dyn FnMut()>) -> Result<()>;

    /// `uk_netdev_tx_burst`: enqueues as many of `pkts` as possible,
    /// draining them from the vector front.
    fn tx_burst(&mut self, queue: u16, pkts: &mut Vec<Netbuf>) -> Result<TxStatus>;

    /// `uk_netdev_rx_burst`: receives up to `max` packets into `out`.
    fn rx_burst(&mut self, queue: u16, out: &mut Vec<Netbuf>, max: usize) -> Result<RxStatus>;

    /// Reclaims transmitted buffers so the application can recycle them
    /// into its pool (the application owns all memory).
    fn reclaim_tx(&mut self, queue: u16, out: &mut Vec<Netbuf>) -> Result<usize>;

    /// Host-side injection of received frames (the wire harness calls
    /// this; real hardware receives from the medium instead). Drains
    /// from the front of `frames` as long as the ring has room; buffers
    /// that do not fit stay with the caller (counted as `drops` in the
    /// returned stats), which owns their memory and recycles them.
    fn inject_rx(&mut self, queue: u16, frames: &mut Vec<Netbuf>) -> Result<BurstStats>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_conf_is_single_queue() {
        let c = NetDevConf::default();
        assert_eq!(c.nr_rx_queues, 1);
        assert_eq!(c.nr_tx_queues, 1);
        assert!(c.ring_size.is_power_of_two());
    }
}
