//! Figures 10, 11, 14 and 21: boot time and memory footprint.

use ukalloc::AllocBackend;
use ukbaselines::env::AppId;
use ukbaselines::{EnvModel, ExecEnv};
use ukboot::paging::{boot_paging, PageTables, PagingMode};
use ukboot::sequence::{BootConfig, BootSequence};
use ukcore::unikernel::{min_memory_to_run, UnikernelBuilder};
use ukplat::vmm::VmmKind;

use crate::util::{fmt_ns, median_ns};

/// Figure 10: total boot time per VMM (VMM model + measured guest boot).
pub fn fig10_boot_time_per_vmm() -> String {
    let mut out = String::new();
    out.push_str("Figure 10: boot time of a helloworld image per VMM\n");
    out.push_str(&format!(
        "{:<18} {:>14} {:>14} {:>14}\n",
        "VMM", "VMM setup", "guest boot", "total"
    ));
    let configs: [(&str, VmmKind, u32); 5] = [
        ("QEMU", VmmKind::Qemu, 0),
        ("QEMU (1 NIC)", VmmKind::Qemu, 1),
        ("QEMU (MicroVM)", VmmKind::QemuMicroVm, 0),
        ("Solo5", VmmKind::Solo5, 0),
        ("Firecracker", VmmKind::Firecracker, 0),
    ];
    for (label, vmm, nics) in configs {
        let mut vmm_ns = 0;
        let guest = median_ns(7, || {
            let mut cfg = BootConfig::hello(vmm);
            cfg.nics = nics;
            let mut seq = BootSequence::new(cfg);
            let r = seq.run().expect("boot");
            vmm_ns = r.vmm_ns;
            r.guest_ns
        });
        out.push_str(&format!(
            "{:<18} {:>14} {:>14} {:>14}\n",
            label,
            fmt_ns(vmm_ns),
            fmt_ns(guest),
            fmt_ns(vmm_ns + guest)
        ));
    }
    out.push_str("shape check: guest boot is microseconds; VMM dominates; QEMU slowest\n");
    out
}

/// Figure 11: minimum memory to run each app, per OS.
pub fn fig11_min_memory() -> String {
    let mut out = String::new();
    out.push_str("Figure 11: minimum memory requirement (MB)\n");
    out.push_str(&format!(
        "{:<16} {:>7} {:>7} {:>7} {:>7}\n",
        "OS", "hello", "nginx", "redis", "sqlite"
    ));

    // Unikraft row: measured by binary search over our real boot +
    // app-working-set allocation.
    let worksets: [(AppId, &str, usize, AllocBackend); 4] = [
        (AppId::Hello, "hello", 64 * 1024, AllocBackend::BootAlloc),
        (AppId::Nginx, "nginx", 2 << 20, AllocBackend::Tlsf),
        (AppId::Redis, "redis", 4 << 20, AllocBackend::Mimalloc),
        (AppId::Sqlite, "sqlite", 1 << 20, AllocBackend::Tlsf),
    ];
    let mut row = format!("{:<16}", "Unikraft (ours)");
    for (_, name, ws, alloc) in worksets {
        let min = min_memory_to_run(
            move |_| UnikernelBuilder::new(name).allocator(alloc),
            ws,
        )
        .expect("fits in 512 MB");
        row.push_str(&format!(" {:>6}M", min / (1024 * 1024)));
    }
    out.push_str(&row);
    out.push('\n');

    for env in [
        ExecEnv::UnikraftKvm,
        ExecEnv::DockerNative,
        ExecEnv::RumpKvm,
        ExecEnv::HermituxUhyve,
        ExecEnv::LupineKvm,
        ExecEnv::OsvKvm,
        ExecEnv::LinuxKvm,
    ] {
        let m = EnvModel::new(env);
        let cell = |app| {
            m.min_memory_mb(app)
                .map(|v| format!("{v:>6}M"))
                .unwrap_or_else(|| format!("{:>7}", "-"))
        };
        out.push_str(&format!(
            "{:<16} {} {} {} {}\n",
            env.name(),
            cell(AppId::Hello),
            cell(AppId::Nginx),
            cell(AppId::Redis),
            cell(AppId::Sqlite)
        ));
    }
    out.push_str("shape check: Unikraft needs the least memory of every OS\n");
    out
}

/// Figure 14: nginx boot time per allocator, with stage breakdown.
pub fn fig14_boot_per_allocator() -> String {
    let mut out = String::new();
    out.push_str("Figure 14: Unikraft guest boot time for nginx per allocator\n");
    out.push_str(&format!(
        "{:<14} {:>12} {:>12} {:>12}\n",
        "allocator", "alloc stage", "other", "guest total"
    ));
    let backends = [
        AllocBackend::Buddy,
        AllocBackend::Mimalloc,
        AllocBackend::BootAlloc,
        AllocBackend::TinyAlloc,
        AllocBackend::Tlsf,
    ];
    for b in backends {
        let mut alloc_ns = 0;
        let total = median_ns(7, || {
            let mut cfg = BootConfig::nginx(VmmKind::Firecracker, b);
            cfg.ram_bytes = 128 * 1024 * 1024;
            let mut seq = BootSequence::new(cfg);
            seq.add_stage("virtio", |_p, reg| {
                let id = reg.default_id().unwrap();
                for _ in 0..32 {
                    reg.malloc(id, 2048).ok_or(ukplat::Errno::NoMem)?;
                }
                Ok(())
            });
            let r = seq.run().expect("boot");
            alloc_ns = r.stage_ns("alloc").unwrap_or(0);
            r.guest_ns
        });
        out.push_str(&format!(
            "{:<14} {:>12} {:>12} {:>12}\n",
            b.name(),
            fmt_ns(alloc_ns),
            fmt_ns(total.saturating_sub(alloc_ns)),
            fmt_ns(total)
        ));
    }
    out.push_str("shape check: buddy slowest (per-page init), bootalloc fastest\n");
    out
}

/// Figure 21: boot time with static vs dynamic page-table initialization.
pub fn fig21_page_table_boot() -> String {
    const MIB: u64 = 1024 * 1024;
    let mut out = String::new();
    out.push_str("Figure 21: paging-setup time, static vs dynamic page tables\n");
    out.push_str(&format!("{:<22} {:>14}\n", "configuration", "time"));

    // Static: prebuilt at image build time; boot only adopts the table.
    let pre = PageTables::prebuilt(1024 * MIB);
    let static_ns = median_ns(9, || {
        let pre = pre.clone();
        let t = std::time::Instant::now();
        let pt = boot_paging(PagingMode::Static, 1024 * MIB, Some(pre));
        std::hint::black_box(&pt);
        t.elapsed().as_nanos() as u64
    });
    out.push_str(&format!("{:<22} {:>14}\n", "static 1GB", fmt_ns(static_ns)));

    for mb in [32u64, 64, 128, 256, 512, 1024, 2048, 3072] {
        let ns = median_ns(5, || {
            let t = std::time::Instant::now();
            let pt = boot_paging(PagingMode::Dynamic, mb * MIB, None);
            std::hint::black_box(&pt);
            t.elapsed().as_nanos() as u64
        });
        let label = if mb >= 1024 {
            format!("dynamic {}GB", mb / 1024)
        } else {
            format!("dynamic {mb}MB")
        };
        out.push_str(&format!("{label:<22} {:>14}\n", fmt_ns(ns)));
    }
    out.push_str("shape check: static is constant; dynamic grows with RAM\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig21_dynamic_scales() {
        let t = fig21_page_table_boot();
        assert!(t.contains("static 1GB"));
        assert!(t.contains("dynamic 3GB"));
    }

    #[test]
    fn fig14_runs_all_allocators() {
        let t = fig14_boot_per_allocator();
        assert!(t.contains("Binary buddy"));
        assert!(t.contains("Bootalloc"));
    }
}
