//! Open-addressing TCP flow table: `(local port, remote endpoint)` →
//! connection slot, flat and cache-friendly at any connection count.
//!
//! The demux used to be a `HashMap<(u16, Endpoint), usize>` — fine for
//! benchmark traffic, but SipHash over a 3-field tuple key plus the
//! std map's bucket indirection is measurable per packet, and the
//! map's memory layout scatters at 100 K–1 M flows. This table packs
//! the whole flow identity into one `u64` key:
//!
//! ```text
//! bits 63..48   local port
//! bits 47..16   remote IPv4 address
//! bits 15..0    remote port
//! ```
//!
//! and probes linearly over parallel `keys`/`vals`/`ctrl` arrays — one
//! multiply-xor hash, one cache line per probe step in the common
//! case. Deletions leave tombstones so probe chains stay intact;
//! growth (at 7/8 occupancy, counting tombstones) rehashes live
//! entries only, clearing the tombstone debt. Lookup, insert and
//! remove are O(1) amortized and allocation-free outside growth.

use crate::Endpoint;

/// Control byte: nothing ever stored here.
const EMPTY: u8 = 0;
/// Control byte: live entry.
const FULL: u8 = 1;
/// Control byte: deleted entry (probe chains continue through it).
const TOMB: u8 = 2;

/// Packs a flow identity into the table's `u64` key form.
#[inline]
pub fn flow_key(local_port: u16, remote: Endpoint) -> u64 {
    ((local_port as u64) << 48) | ((remote.addr.0 as u64) << 16) | remote.port as u64
}

/// Finalizer of splitmix64: full-avalanche mixing of the packed key,
/// so flows differing only in a port land in unrelated buckets.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The open-addressing flow table.
#[derive(Debug)]
pub struct FlowTable {
    keys: Vec<u64>,
    vals: Vec<u32>,
    ctrl: Vec<u8>,
    /// Live entries.
    len: usize,
    /// Live entries + tombstones (drives the growth trigger: probe
    /// chains lengthen with tombstones even when `len` is small).
    used: usize,
}

impl Default for FlowTable {
    fn default() -> Self {
        Self::new()
    }
}

impl FlowTable {
    /// Minimum bucket count (power of two, so masking replaces modulo).
    const MIN_CAP: usize = 64;

    /// Creates an empty table.
    // ukcheck: allow(alloc) -- one-time construction; lookups and
    // inserts below the growth trigger never allocate
    pub fn new() -> Self {
        FlowTable {
            keys: vec![0; Self::MIN_CAP],
            vals: vec![0; Self::MIN_CAP],
            ctrl: vec![EMPTY; Self::MIN_CAP],
            len: 0,
            used: 0,
        }
    }

    /// Live flow count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no flows are installed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current bucket count (diagnostics; growth is power-of-two).
    pub fn capacity(&self) -> usize {
        self.ctrl.len()
    }

    #[inline]
    fn mask(&self) -> usize {
        self.ctrl.len() - 1
    }

    /// Looks up the slot stored under `key`.
    #[inline]
    pub fn get(&self, key: u64) -> Option<u32> {
        let mask = self.mask();
        let mut i = (mix(key) as usize) & mask;
        loop {
            match self.ctrl[i] {
                EMPTY => return None,
                FULL if self.keys[i] == key => return Some(self.vals[i]),
                _ => i = (i + 1) & mask,
            }
        }
    }

    /// Inserts `key → val`, replacing (and returning) any previous
    /// value stored under the key.
    pub fn insert(&mut self, key: u64, val: u32) -> Option<u32> {
        if (self.used + 1) * 8 >= self.ctrl.len() * 7 {
            self.grow();
        }
        let mask = self.mask();
        let mut i = (mix(key) as usize) & mask;
        // First tombstone seen on the probe path: if the key turns out
        // absent, the new entry backfills it, shortening future chains.
        let mut tomb: Option<usize> = None;
        loop {
            match self.ctrl[i] {
                EMPTY => {
                    let at = tomb.unwrap_or(i);
                    if tomb.is_none() {
                        self.used += 1;
                    }
                    self.ctrl[at] = FULL;
                    self.keys[at] = key;
                    self.vals[at] = val;
                    self.len += 1;
                    return None;
                }
                FULL if self.keys[i] == key => {
                    let old = self.vals[i];
                    self.vals[i] = val;
                    return Some(old);
                }
                TOMB => {
                    tomb.get_or_insert(i);
                    i = (i + 1) & mask;
                }
                _ => i = (i + 1) & mask,
            }
        }
    }

    /// Removes `key`, returning its value. Leaves a tombstone so other
    /// flows' probe chains keep resolving.
    pub fn remove(&mut self, key: u64) -> Option<u32> {
        let mask = self.mask();
        let mut i = (mix(key) as usize) & mask;
        loop {
            match self.ctrl[i] {
                EMPTY => return None,
                FULL if self.keys[i] == key => {
                    self.ctrl[i] = TOMB;
                    self.len -= 1;
                    return Some(self.vals[i]);
                }
                _ => i = (i + 1) & mask,
            }
        }
    }

    /// Doubles the bucket array (or just rehashes at the same size
    /// when tombstones, not live entries, tripped the trigger) and
    /// reinserts live entries. The one allocating path.
    // ukcheck: allow(alloc) -- the documented single allocating path:
    // amortized doubling; a table sized for its flow count stops here
    fn grow(&mut self) {
        let new_cap = if self.len * 4 >= self.ctrl.len() {
            self.ctrl.len() * 2
        } else {
            self.ctrl.len() // Tombstone debt only: rehash in place.
        };
        let old_keys = std::mem::replace(&mut self.keys, vec![0; new_cap]);
        let old_vals = std::mem::replace(&mut self.vals, vec![0; new_cap]);
        let old_ctrl = std::mem::replace(&mut self.ctrl, vec![EMPTY; new_cap]);
        self.len = 0;
        self.used = 0;
        let mask = new_cap - 1;
        for (i, &c) in old_ctrl.iter().enumerate() {
            if c != FULL {
                continue;
            }
            let (key, val) = (old_keys[i], old_vals[i]);
            let mut j = (mix(key) as usize) & mask;
            while self.ctrl[j] == FULL {
                j = (j + 1) & mask;
            }
            self.ctrl[j] = FULL;
            self.keys[j] = key;
            self.vals[j] = val;
            self.len += 1;
            self.used += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ipv4Addr;
    use std::collections::HashMap;

    fn ep(ip: u32, port: u16) -> Endpoint {
        Endpoint::new(Ipv4Addr(ip), port)
    }

    #[test]
    fn flow_key_packs_all_fields() {
        let k = flow_key(0x1234, ep(0xdead_beef, 0x5678));
        assert_eq!(k >> 48, 0x1234);
        assert_eq!((k >> 16) & 0xffff_ffff, 0xdead_beef);
        assert_eq!(k & 0xffff, 0x5678);
        // Distinct fields, distinct keys.
        assert_ne!(k, flow_key(0x1235, ep(0xdead_beef, 0x5678)));
        assert_ne!(k, flow_key(0x1234, ep(0xdead_beee, 0x5678)));
        assert_ne!(k, flow_key(0x1234, ep(0xdead_beef, 0x5679)));
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t = FlowTable::new();
        let k = flow_key(80, ep(0x0a00_0002, 49152));
        assert_eq!(t.get(k), None);
        assert_eq!(t.insert(k, 7), None);
        assert_eq!(t.get(k), Some(7));
        assert_eq!(t.len(), 1);
        assert_eq!(t.insert(k, 9), Some(7), "replace returns the old value");
        assert_eq!(t.get(k), Some(9));
        assert_eq!(t.len(), 1);
        assert_eq!(t.remove(k), Some(9));
        assert_eq!(t.get(k), None);
        assert!(t.is_empty());
        assert_eq!(t.remove(k), None);
    }

    #[test]
    fn grows_past_initial_capacity_and_keeps_every_entry() {
        let mut t = FlowTable::new();
        // Far beyond MIN_CAP: multiple growth steps.
        for i in 0..10_000u32 {
            let k = flow_key((i % 7) as u16 + 80, ep(0x0a00_0000 + i, 40000 + (i % 1000) as u16));
            t.insert(k, i);
        }
        for i in 0..10_000u32 {
            let k = flow_key((i % 7) as u16 + 80, ep(0x0a00_0000 + i, 40000 + (i % 1000) as u16));
            assert_eq!(t.get(k), Some(i));
        }
        assert_eq!(t.len(), 10_000);
    }

    #[test]
    fn tombstones_keep_probe_chains_alive() {
        let mut t = FlowTable::new();
        // Insert a batch, delete every other one, and verify survivors
        // still resolve (deletions must not cut probe chains short).
        let keys: Vec<u64> = (0..500u32)
            .map(|i| flow_key(80, ep(i, 1000)))
            .collect();
        for (i, &k) in keys.iter().enumerate() {
            t.insert(k, i as u32);
        }
        for (i, &k) in keys.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(t.remove(k), Some(i as u32));
            }
        }
        for (i, &k) in keys.iter().enumerate() {
            let want = if i % 2 == 0 { None } else { Some(i as u32) };
            assert_eq!(t.get(k), want);
        }
    }

    #[test]
    fn churn_against_hashmap_reference() {
        // Deterministic pseudo-random insert/remove/lookup churn,
        // mirrored into a std HashMap; the two must agree at every
        // step. Exercises tombstone backfill and same-size rehash.
        let mut t = FlowTable::new();
        let mut reference: HashMap<u64, u32> = HashMap::new();
        let mut rng: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut step = || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for i in 0..50_000u32 {
            let r = step();
            let k = flow_key((r % 1024) as u16, ep((r >> 10) as u32 % 4096, 9000));
            match r % 3 {
                0 | 1 => {
                    assert_eq!(t.insert(k, i), reference.insert(k, i), "insert {i}");
                }
                _ => {
                    assert_eq!(t.remove(k), reference.remove(&k), "remove {i}");
                }
            }
            if i % 97 == 0 {
                assert_eq!(t.get(k), reference.get(&k).copied());
                assert_eq!(t.len(), reference.len());
            }
        }
        for (&k, &v) in reference.iter() {
            assert_eq!(t.get(k), Some(v));
        }
    }
}
