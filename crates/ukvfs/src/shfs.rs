//! SHFS: the specialized hash filesystem of Figure 22.
//!
//! §6.3 of the paper: "we aim to obtain high performance out of a web
//! cache application by removing Unikraft's vfs layer (vfscore) and
//! hooking the application directly into a purpose-built specialized
//! hash-based filesystem called SHFS, ported from MiniCache." An open is
//! a single hash-bucket probe — no path walk, no dentry cache, no file
//! descriptor table — yielding the paper's 5–7x latency reduction over
//! the vfscore path.

use ukplat::{Errno, Result};

/// Default number of hash buckets (MiniCache uses a power of two).
pub const DEFAULT_BUCKETS: usize = 4096;

/// A direct file handle: bucket + index, no fd table behind it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShfsHandle {
    bucket: u32,
    index: u32,
}

#[derive(Debug)]
struct Entry {
    hash: u64,
    name: String,
    data: Vec<u8>,
}

/// The hash filesystem.
#[derive(Debug)]
pub struct Shfs {
    buckets: Vec<Vec<Entry>>,
    files: usize,
    hits: u64,
    misses: u64,
}

impl Shfs {
    /// Creates an SHFS with the default bucket count.
    pub fn new() -> Self {
        Self::with_buckets(DEFAULT_BUCKETS)
    }

    /// Creates an SHFS with `n` buckets (rounded up to a power of two).
    pub fn with_buckets(n: usize) -> Self {
        let n = n.next_power_of_two();
        Shfs {
            buckets: (0..n).map(|_| Vec::new()).collect(),
            files: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// FNV-1a, the flat fast hash a content cache would use.
    fn hash(name: &str) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    fn bucket_of(&self, hash: u64) -> usize {
        (hash as usize) & (self.buckets.len() - 1)
    }

    /// Inserts (or replaces) a file.
    pub fn insert(&mut self, name: &str, data: Vec<u8>) {
        let hash = Self::hash(name);
        let b = self.bucket_of(hash);
        let bucket = &mut self.buckets[b];
        if let Some(e) = bucket.iter_mut().find(|e| e.hash == hash && e.name == name) {
            e.data = data;
            return;
        }
        bucket.push(Entry {
            hash,
            name: name.to_string(),
            data,
        });
        self.files += 1;
    }

    /// The specialized `open()`: one hash probe to a direct handle.
    pub fn open(&mut self, name: &str) -> Result<ShfsHandle> {
        let hash = Self::hash(name);
        let b = self.bucket_of(hash);
        match self.buckets[b]
            .iter()
            .position(|e| e.hash == hash && e.name == name)
        {
            Some(i) => {
                self.hits += 1;
                Ok(ShfsHandle {
                    bucket: b as u32,
                    index: i as u32,
                })
            }
            None => {
                self.misses += 1;
                Err(Errno::NoEnt)
            }
        }
    }

    /// Reads through a handle — a direct slice access.
    pub fn read(&self, h: ShfsHandle, off: usize, len: usize) -> Result<&[u8]> {
        let data = &self
            .buckets
            .get(h.bucket as usize)
            .and_then(|b| b.get(h.index as usize))
            .ok_or(Errno::BadF)?
            .data;
        let start = off.min(data.len());
        let end = (start + len).min(data.len());
        Ok(&data[start..end])
    }

    /// File size through a handle.
    pub fn size(&self, h: ShfsHandle) -> Result<usize> {
        Ok(self
            .buckets
            .get(h.bucket as usize)
            .and_then(|b| b.get(h.index as usize))
            .ok_or(Errno::BadF)?
            .data
            .len())
    }

    /// Number of stored files.
    pub fn len(&self) -> usize {
        self.files
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.files == 0
    }

    /// (hits, misses) of `open` probes.
    pub fn probe_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

impl Default for Shfs {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_open_read() {
        let mut fs = Shfs::new();
        fs.insert("index.html", b"<html>hi</html>".to_vec());
        let h = fs.open("index.html").unwrap();
        assert_eq!(fs.read(h, 0, 64).unwrap(), b"<html>hi</html>");
        assert_eq!(fs.size(h).unwrap(), 15);
    }

    #[test]
    fn missing_file_is_enoent_and_counted() {
        let mut fs = Shfs::new();
        assert_eq!(fs.open("nope").unwrap_err(), Errno::NoEnt);
        assert_eq!(fs.probe_stats(), (0, 1));
    }

    #[test]
    fn replace_keeps_count() {
        let mut fs = Shfs::new();
        fs.insert("f", vec![1]);
        fs.insert("f", vec![2, 3]);
        assert_eq!(fs.len(), 1);
        let h = fs.open("f").unwrap();
        assert_eq!(fs.read(h, 0, 8).unwrap(), &[2, 3]);
    }

    #[test]
    fn many_files_in_few_buckets_still_resolve() {
        let mut fs = Shfs::with_buckets(4);
        for i in 0..100 {
            fs.insert(&format!("file-{i}"), vec![i as u8]);
        }
        for i in 0..100 {
            let h = fs.open(&format!("file-{i}")).unwrap();
            assert_eq!(fs.read(h, 0, 1).unwrap(), &[i as u8]);
        }
    }

    #[test]
    fn partial_reads_with_offset() {
        let mut fs = Shfs::new();
        fs.insert("f", (0..=9u8).collect());
        let h = fs.open("f").unwrap();
        assert_eq!(fs.read(h, 4, 3).unwrap(), &[4, 5, 6]);
        assert_eq!(fs.read(h, 9, 10).unwrap(), &[9]);
        assert!(fs.read(h, 100, 1).unwrap().is_empty());
    }
}
