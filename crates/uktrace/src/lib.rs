//! `uktrace`: typed tracepoints writing fixed-size records into
//! per-instance ring buffers stamped by the virtual clock.
//!
//! Unikraft's `uktrace` (behind `CONFIG_LIBUKDEBUG_TRACEPOINTS`) compiles
//! tracepoint call sites into either a store into a static trace buffer
//! or — when the option is off — nothing at all. This crate reproduces
//! that shape:
//!
//! * [`tracepoints!`] declares typed tracepoints as `pub static`s carrying
//!   their name and argument names, so records decode symbolically.
//! * [`trace!`] writes one fixed-size [`TraceEvent`] (timestamp, point,
//!   up to [`MAX_ARGS`] `u64` args) into a [`TraceRing`]. The ring is
//!   preallocated at construction; recording is index arithmetic plus a
//!   few stores — zero allocation, which is why the zero-alloc tier-1
//!   tests pass with tracing **enabled**.
//! * Timestamps come from the platform's virtual clock when one is
//!   attached ([`TraceRing::set_clock`]); otherwise a per-ring sequence
//!   number keeps records ordered.
//! * Building with `--no-default-features` compiles the whole plane out:
//!   [`TraceRing`] becomes a zero-sized type, `trace!` expands to
//!   nothing, and [`COMPILED_IN`] is `false`. `make verify-trace-off`
//!   asserts this.
//!
//! Draining ([`TraceRing::drain`]) returns records oldest-first and is
//! the basis of the trace-order test style: "this scenario fired exactly
//! these tracepoints in this order".

/// Whether tracepoints are compiled in (`tracepoints` feature).
pub const COMPILED_IN: bool = cfg!(feature = "tracepoints");

/// Maximum `u64` arguments a record carries.
pub const MAX_ARGS: usize = 2;

/// A tracepoint definition: declared once as a `pub static` (see
/// [`tracepoints!`]), referenced by every record that fires it.
#[derive(Debug)]
pub struct Tracepoint {
    /// Symbolic name, e.g. `"tcp_syn_tx"`.
    pub name: &'static str,
    /// Names of the arguments, e.g. `["local_port", "remote_port"]`.
    pub arg_names: &'static [&'static str],
}

/// One fixed-size trace record.
#[derive(Debug, Clone, Copy)]
pub struct TraceEvent {
    /// Virtual-clock nanoseconds (or ring sequence number when no clock
    /// is attached).
    pub ts: u64,
    /// The tracepoint that fired.
    pub point: &'static Tracepoint,
    /// Argument values; only the first `argc` are meaningful.
    pub args: [u64; MAX_ARGS],
    /// How many of `args` were recorded.
    pub argc: u8,
}

impl TraceEvent {
    /// The tracepoint's symbolic name.
    pub fn name(&self) -> &'static str {
        self.point.name
    }

    /// Renders `name arg0=v0 arg1=v1` for dumps and assertion messages.
    // ukcheck: allow(alloc) -- cold render path for dumps/assertions;
    // the hot path is `record`, which only writes a fixed-size slot
    pub fn decode(&self) -> String {
        let mut out = String::from(self.point.name);
        for i in 0..self.argc as usize {
            let arg = self.point.arg_names.get(i).copied().unwrap_or("arg");
            out.push_str(&format!(" {}={}", arg, self.args[i]));
        }
        out
    }
}

/// Declares typed tracepoints as `pub static`s.
///
/// ```
/// pub mod tp {
///     uktrace::tracepoints! {
///         tcp_rto_fired(tcb_id, seq),
///         pump_idle(),
///     }
/// }
/// assert_eq!(tp::tcp_rto_fired.name, "tcp_rto_fired");
/// ```
#[macro_export]
macro_rules! tracepoints {
    ($( $name:ident ( $($arg:ident),* $(,)? ) ),* $(,)?) => {
        $(
            // dead_code: with tracepoints compiled out every `trace!`
            // reference to the static vanishes with the call site.
            #[allow(non_upper_case_globals, dead_code)]
            pub static $name: $crate::Tracepoint = $crate::Tracepoint {
                name: stringify!($name),
                arg_names: &[ $( stringify!($arg) ),* ],
            };
        )*
    };
}

/// Fires a tracepoint into a ring: `trace!(ring, tp::tcp_rto_fired, tcb,
/// seq)`. With tracepoints compiled out this expands to nothing at all.
#[cfg(feature = "tracepoints")]
#[macro_export]
macro_rules! trace {
    ($ring:expr, $tp:expr) => {
        $ring.record(&$tp, &[])
    };
    ($ring:expr, $tp:expr, $a:expr) => {
        $ring.record(&$tp, &[$a as u64])
    };
    ($ring:expr, $tp:expr, $a:expr, $b:expr) => {
        $ring.record(&$tp, &[$a as u64, $b as u64])
    };
}

/// Fires a tracepoint into a ring — compiled out: expands to nothing.
#[cfg(not(feature = "tracepoints"))]
#[macro_export]
macro_rules! trace {
    ($($t:tt)*) => {};
}

#[cfg(feature = "tracepoints")]
mod imp {
    use super::{TraceEvent, Tracepoint, MAX_ARGS};
    use ukplat::time::{MonotonicClock, Tsc};

    static NULL_POINT: Tracepoint = Tracepoint {
        name: "",
        arg_names: &[],
    };

    /// A per-instance ring of fixed-size trace records. Preallocated at
    /// construction; recording never allocates. When full, the oldest
    /// record is overwritten and counted in [`dropped`](Self::dropped).
    #[derive(Debug)]
    pub struct TraceRing {
        buf: Box<[TraceEvent]>,
        /// Next write position.
        head: usize,
        /// Live records (≤ capacity).
        len: usize,
        /// Monotonic fallback stamp when no clock is attached.
        seq: u64,
        /// Records overwritten because the ring was full.
        dropped: u64,
        clock: Option<MonotonicClock>,
    }

    impl TraceRing {
        /// Creates a ring holding `capacity` records (min 1).
        // ukcheck: allow(alloc) -- the ring is pre-allocated once here;
        // `record` writes into it without ever growing it
        pub fn new(capacity: usize) -> Self {
            let capacity = capacity.max(1);
            TraceRing {
                buf: vec![
                    TraceEvent {
                        ts: 0,
                        point: &NULL_POINT,
                        args: [0; MAX_ARGS],
                        argc: 0,
                    };
                    capacity
                ]
                .into_boxed_slice(),
                head: 0,
                len: 0,
                seq: 0,
                dropped: 0,
                clock: None,
            }
        }

        /// Stamps subsequent records with the platform's virtual clock.
        pub fn set_clock(&mut self, tsc: &Tsc) {
            self.clock = Some(MonotonicClock::new(tsc));
        }

        /// Writes one record. Fixed-size stores into the preallocated
        /// ring — the hot-path cost tracing adds.
        #[inline]
        pub fn record(&mut self, point: &'static Tracepoint, args: &[u64]) {
            let ts = match &self.clock {
                Some(c) => c.now_ns(),
                None => self.seq,
            };
            self.seq += 1;
            let mut rec = TraceEvent {
                ts,
                point,
                args: [0; MAX_ARGS],
                argc: args.len().min(MAX_ARGS) as u8,
            };
            rec.args[..rec.argc as usize].copy_from_slice(&args[..rec.argc as usize]);
            if self.len == self.buf.len() {
                self.dropped += 1;
            } else {
                self.len += 1;
            }
            self.buf[self.head] = rec;
            self.head = (self.head + 1) % self.buf.len();
        }

        /// Removes and returns all buffered records, oldest first.
        // ukcheck: allow(alloc) -- cold export path: tests and dumps
        // drain the ring outside any measured window
        pub fn drain(&mut self) -> Vec<TraceEvent> {
            let cap = self.buf.len();
            let start = (self.head + cap - self.len) % cap;
            let out = (0..self.len).map(|i| self.buf[(start + i) % cap]).collect();
            self.len = 0;
            self.head = 0;
            out
        }

        /// Buffered record count.
        pub fn len(&self) -> usize {
            self.len
        }

        /// Whether the ring holds no records.
        pub fn is_empty(&self) -> bool {
            self.len == 0
        }

        /// Ring capacity in records.
        pub fn capacity(&self) -> usize {
            self.buf.len()
        }

        /// Records overwritten because the ring was full.
        pub fn dropped(&self) -> u64 {
            self.dropped
        }
    }
}

#[cfg(not(feature = "tracepoints"))]
mod imp {
    use super::{TraceEvent, Tracepoint};
    use ukplat::time::Tsc;

    /// Zero-sized no-op ring: tracepoints are compiled out.
    #[derive(Debug)]
    pub struct TraceRing;

    impl TraceRing {
        pub fn new(_capacity: usize) -> Self {
            TraceRing
        }
        pub fn set_clock(&mut self, _tsc: &Tsc) {}
        #[inline(always)]
        pub fn record(&mut self, _point: &'static Tracepoint, _args: &[u64]) {}
        /// `Vec::new` does not allocate: drain stays allocation-free too.
        // ukcheck: allow(alloc) -- an empty Vec::new performs no heap
        // allocation; this is the compiled-out no-op ring
        pub fn drain(&mut self) -> Vec<TraceEvent> {
            Vec::new()
        }
        pub fn len(&self) -> usize {
            0
        }
        pub fn is_empty(&self) -> bool {
            true
        }
        pub fn capacity(&self) -> usize {
            0
        }
        pub fn dropped(&self) -> u64 {
            0
        }
    }
}

pub use imp::TraceRing;

#[cfg(test)]
mod tests {
    use super::*;

    mod tp {
        crate::tracepoints! {
            unit_fired(value),
            unit_pair(a, b),
            unit_bare(),
        }
    }

    #[test]
    fn compiled_out_ring_is_zero_sized() {
        if !COMPILED_IN {
            assert_eq!(std::mem::size_of::<TraceRing>(), 0);
            let mut r = TraceRing::new(64);
            trace!(r, tp::unit_fired, 1u64);
            assert!(r.drain().is_empty());
        }
    }

    #[test]
    fn tracepoint_metadata_decodes() {
        assert_eq!(tp::unit_pair.name, "unit_pair");
        assert_eq!(tp::unit_pair.arg_names, ["a", "b"]);
    }

    #[cfg(feature = "tracepoints")]
    mod live {
        use super::tp;
        use crate::TraceRing;

        #[test]
        fn records_drain_oldest_first() {
            let mut r = TraceRing::new(8);
            crate::trace!(r, tp::unit_fired, 10u64);
            crate::trace!(r, tp::unit_pair, 1u64, 2u64);
            crate::trace!(r, tp::unit_bare);
            let ev = r.drain();
            assert_eq!(
                ev.iter().map(|e| e.name()).collect::<Vec<_>>(),
                ["unit_fired", "unit_pair", "unit_bare"]
            );
            assert_eq!(ev[0].decode(), "unit_fired value=10");
            assert_eq!(ev[1].decode(), "unit_pair a=1 b=2");
            assert_eq!(ev[2].decode(), "unit_bare");
            assert!(r.is_empty());
        }

        #[test]
        fn sequence_stamps_are_monotonic_without_a_clock() {
            let mut r = TraceRing::new(8);
            for i in 0..5u64 {
                crate::trace!(r, tp::unit_fired, i);
            }
            let ts: Vec<u64> = r.drain().iter().map(|e| e.ts).collect();
            assert_eq!(ts, [0, 1, 2, 3, 4]);
        }

        #[test]
        fn virtual_clock_stamps_records() {
            let tsc = ukplat::time::Tsc::new(1_000_000_000);
            let mut r = TraceRing::new(8);
            r.set_clock(&tsc);
            crate::trace!(r, tp::unit_bare);
            tsc.advance_ns(250);
            crate::trace!(r, tp::unit_bare);
            let ev = r.drain();
            assert_eq!(ev[0].ts, 0);
            assert_eq!(ev[1].ts, 250);
        }

        #[test]
        fn full_ring_overwrites_oldest_and_counts_drops() {
            let mut r = TraceRing::new(2);
            crate::trace!(r, tp::unit_fired, 1u64);
            crate::trace!(r, tp::unit_fired, 2u64);
            crate::trace!(r, tp::unit_fired, 3u64);
            assert_eq!(r.dropped(), 1);
            let vals: Vec<u64> = r.drain().iter().map(|e| e.args[0]).collect();
            assert_eq!(vals, [2, 3]);
        }
    }
}
