//! `eventfd`: a 64-bit counter with readiness semantics.
//!
//! The Linux object the paper's §4.1 lists as missing from Unikraft's
//! POSIX layer. Semantics follow `eventfd(2)`:
//!
//! - `write(v)` adds `v` to the counter; it would block (here:
//!   `EAGAIN`) if the sum would exceed `u64::MAX - 1`, and `v ==
//!   u64::MAX` is `EINVAL`.
//! - `read` returns the whole counter and resets it to zero — unless
//!   `EFD_SEMAPHORE` was given, in which case it returns 1 and
//!   decrements. A zero counter reads as `EAGAIN`.
//! - Readiness: `EPOLLIN` while the counter is non-zero, `EPOLLOUT`
//!   while a write of 1 could complete.

use ukplat::{Errno, Result};

use crate::mask::EventMask;
use crate::source::{Pollable, ReadySource};

/// `EFD_SEMAPHORE`: reads decrement by one instead of resetting.
pub const EFD_SEMAPHORE: u32 = 0x1;
/// `EFD_NONBLOCK`: accepted and recorded; all our reads/writes are
/// already non-blocking (they return `EAGAIN` instead of sleeping).
pub const EFD_NONBLOCK: u32 = 0x800;

const MAX_COUNTER: u64 = u64::MAX - 1;

/// An eventfd object.
#[derive(Debug)]
pub struct EventFd {
    counter: u64,
    semaphore: bool,
    nonblock: bool,
    source: ReadySource,
}

impl EventFd {
    /// Creates an eventfd with an initial counter (`eventfd2`). Unknown
    /// flag bits are rejected with `EINVAL`, as Linux does.
    pub fn new(initval: u64, flags: u32) -> Result<Self> {
        if flags & !(EFD_SEMAPHORE | EFD_NONBLOCK) != 0 {
            return Err(Errno::Inval);
        }
        let efd = EventFd {
            counter: initval,
            semaphore: flags & EFD_SEMAPHORE != 0,
            nonblock: flags & EFD_NONBLOCK != 0,
            source: ReadySource::new(),
        };
        efd.publish();
        Ok(efd)
    }

    /// Adds `value` to the counter. `EINVAL` for `u64::MAX`, `EAGAIN`
    /// when the counter would overflow `u64::MAX - 1`.
    pub fn write(&mut self, value: u64) -> Result<()> {
        if value == u64::MAX {
            return Err(Errno::Inval);
        }
        if self.counter.checked_add(value).map_or(true, |s| s > MAX_COUNTER) {
            return Err(Errno::Again);
        }
        self.counter += value;
        self.publish();
        Ok(())
    }

    /// Reads the counter: the whole value (reset to 0), or 1 in
    /// semaphore mode (decrement). `EAGAIN` when zero.
    pub fn read(&mut self) -> Result<u64> {
        if self.counter == 0 {
            return Err(Errno::Again);
        }
        let v = if self.semaphore {
            self.counter -= 1;
            1
        } else {
            std::mem::take(&mut self.counter)
        };
        self.publish();
        Ok(v)
    }

    /// Current counter value (not part of the Linux API; for tests and
    /// reports).
    pub fn value(&self) -> u64 {
        self.counter
    }

    /// Whether `EFD_SEMAPHORE` was given.
    pub fn is_semaphore(&self) -> bool {
        self.semaphore
    }

    /// Whether `EFD_NONBLOCK` was given.
    pub fn is_nonblock(&self) -> bool {
        self.nonblock
    }

    fn publish(&self) {
        let mut m = EventMask::EMPTY;
        if self.counter > 0 {
            m |= EventMask::IN;
        }
        if self.counter < MAX_COUNTER {
            m |= EventMask::OUT;
        }
        self.source.set_level(m);
    }
}

impl Pollable for EventFd {
    fn poll_events(&self) -> EventMask {
        self.source.current()
    }

    fn ready_source(&self) -> ReadySource {
        self.source.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_resets_on_read() {
        let mut e = EventFd::new(0, 0).unwrap();
        assert_eq!(e.read().unwrap_err(), Errno::Again);
        e.write(3).unwrap();
        e.write(4).unwrap();
        assert_eq!(e.read().unwrap(), 7);
        assert_eq!(e.read().unwrap_err(), Errno::Again);
    }

    #[test]
    fn semaphore_mode_decrements() {
        let mut e = EventFd::new(2, EFD_SEMAPHORE).unwrap();
        assert_eq!(e.read().unwrap(), 1);
        assert_eq!(e.read().unwrap(), 1);
        assert_eq!(e.read().unwrap_err(), Errno::Again);
    }

    #[test]
    fn overflow_rules_match_linux() {
        let mut e = EventFd::new(0, 0).unwrap();
        assert_eq!(e.write(u64::MAX).unwrap_err(), Errno::Inval);
        e.write(u64::MAX - 1).unwrap();
        assert_eq!(e.write(1).unwrap_err(), Errno::Again);
        assert!(!e.poll_events().contains(EventMask::OUT), "counter full");
        assert_eq!(e.read().unwrap(), u64::MAX - 1);
        assert!(e.poll_events().contains(EventMask::OUT));
    }

    #[test]
    fn readiness_tracks_counter() {
        let mut e = EventFd::new(0, 0).unwrap();
        assert!(!e.poll_events().contains(EventMask::IN));
        assert!(e.poll_events().contains(EventMask::OUT));
        e.write(1).unwrap();
        assert!(e.poll_events().contains(EventMask::IN));
        e.read().unwrap();
        assert!(!e.poll_events().contains(EventMask::IN));
    }

    #[test]
    fn unknown_flags_rejected() {
        assert_eq!(EventFd::new(0, 0x4).unwrap_err(), Errno::Inval);
        assert!(EventFd::new(5, EFD_SEMAPHORE | EFD_NONBLOCK).is_ok());
    }

    #[test]
    fn initval_is_readable_immediately() {
        let mut e = EventFd::new(41, 0).unwrap();
        assert!(e.poll_events().contains(EventMask::IN));
        assert_eq!(e.read().unwrap(), 41);
    }
}
