//! Filesystem micro-libraries: `vfscore`, ramfs, 9pfs and SHFS.
//!
//! The paper's storage story (Figure 4, scenarios ➂ and ➇):
//!
//! - applications can take the standard path through **vfscore** — mount
//!   table, path walk, dentry cache, file-descriptor table ([`vfscore`]);
//! - guests without persistent storage embed a **RamFS** ([`ramfs`]);
//! - persistent storage is reached via **9pfs** over virtio-9p
//!   ([`ninep`]), with a real 9P2000 message codec and a host model —
//!   the setup of Figure 20;
//! - specialized images drop the VFS entirely and hook a purpose-built
//!   filesystem: **SHFS**, the hash-based web-cache store of Figure 22,
//!   where `open()` is a single hash lookup instead of a path walk.

pub mod ninep;
pub mod ramfs;
pub mod shfs;
pub mod vfscore;

pub use ninep::{NinePClient, NinePHost};
pub use ramfs::RamFs;
pub use shfs::Shfs;
pub use vfscore::{Fd, FileSystem, Ino, Vfs};
