//! TCP: header codec and a compact connection state machine.
//!
//! Enough TCP to run the paper's request/response servers over real
//! packets: three-way handshake, sequence/ack tracking, MSS segmentation,
//! PSH data delivery, FIN teardown and RST on unexpected segments. The
//! in-process wire is lossless and ordered, so retransmission and
//! congestion control are intentionally out of scope (documented in
//! DESIGN.md).

use std::collections::VecDeque;

use uknetdev::netbuf::Netbuf;
use ukplat::{Errno, Result};

use crate::inet_checksum;
use crate::ipv4::Ipv4Header;

/// TCP header length (no options).
pub const TCP_HDR_LEN: usize = 20;
/// Maximum segment size used by the stack (Ethernet MTU minus headers).
pub const MSS: usize = 1460;
/// Send-buffer capacity: bytes the application may queue beyond what the
/// peer's receive window has admitted. `app_send` accepts partial writes
/// against this cap, like a non-blocking `send(2)`.
pub const SND_BUF_CAP: usize = 64 * 1024;
/// Receive-buffer capacity; also the largest window we advertise (the
/// field is 16 bits without window scaling).
pub const RCV_BUF_CAP: usize = 65_535;

/// TCP flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags {
    /// SYN.
    pub syn: bool,
    /// ACK.
    pub ack: bool,
    /// FIN.
    pub fin: bool,
    /// RST.
    pub rst: bool,
    /// PSH.
    pub psh: bool,
}

impl TcpFlags {
    /// A SYN.
    pub const SYN: TcpFlags = TcpFlags {
        syn: true,
        ack: false,
        fin: false,
        rst: false,
        psh: false,
    };

    fn to_u8(self) -> u8 {
        (u8::from(self.fin))
            | (u8::from(self.syn) << 1)
            | (u8::from(self.rst) << 2)
            | (u8::from(self.psh) << 3)
            | (u8::from(self.ack) << 4)
    }

    fn from_u8(v: u8) -> Self {
        TcpFlags {
            fin: v & 1 != 0,
            syn: v & 2 != 0,
            rst: v & 4 != 0,
            psh: v & 8 != 0,
            ack: v & 16 != 0,
        }
    }
}

/// A parsed TCP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// Flags.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
}

impl TcpHeader {
    /// Serializes header + payload into a segment with a valid checksum.
    pub fn encode(&self, ip: &Ipv4Header, payload: &[u8]) -> Vec<u8> {
        let mut seg = Vec::with_capacity(TCP_HDR_LEN + payload.len());
        seg.extend_from_slice(&self.src_port.to_be_bytes());
        seg.extend_from_slice(&self.dst_port.to_be_bytes());
        seg.extend_from_slice(&self.seq.to_be_bytes());
        seg.extend_from_slice(&self.ack.to_be_bytes());
        seg.push(5 << 4); // Data offset 5 words.
        seg.push(self.flags.to_u8());
        seg.extend_from_slice(&self.window.to_be_bytes());
        seg.extend_from_slice(&[0, 0]); // Checksum placeholder.
        seg.extend_from_slice(&[0, 0]); // Urgent pointer.
        seg.extend_from_slice(payload);
        let ck = inet_checksum(&seg, ip.pseudo_header_sum());
        seg[16..18].copy_from_slice(&ck.to_be_bytes());
        seg
    }

    /// Prepends the 20-byte header into `nb`'s headroom; the payload
    /// already in the buffer becomes the segment body without being
    /// copied. The checksum is computed in place over the whole segment
    /// with the pseudo-header seed — byte-identical to
    /// [`encode`](Self::encode).
    ///
    /// # Panics
    ///
    /// Panics if `nb` has less than [`TCP_HDR_LEN`] bytes of headroom.
    pub fn encode_into(&self, ip: &Ipv4Header, nb: &mut Netbuf) {
        let hdr = nb.push_header_uninit(TCP_HDR_LEN);
        hdr[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        hdr[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        hdr[4..8].copy_from_slice(&self.seq.to_be_bytes());
        hdr[8..12].copy_from_slice(&self.ack.to_be_bytes());
        hdr[12] = 5 << 4; // Data offset 5 words.
        hdr[13] = self.flags.to_u8();
        hdr[14..16].copy_from_slice(&self.window.to_be_bytes());
        hdr[16..18].copy_from_slice(&[0, 0]); // Checksum placeholder.
        hdr[18..20].copy_from_slice(&[0, 0]); // Urgent pointer.
        let ck = inet_checksum(nb.payload(), ip.pseudo_header_sum());
        nb.payload_mut()[16..18].copy_from_slice(&ck.to_be_bytes());
    }

    /// The checksum-offload form of [`encode_into`](Self::encode_into):
    /// prepends the header with the checksum field holding only the
    /// *folded pseudo-header sum* (uncomplemented) and attaches a
    /// [`CsumRequest`](uknetdev::netbuf::CsumRequest) to the netbuf, so
    /// the device completes the sum over the whole segment on
    /// `tx_burst` — the frame that reaches the wire is
    /// checksum-equivalent to the software path's (the device emits a
    /// computed `0x0000` as the congruent `0xffff`, which the software
    /// TCP path leaves raw; both verify identically).
    ///
    /// # Panics
    ///
    /// Panics if `nb` has less than [`TCP_HDR_LEN`] bytes of headroom.
    pub fn encode_into_partial(&self, ip: &Ipv4Header, nb: &mut Netbuf) {
        let hdr = nb.push_header_uninit(TCP_HDR_LEN);
        hdr[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        hdr[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        hdr[4..8].copy_from_slice(&self.seq.to_be_bytes());
        hdr[8..12].copy_from_slice(&self.ack.to_be_bytes());
        hdr[12] = 5 << 4; // Data offset 5 words.
        hdr[13] = self.flags.to_u8();
        hdr[14..16].copy_from_slice(&self.window.to_be_bytes());
        let partial = uknetdev::csum::fold_partial_sum(u64::from(ip.pseudo_header_sum()));
        hdr[16..18].copy_from_slice(&partial.to_be_bytes());
        hdr[18..20].copy_from_slice(&[0, 0]); // Urgent pointer.
        nb.request_csum(nb.len(), 16);
    }

    /// Parses and verifies a segment; returns header + payload.
    pub fn decode<'a>(ip: &Ipv4Header, seg: &'a [u8]) -> Result<(TcpHeader, &'a [u8])> {
        if seg.len() < TCP_HDR_LEN {
            return Err(Errno::Inval);
        }
        let doff = (seg[12] >> 4) as usize * 4;
        if doff < TCP_HDR_LEN || doff > seg.len() {
            return Err(Errno::Inval);
        }
        if inet_checksum(seg, ip.pseudo_header_sum()) != 0 {
            return Err(Errno::Io);
        }
        Ok((
            TcpHeader {
                src_port: u16::from_be_bytes([seg[0], seg[1]]),
                dst_port: u16::from_be_bytes([seg[2], seg[3]]),
                seq: u32::from_be_bytes([seg[4], seg[5], seg[6], seg[7]]),
                ack: u32::from_be_bytes([seg[8], seg[9], seg[10], seg[11]]),
                flags: TcpFlags::from_u8(seg[13]),
                window: u16::from_be_bytes([seg[14], seg[15]]),
            },
            &seg[doff..],
        ))
    }
}

/// TCP connection states (subset of RFC 793).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpState {
    /// Passive open.
    Listen,
    /// Active open sent.
    SynSent,
    /// Handshake reply sent.
    SynReceived,
    /// Data flows.
    Established,
    /// We sent FIN.
    FinWait,
    /// Peer sent FIN; we may still send.
    CloseWait,
    /// We sent FIN after CloseWait.
    LastAck,
    /// Done.
    Closed,
}

/// An outgoing segment (flags + payload), produced by the TCB.
///
/// This owned form exists for tests and diagnostics; the stack's hot
/// path uses [`Tcb::poll_output_with`], which hands out the payload as
/// borrowed slices so it can be written straight into a pooled netbuf
/// without an intermediate `Vec`.
#[derive(Debug, Clone)]
pub struct OutSegment {
    /// Header to send.
    pub header: TcpHeader,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// The first `n` bytes of a ring buffer as its (up to) two contiguous
/// slices — the shape both allocation-free copy paths
/// ([`Tcb::app_recv_into`], [`Tcb::poll_output_with`]) consume.
fn ring_front(dq: &VecDeque<u8>, n: usize) -> (&[u8], &[u8]) {
    let (a, b) = dq.as_slices();
    let from_a = n.min(a.len());
    (&a[..from_a], &b[..n - from_a])
}

/// A transmission control block.
#[derive(Debug)]
pub struct Tcb {
    /// Connection state.
    pub state: TcpState,
    local_port: u16,
    remote_port: u16,
    snd_nxt: u32,
    rcv_nxt: u32,
    /// Oldest unacknowledged sequence number (flow control).
    snd_una: u32,
    /// Peer's advertised receive window.
    snd_wnd: u32,
    /// Window we advertised in our last segment (zero-window tracking).
    last_adv_wnd: u16,
    /// Bytes the application queued but we have not yet segmented.
    send_buf: VecDeque<u8>,
    /// Bytes received, ready for the application.
    recv_buf: VecDeque<u8>,
    /// Monotonic count of bytes ever ingested (readiness progress:
    /// edge-triggered watchers re-trigger on new arrivals even while
    /// data is already pending).
    rx_total: u64,
    /// Control segments (no payload) ready to be emitted on the wire.
    /// Data segments are never queued: they are cut from `send_buf`
    /// directly into the caller's netbuf at `poll_output_with` time.
    out: VecDeque<TcpHeader>,
    /// Whether the app asked to close after the send buffer drains.
    closing: bool,
    /// Peer closed its direction.
    peer_fin: bool,
}

impl Tcb {
    /// Creates a listening TCB (server side).
    pub fn listen(local_port: u16) -> Self {
        Tcb::new(TcpState::Listen, local_port, 0, 0)
    }

    /// Creates a connecting TCB and queues the SYN (client side).
    pub fn connect(local_port: u16, remote_port: u16, iss: u32) -> Self {
        let mut tcb = Tcb::new(TcpState::SynSent, local_port, remote_port, iss);
        tcb.emit(TcpFlags::SYN);
        tcb.snd_nxt = tcb.snd_nxt.wrapping_add(1); // SYN consumes a sequence.
        tcb
    }

    fn new(state: TcpState, local_port: u16, remote_port: u16, iss: u32) -> Self {
        Tcb {
            state,
            local_port,
            remote_port,
            snd_nxt: iss,
            rcv_nxt: 0,
            snd_una: iss,
            snd_wnd: RCV_BUF_CAP as u32,
            last_adv_wnd: RCV_BUF_CAP as u16,
            send_buf: VecDeque::new(),
            recv_buf: VecDeque::new(),
            rx_total: 0,
            out: VecDeque::new(),
            closing: false,
            peer_fin: false,
        }
    }

    /// The receive window to advertise: free space in the receive buffer.
    fn rcv_window(&self) -> u16 {
        (RCV_BUF_CAP - self.recv_buf.len().min(RCV_BUF_CAP)) as u16
    }

    /// Builds the header for the next outgoing segment, recording the
    /// advertised window (zero-window tracking).
    fn make_header(&mut self, flags: TcpFlags) -> TcpHeader {
        let window = self.rcv_window();
        self.last_adv_wnd = window;
        TcpHeader {
            src_port: self.local_port,
            dst_port: self.remote_port,
            seq: self.snd_nxt,
            ack: self.rcv_nxt,
            flags,
            window,
        }
    }

    /// Queues a control (payload-free) segment.
    fn emit(&mut self, flags: TcpFlags) {
        let header = self.make_header(flags);
        self.out.push_back(header);
    }

    /// `a <= b` in sequence space.
    fn seq_le(a: u32, b: u32) -> bool {
        b.wrapping_sub(a) as i32 >= 0
    }

    /// Processes the acknowledgement and window fields of a segment.
    fn process_ack(&mut self, h: &TcpHeader) {
        if !h.flags.ack {
            return;
        }
        if Self::seq_le(self.snd_una, h.ack) && Self::seq_le(h.ack, self.snd_nxt) {
            self.snd_una = h.ack;
        }
        self.snd_wnd = u32::from(h.window);
    }

    /// Handles an incoming segment.
    pub fn on_segment(&mut self, h: &TcpHeader, payload: &[u8]) {
        if h.flags.rst {
            self.state = TcpState::Closed;
            return;
        }
        match self.state {
            TcpState::Listen => {
                if h.flags.syn {
                    self.remote_port = h.src_port;
                    self.rcv_nxt = h.seq.wrapping_add(1);
                    self.emit(TcpFlags {
                            syn: true,
                            ack: true,
                            ..Default::default()
                        });
                    self.snd_nxt = self.snd_nxt.wrapping_add(1);
                    self.state = TcpState::SynReceived;
                }
            }
            TcpState::SynSent => {
                if h.flags.syn && h.flags.ack {
                    self.process_ack(h);
                    self.rcv_nxt = h.seq.wrapping_add(1);
                    self.emit(TcpFlags {
                            ack: true,
                            ..Default::default()
                        });
                    self.state = TcpState::Established;
                }
            }
            TcpState::SynReceived => {
                if h.flags.ack {
                    self.process_ack(h);
                    self.state = TcpState::Established;
                    // The ACK completing the handshake may carry data.
                    self.ingest(h, payload);
                }
            }
            TcpState::Established | TcpState::FinWait | TcpState::CloseWait => {
                self.process_ack(h);
                self.ingest(h, payload);
                if h.flags.fin && self.state == TcpState::Established {
                    self.rcv_nxt = self.rcv_nxt.wrapping_add(1);
                    self.peer_fin = true;
                    self.emit(TcpFlags {
                            ack: true,
                            ..Default::default()
                        });
                    self.state = TcpState::CloseWait;
                } else if h.flags.fin && self.state == TcpState::FinWait {
                    self.rcv_nxt = self.rcv_nxt.wrapping_add(1);
                    self.emit(TcpFlags {
                            ack: true,
                            ..Default::default()
                        });
                    self.state = TcpState::Closed;
                }
            }
            TcpState::LastAck => {
                if h.flags.ack {
                    self.state = TcpState::Closed;
                }
            }
            TcpState::Closed => {
                // Reply RST to anything but RST.
                self.emit(TcpFlags {
                        rst: true,
                        ack: true,
                        ..Default::default()
                    });
            }
        }
    }

    fn ingest(&mut self, h: &TcpHeader, payload: &[u8]) {
        if payload.is_empty() {
            return;
        }
        if h.seq == self.rcv_nxt {
            self.recv_buf.extend(payload);
            self.rx_total += payload.len() as u64;
            self.rcv_nxt = self.rcv_nxt.wrapping_add(payload.len() as u32);
            self.emit(TcpFlags {
                    ack: true,
                    ..Default::default()
                });
        }
        // Out-of-order segments are impossible on the lossless testnet;
        // they would be dropped (and retransmitted) on a real one.
    }

    /// Queues application data for transmission, accepting at most the
    /// free send-buffer space — a partial write, like non-blocking
    /// `send(2)`. Returns the bytes accepted; `EAGAIN` when the buffer
    /// is full (tx window closed and backlog at capacity).
    pub fn app_send(&mut self, data: &[u8]) -> Result<usize> {
        match self.state {
            TcpState::Established | TcpState::CloseWait | TcpState::SynReceived => {
                let space = SND_BUF_CAP - self.send_buf.len().min(SND_BUF_CAP);
                if space == 0 {
                    return Err(Errno::Again);
                }
                let n = data.len().min(space);
                self.send_buf.extend(&data[..n]);
                Ok(n)
            }
            _ => Err(Errno::NotConn),
        }
    }

    /// Reads up to `max` bytes the peer sent. Draining a buffer that had
    /// advertised a zero window emits a window-update ACK so the peer's
    /// transmission can resume.
    pub fn app_recv(&mut self, max: usize) -> Vec<u8> {
        let mut data = vec![0u8; max.min(self.recv_buf.len())];
        let n = self.app_recv_into(&mut data);
        data.truncate(n);
        data
    }

    /// Copies up to `out.len()` received bytes into `out` (the
    /// allocation-free receive path), returning the count. Same
    /// window-update semantics as [`app_recv`](Self::app_recv).
    pub fn app_recv_into(&mut self, out: &mut [u8]) -> usize {
        let n = out.len().min(self.recv_buf.len());
        let (a, b) = ring_front(&self.recv_buf, n);
        out[..a.len()].copy_from_slice(a);
        out[a.len()..n].copy_from_slice(b);
        self.recv_buf.drain(..n);
        if n > 0 && self.last_adv_wnd == 0 && self.state != TcpState::Closed {
            self.emit(TcpFlags {
                ack: true,
                ..Default::default()
            });
        }
        n
    }

    /// Bytes available to read.
    pub fn readable(&self) -> usize {
        self.recv_buf.len()
    }

    /// Monotonic count of bytes ever received (readiness progress).
    pub fn rx_total(&self) -> u64 {
        self.rx_total
    }

    /// Whether the peer has closed and all data was read.
    pub fn peer_closed(&self) -> bool {
        self.peer_fin && self.recv_buf.is_empty()
    }

    /// Whether the peer's FIN has arrived (data may remain buffered) —
    /// the `EPOLLRDHUP` condition.
    pub fn peer_fin_seen(&self) -> bool {
        self.peer_fin
    }

    /// Starts an orderly close once the send buffer drains.
    pub fn app_close(&mut self) {
        self.closing = true;
    }

    /// Bytes sent but not yet acknowledged.
    pub fn bytes_in_flight(&self) -> u32 {
        self.snd_nxt.wrapping_sub(self.snd_una)
    }

    /// Whether the peer's advertised window admits no more data.
    pub fn window_closed(&self) -> bool {
        self.bytes_in_flight() >= self.snd_wnd
    }

    /// Free space in the send buffer (0 when not in a sendable state).
    pub fn send_capacity(&self) -> usize {
        match self.state {
            TcpState::Established | TcpState::CloseWait | TcpState::SynReceived => {
                SND_BUF_CAP - self.send_buf.len().min(SND_BUF_CAP)
            }
            _ => 0,
        }
    }

    /// Streams pending transmission through `emit`: queued control
    /// segments first, then segmentation of queued data (MSS chunks,
    /// capped by the peer's receive window, PSH on the last), then FIN
    /// once the queue drains.
    ///
    /// `emit` receives the header plus the payload as *two* borrowed
    /// slices (the send buffer is a ring, so a chunk may wrap); the
    /// caller copies them straight into a pooled netbuf behind the
    /// headroom — no intermediate `Vec` per segment, which is what
    /// makes steady-state TX allocation-free.
    pub fn poll_output_with<F: FnMut(TcpHeader, &[u8], &[u8])>(&mut self, mut emit: F) {
        while let Some(h) = self.out.pop_front() {
            emit(h, &[], &[]);
        }
        if matches!(self.state, TcpState::Established | TcpState::CloseWait) {
            while !self.send_buf.is_empty() {
                let in_flight = self.bytes_in_flight();
                let window_room = self.snd_wnd.saturating_sub(in_flight) as usize;
                if window_room == 0 {
                    break; // Tx window closed; data stays queued.
                }
                let n = self.send_buf.len().min(MSS).min(window_room);
                let last = n == self.send_buf.len();
                let header = self.make_header(TcpFlags {
                    ack: true,
                    psh: last,
                    ..Default::default()
                });
                let (a, b) = ring_front(&self.send_buf, n);
                emit(header, a, b);
                self.send_buf.drain(..n);
                self.snd_nxt = self.snd_nxt.wrapping_add(n as u32);
            }
            if self.closing && self.send_buf.is_empty() {
                let header = self.make_header(TcpFlags {
                    fin: true,
                    ack: true,
                    ..Default::default()
                });
                emit(header, &[], &[]);
                self.snd_nxt = self.snd_nxt.wrapping_add(1);
                self.state = if self.state == TcpState::CloseWait {
                    TcpState::LastAck
                } else {
                    TcpState::FinWait
                };
                self.closing = false;
            }
        }
    }

    /// Owned-segment convenience over
    /// [`poll_output_with`](Self::poll_output_with) (tests,
    /// diagnostics): each segment's payload is collected into a `Vec`.
    pub fn poll_output(&mut self) -> Vec<OutSegment> {
        let mut segs = Vec::new();
        self.poll_output_with(|header, a, b| {
            let mut payload = Vec::with_capacity(a.len() + b.len());
            payload.extend_from_slice(a);
            payload.extend_from_slice(b);
            segs.push(OutSegment { header, payload });
        });
        segs
    }

    /// The local port.
    pub fn local_port(&self) -> u16 {
        self.local_port
    }

    /// The remote port (0 while listening).
    pub fn remote_port(&self) -> u16 {
        self.remote_port
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipv4::IpProto;
    use crate::Ipv4Addr;

    fn ip(len: usize) -> Ipv4Header {
        Ipv4Header {
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::new(10, 0, 0, 2),
            proto: IpProto::Tcp,
            payload_len: len,
            ttl: 64,
        }
    }

    #[test]
    fn header_roundtrip() {
        let h = TcpHeader {
            src_port: 4000,
            dst_port: 80,
            seq: 12345,
            ack: 67890,
            flags: TcpFlags {
                syn: true,
                ack: true,
                ..Default::default()
            },
            window: 65535,
        };
        let seg = h.encode(&ip(TCP_HDR_LEN + 3), b"abc");
        let (h2, p) = TcpHeader::decode(&ip(TCP_HDR_LEN + 3), &seg).unwrap();
        assert_eq!(h, h2);
        assert_eq!(p, b"abc");
    }

    /// Drives two TCBs against each other until no segments remain.
    fn pump(a: &mut Tcb, b: &mut Tcb) {
        for _ in 0..32 {
            let from_a = a.poll_output();
            let from_b = b.poll_output();
            if from_a.is_empty() && from_b.is_empty() {
                break;
            }
            for s in from_a {
                b.on_segment(&s.header, &s.payload);
            }
            for s in from_b {
                a.on_segment(&s.header, &s.payload);
            }
        }
    }

    #[test]
    fn three_way_handshake() {
        let mut server = Tcb::listen(80);
        let mut client = Tcb::connect(4000, 80, 1000);
        pump(&mut client, &mut server);
        assert_eq!(client.state, TcpState::Established);
        assert_eq!(server.state, TcpState::Established);
        assert_eq!(server.remote_port(), 4000);
    }

    #[test]
    fn data_transfer_both_directions() {
        let mut server = Tcb::listen(80);
        let mut client = Tcb::connect(4000, 80, 1);
        pump(&mut client, &mut server);
        client.app_send(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        pump(&mut client, &mut server);
        assert_eq!(server.app_recv(1024), b"GET / HTTP/1.1\r\n\r\n");
        server.app_send(b"HTTP/1.1 200 OK\r\n\r\n").unwrap();
        pump(&mut client, &mut server);
        assert_eq!(client.app_recv(1024), b"HTTP/1.1 200 OK\r\n\r\n");
    }

    #[test]
    fn large_payload_is_segmented_by_mss() {
        let mut server = Tcb::listen(80);
        let mut client = Tcb::connect(4000, 80, 1);
        pump(&mut client, &mut server);
        let big = vec![0x5a; MSS * 3 + 100];
        client.app_send(&big).unwrap();
        let segs = client.poll_output();
        let data_segs: Vec<_> = segs.iter().filter(|s| !s.payload.is_empty()).collect();
        assert_eq!(data_segs.len(), 4);
        assert!(data_segs[..3].iter().all(|s| s.payload.len() == MSS));
        assert!(data_segs[3].header.flags.psh);
        for s in segs {
            server.on_segment(&s.header, &s.payload);
        }
        assert_eq!(server.readable(), big.len());
        assert_eq!(server.app_recv(usize::MAX), big);
    }

    #[test]
    fn orderly_close_four_way() {
        let mut server = Tcb::listen(80);
        let mut client = Tcb::connect(4000, 80, 1);
        pump(&mut client, &mut server);
        client.app_close();
        pump(&mut client, &mut server);
        assert_eq!(server.state, TcpState::CloseWait);
        assert!(server.peer_closed());
        server.app_close();
        pump(&mut client, &mut server);
        assert_eq!(server.state, TcpState::Closed);
        assert_eq!(client.state, TcpState::Closed);
    }

    #[test]
    fn send_before_established_fails() {
        let mut c = Tcb::connect(1, 2, 0);
        assert_eq!(c.app_send(b"x").unwrap_err(), Errno::NotConn);
    }

    #[test]
    fn app_send_is_partial_against_buffer_cap() {
        let mut server = Tcb::listen(80);
        let mut client = Tcb::connect(4000, 80, 1);
        pump(&mut client, &mut server);
        let big = vec![0x7fu8; SND_BUF_CAP + 10_000];
        let accepted = client.app_send(&big).unwrap();
        assert_eq!(accepted, SND_BUF_CAP, "partial write at the cap");
        assert_eq!(client.send_capacity(), 0);
        assert_eq!(client.app_send(b"more").unwrap_err(), Errno::Again);
    }

    #[test]
    fn window_closes_then_reopens_on_drain() {
        let mut server = Tcb::listen(80);
        let mut client = Tcb::connect(4000, 80, 1);
        pump(&mut client, &mut server);
        // More than one full receive window, queued at once.
        let big: Vec<u8> = (0..RCV_BUF_CAP + 1)
            .map(|i| (i % 251) as u8)
            .collect();
        let accepted = client.app_send(&big).unwrap();
        assert_eq!(accepted, big.len(), "fits the send buffer");
        pump(&mut client, &mut server);
        // The receiver's window admitted exactly one window's worth; the
        // tail stays queued and the tx window is reported closed.
        assert_eq!(server.readable(), RCV_BUF_CAP);
        assert!(client.window_closed(), "zero window reached");
        // Draining the receiver emits a window update that releases the
        // remaining byte — nothing was dropped.
        let first = server.app_recv(usize::MAX);
        pump(&mut client, &mut server);
        let rest = server.app_recv(usize::MAX);
        assert!(!client.window_closed());
        let mut all = first;
        all.extend_from_slice(&rest);
        assert_eq!(all, big, "stream intact across the closed-window stretch");
    }

    #[test]
    fn fin_waits_for_window_limited_data() {
        let mut server = Tcb::listen(80);
        let mut client = Tcb::connect(4000, 80, 1);
        pump(&mut client, &mut server);
        let big = vec![1u8; RCV_BUF_CAP + 5];
        client.app_send(&big).unwrap();
        client.app_close();
        pump(&mut client, &mut server);
        // FIN must not overtake the queued tail.
        assert!(!server.peer_fin_seen(), "FIN held back behind data");
        server.app_recv(usize::MAX);
        pump(&mut client, &mut server);
        server.app_recv(usize::MAX);
        pump(&mut client, &mut server);
        assert!(server.peer_fin_seen(), "FIN delivered after drain");
    }

    #[test]
    fn rst_kills_connection() {
        let mut server = Tcb::listen(80);
        let mut client = Tcb::connect(4000, 80, 1);
        pump(&mut client, &mut server);
        let rst = TcpHeader {
            src_port: 80,
            dst_port: 4000,
            seq: 0,
            ack: 0,
            flags: TcpFlags {
                rst: true,
                ..Default::default()
            },
            window: 0,
        };
        client.on_segment(&rst, &[]);
        assert_eq!(client.state, TcpState::Closed);
    }
}
