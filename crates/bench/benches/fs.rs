//! Criterion benches for the filesystem paths (Figures 20, 22).

use criterion::{criterion_group, criterion_main, Criterion};
use ukplat::time::Tsc;
use ukvfs::ninep::{NinePClient, NinePHost, VirtioP9Transport};
use ukvfs::vfscore::FileSystem;
use ukvfs::{RamFs, Shfs, Vfs};

fn bench_open_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("open_latency");

    let mut shfs = Shfs::new();
    for i in 0..100 {
        shfs.insert(&format!("f{i}"), vec![0; 612]);
    }
    g.bench_function("shfs_hash_open", |b| {
        let mut i = 0u32;
        b.iter(|| {
            let name = format!("f{}", i % 100);
            i += 1;
            std::hint::black_box(shfs.open(&name).unwrap());
        });
    });

    let mut ramfs = RamFs::new();
    for i in 0..100 {
        ramfs.add_file(&format!("d/f{i}"), &[0; 612]).unwrap();
    }
    let mut vfs = Vfs::new();
    vfs.mount("/", Box::new(ramfs)).unwrap();
    g.bench_function("vfscore_open_close", |b| {
        let mut i = 0u32;
        b.iter(|| {
            let path = format!("/d/f{}", i % 100);
            i += 1;
            let fd = vfs.open(&path).unwrap();
            vfs.close(fd).unwrap();
        });
    });
    g.finish();
}

fn bench_9pfs_read(c: &mut Criterion) {
    let mut g = c.benchmark_group("ninep_read");
    for kb in [4usize, 64] {
        g.bench_function(format!("{kb}K"), |b| {
            let tsc = Tsc::new(ukplat::cost::CPU_FREQ_HZ);
            let mut host = RamFs::new();
            host.add_file("data", &vec![0u8; 128 * 1024]).unwrap();
            let mut client =
                NinePClient::new(VirtioP9Transport::kvm(NinePHost::new(host), &tsc));
            let (ino, _) = client.lookup("data").unwrap();
            b.iter(|| std::hint::black_box(client.read(ino, 0, kb * 1024).unwrap()));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_open_paths, bench_9pfs_read);
criterion_main!(benches);
