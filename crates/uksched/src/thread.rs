//! Step-based threads.

use std::fmt;

/// Thread identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(pub u64);

/// What a thread's step function reports back to the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepResult {
    /// More work immediately available; a cooperative scheduler keeps the
    /// thread running, a preemptive one may interrupt it.
    Continue,
    /// Thread voluntarily yields the CPU.
    Yield,
    /// Thread blocks until [`Scheduler::wake`](crate::Scheduler::wake).
    Block,
    /// Thread sleeps for the given virtual nanoseconds.
    Sleep(u64),
    /// Thread is done.
    Exit,
}

/// Lifecycle state of a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// In the run queue.
    Ready,
    /// Currently executing.
    Running,
    /// Waiting for a wake.
    Blocked,
    /// Sleeping until the given virtual time (ns).
    Sleeping(u64),
    /// Finished.
    Exited,
}

/// A green thread: a name, a step function, bookkeeping.
pub struct Thread {
    pub(crate) name: String,
    pub(crate) step: Box<dyn FnMut() -> StepResult>,
    pub(crate) state: ThreadState,
    pub(crate) steps_run: u64,
}

impl fmt::Debug for Thread {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Thread")
            .field("name", &self.name)
            .field("state", &self.state)
            .field("steps_run", &self.steps_run)
            .finish()
    }
}

impl Thread {
    /// Creates a thread from a step function.
    pub fn new(name: impl Into<String>, step: impl FnMut() -> StepResult + 'static) -> Self {
        Thread {
            name: name.into(),
            step: Box::new(step),
            state: ThreadState::Ready,
            steps_run: 0,
        }
    }

    /// A thread that runs `n` steps then exits, yielding between steps.
    pub fn count_steps(name: impl Into<String>, n: u64) -> Self {
        let mut left = n;
        Thread::new(name, move || {
            if left == 0 {
                StepResult::Exit
            } else {
                left -= 1;
                StepResult::Yield
            }
        })
    }

    /// Thread name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current state.
    pub fn state(&self) -> ThreadState {
        self.state
    }

    /// Steps executed so far.
    pub fn steps_run(&self) -> u64 {
        self.steps_run
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_steps_thread_exits_after_n() {
        let mut t = Thread::count_steps("t", 2);
        assert_eq!((t.step)(), StepResult::Yield);
        assert_eq!((t.step)(), StepResult::Yield);
        assert_eq!((t.step)(), StepResult::Exit);
    }

    #[test]
    fn new_threads_are_ready() {
        let t = Thread::new("x", || StepResult::Exit);
        assert_eq!(t.state(), ThreadState::Ready);
        assert_eq!(t.name(), "x");
    }
}
