//! The zero-allocation guard for the pooled datapath.
//!
//! This binary installs [`ukalloc::stats::CountingAlloc`] as its global
//! allocator, so every heap allocation the process performs is counted.
//! After warm-up (scratch vectors sized, ARP resolved, ring buffers and
//! socket queues at steady capacity), a full TCP echo round-trip and a
//! full UDP request/response round-trip through the in-process wire
//! must perform **exactly zero** heap allocations: payloads are written
//! once into pooled netbufs, headers are prepended in the headroom, the
//! wire hands buffers between pools, and readers copy into caller-owned
//! storage via the `*_recv_into` paths.

use std::sync::{Mutex, MutexGuard};

use ukalloc::stats::{AllocCounter, CountingAlloc};
use uknetdev::backend::VhostKind;
use uknetdev::dev::{NetDev, NetDevConf};
use uknetdev::VirtioNet;
use uknetstack::stack::{NetStack, StackConfig};
use uknetstack::testnet::Network;
use uknetstack::{Endpoint, Ipv4Addr};
use ukplat::time::Tsc;

#[global_allocator]
static COUNTING: CountingAlloc = CountingAlloc;

/// The allocation counters are process-global and libtest runs the
/// tests in this binary on parallel threads, so each test holds this
/// lock for its whole body — otherwise a sibling test's setup
/// allocations would land inside another test's measured window.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn mk_stack(n: u8) -> NetStack {
    let tsc = Tsc::new(3_600_000_000);
    let mut dev = VirtioNet::new(VhostKind::VhostUser, &tsc);
    dev.configure(NetDevConf::default()).unwrap();
    NetStack::new(StackConfig::node(n), Box::new(dev))
}

#[test]
fn tcp_echo_round_trip_is_allocation_free_in_steady_state() {
    let _guard = serial();
    let mut net = Network::new();
    let ci = net.attach(mk_stack(1));
    let si = net.attach(mk_stack(2));
    // Arm the loss-recovery machinery: with a clock installed every
    // pump runs the RTO scan and every data frame is filed into the
    // retransmission queue on recycle. The wire is lossless, so no
    // timer ever fires — but the whole armed path must still stay
    // allocation-free. 1 µs steps keep virtual time far below the
    // 200 ms RTO floor.
    let clock = Tsc::new(1_000_000_000);
    net.set_clock(&clock);
    net.set_step_ns(1_000);
    let listener = net.stack(si).tcp_listen(7).unwrap();
    let client = net
        .stack(ci)
        .tcp_connect(Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 7))
        .unwrap();
    net.run_until_quiet(32);
    let server = net.stack(si).tcp_accept(listener).unwrap();

    let request = [0x42u8; 512];
    let mut buf = [0u8; 2048];

    let mut echo_round_trip = |net: &mut Network| {
        assert_eq!(net.stack(ci).tcp_send(client, &request).unwrap(), 512);
        net.run_until_quiet(32);
        let n = net.stack(si).tcp_recv_into(server, &mut buf).unwrap();
        assert_eq!(&buf[..n], &request[..]);
        assert_eq!(net.stack(si).tcp_send(server, &buf[..n]).unwrap(), n);
        net.run_until_quiet(32);
        let m = net.stack(ci).tcp_recv_into(client, &mut buf).unwrap();
        assert_eq!(&buf[..m], &request[..]);
    };

    // Warm up: scratch vectors, ring done-lists, recv/send rings and
    // HashMap capacities all reach their steady-state sizes.
    for _ in 0..4 {
        echo_round_trip(&mut net);
    }

    // Stats and tracing are ON in this build (default features): the
    // round-trip below must advance counters and write trace records
    // while STILL performing zero heap allocations — that is the whole
    // "observability without perturbing the hot path" contract.
    // Snapshotting and draining allocate, so both stay outside the
    // measured window.
    let base = ukstats::snapshot();
    net.stack(si).trace_events();

    let counter = AllocCounter::start();
    echo_round_trip(&mut net);
    assert_eq!(
        counter.allocs(),
        0,
        "steady-state TCP echo round-trip must not touch the heap \
         (with stats + tracing enabled)"
    );

    if ukstats::COMPILED_IN {
        let snap = ukstats::snapshot();
        let delta = |name: &str| {
            snap.counter(name).unwrap_or(0) - base.counter(name).unwrap_or(0)
        };
        assert!(delta("netstack.rx_frames") > 0, "counters advanced in the window");
        assert!(delta("netstack.demux_tcp") > 0, "TCP demux was counted");
        assert!(delta("netstack.pump_sweeps") > 0, "pump sweeps were counted");
    }
    if uktrace::COMPILED_IN {
        assert!(
            !net.stack(si).trace_ring().is_empty(),
            "the round-trip wrote trace records"
        );
    }
}

#[test]
fn udp_round_trip_is_allocation_free_in_steady_state() {
    let _guard = serial();
    let mut net = Network::new();
    let ci = net.attach(mk_stack(1));
    let si = net.attach(mk_stack(2));
    let server_sock = net.stack(si).udp_bind(9).unwrap();
    let client_sock = net.stack(ci).udp_bind(5000).unwrap();
    let server_ep = Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 9);

    let payload = [0x5au8; 256];
    let mut buf = [0u8; 2048];

    let mut round_trip = |net: &mut Network| {
        net.stack(ci)
            .udp_send_to(client_sock, &payload, server_ep)
            .unwrap();
        net.run_until_quiet(16);
        let (from, n) = net
            .stack(si)
            .udp_recv_into(server_sock, &mut buf)
            .unwrap();
        assert_eq!(&buf[..n], &payload[..]);
        net.stack(si)
            .udp_send_to(server_sock, &buf[..n], from)
            .unwrap();
        net.run_until_quiet(16);
        let (_, m) = net
            .stack(ci)
            .udp_recv_into(client_sock, &mut buf)
            .unwrap();
        assert_eq!(&buf[..m], &payload[..]);
    };

    for _ in 0..4 {
        round_trip(&mut net);
    }

    let counter = AllocCounter::start();
    round_trip(&mut net);
    assert_eq!(
        counter.allocs(),
        0,
        "steady-state UDP round-trip must not touch the heap"
    );
}

#[test]
fn tcp_echo_burst_of_32_is_allocation_free_in_steady_state() {
    let _guard = serial();
    let mut net = Network::new();
    let ci = net.attach(mk_stack(1));
    let si = net.attach(mk_stack(2));
    let listener = net.stack(si).tcp_listen(7).unwrap();
    let client = net
        .stack(ci)
        .tcp_connect(Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 7))
        .unwrap();
    net.run_until_quiet(32);
    let server = net.stack(si).tcp_accept(listener).unwrap();

    let request = [0x42u8; 512];
    let mut buf = [0u8; 2048];

    // 32 echoes per turn through the burst path: requests queue on the
    // connection (`tcp_send_queued`), one `flush_output` emits them as
    // MSS-sized segments in one staged tx burst, and the wire moves
    // each hop's frames with one `deliver_burst` per step.
    let mut echo_burst = |net: &mut Network| {
        for _ in 0..32 {
            assert_eq!(net.stack(ci).tcp_send_queued(client, &request).unwrap(), 512);
        }
        net.stack(ci).flush_output().unwrap();
        net.run_until_quiet(64);
        let mut echoed = 0;
        loop {
            let n = net.stack(si).tcp_recv_into(server, &mut buf).unwrap();
            if n == 0 {
                break;
            }
            assert_eq!(net.stack(si).tcp_send_queued(server, &buf[..n]).unwrap(), n);
            echoed += n;
        }
        assert_eq!(echoed, 32 * 512, "whole burst arrived at the server");
        net.stack(si).flush_output().unwrap();
        net.run_until_quiet(64);
        let mut got = 0;
        loop {
            let n = net.stack(ci).tcp_recv_into(client, &mut buf).unwrap();
            if n == 0 {
                break;
            }
            got += n;
        }
        assert_eq!(got, 32 * 512, "whole burst echoed back");
    };

    for _ in 0..4 {
        echo_burst(&mut net);
    }

    let counter = AllocCounter::start();
    echo_burst(&mut net);
    assert_eq!(
        counter.allocs(),
        0,
        "steady-state burst of 32 TCP echoes must not touch the heap"
    );
}

#[test]
fn udp_burst_of_32_datagrams_is_allocation_free_in_steady_state() {
    let _guard = serial();
    let mut net = Network::new();
    let ci = net.attach(mk_stack(1));
    let si = net.attach(mk_stack(2));
    let server_sock = net.stack(si).udp_bind(9).unwrap();
    let client_sock = net.stack(ci).udp_bind(5000).unwrap();
    let server_ep = Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 9);

    let payload = [0x5au8; 256];
    let payloads = [payload; 32];
    let mut rx_buf = vec![0u8; 32 * 2048];
    let mut msgs: Vec<(Endpoint, usize)> = Vec::with_capacity(32);

    // Resolve ARP first: an unresolved next-hop would park the first
    // burst and the droppable-packet cap would evict half of it.
    net.stack(ci)
        .udp_send_to(client_sock, b"warm", server_ep)
        .unwrap();
    net.run_until_quiet(16);
    let mut warm = [0u8; 64];
    net.stack(si)
        .udp_recv_into(server_sock, &mut warm)
        .unwrap();
    net.stack(si)
        .udp_send_to(server_sock, b"warm", Endpoint::new(Ipv4Addr::new(10, 0, 0, 1), 5000))
        .unwrap();
    net.run_until_quiet(16);
    net.stack(ci)
        .udp_recv_into(client_sock, &mut warm)
        .unwrap();

    // 32 datagrams per turn: one sendmmsg-style burst out, one
    // recvmmsg-style drain into a flat buffer, one burst of replies
    // sliced straight out of that buffer, one burst drain back.
    let round_trip = |net: &mut Network, msgs: &mut Vec<(Endpoint, usize)>,
                      rx_buf: &mut Vec<u8>| {
        let sent = net
            .stack(ci)
            .udp_send_burst(client_sock, payloads.iter().map(|p| (&p[..], server_ep)))
            .unwrap();
        assert_eq!(sent, 32);
        net.run_until_quiet(16);
        msgs.clear();
        let n = net
            .stack(si)
            .udp_recv_burst_into(server_sock, rx_buf, msgs, 32);
        assert_eq!(n, 32, "whole batch received in one call");
        let mut off = 0;
        let replies = msgs.iter().map(|&(from, len)| {
            let s = &rx_buf[off..off + len];
            off += len;
            (s, from)
        });
        assert_eq!(net.stack(si).udp_send_burst(server_sock, replies).unwrap(), 32);
        net.run_until_quiet(16);
        msgs.clear();
        let m = net
            .stack(ci)
            .udp_recv_burst_into(client_sock, rx_buf, msgs, 32);
        assert_eq!(m, 32, "all replies received in one call");
    };

    for _ in 0..4 {
        round_trip(&mut net, &mut msgs, &mut rx_buf);
    }

    let counter = AllocCounter::start();
    round_trip(&mut net, &mut msgs, &mut rx_buf);
    assert_eq!(
        counter.allocs(),
        0,
        "steady-state burst of 32 UDP datagrams must not touch the heap"
    );
}

#[test]
fn bulk_1mb_tso_transfer_is_allocation_free_in_steady_state() {
    let _guard = serial();
    let mut net = Network::new();
    let ci = net.attach(mk_stack(1));
    let si = net.attach(mk_stack(2));
    // Same arming as the echo guard: clock installed, RTO scan live,
    // every data frame filed for retransmission on recycle — and the
    // lossless bulk path still must not allocate.
    let clock = Tsc::new(1_000_000_000);
    net.set_clock(&clock);
    net.set_step_ns(1_000);
    assert!(net.stack(ci).tso(), "bulk path runs over TSO super-segments");
    let listener = net.stack(si).tcp_listen(9000).unwrap();
    let client = net
        .stack(ci)
        .tcp_connect(Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 9000))
        .unwrap();
    net.run_until_quiet(32);
    let server = net.stack(si).tcp_accept(listener).unwrap();

    const TOTAL: usize = 1024 * 1024;
    let chunk = [0x6bu8; 64 * 1024];
    let mut buf = vec![0u8; 64 * 1024];

    // One bulk transfer: the client streams 1 MB through the send
    // buffer (GSO super-segment chains on the wire), the server
    // drains as it arrives, keeping the window open.
    let transfer = |net: &mut Network, buf: &mut Vec<u8>| {
        let mut sent = 0;
        let mut got = 0;
        while got < TOTAL {
            if sent < TOTAL {
                let want = chunk.len().min(TOTAL - sent);
                let n = net
                    .stack(ci)
                    .tcp_send_queued(client, &chunk[..want])
                    .unwrap_or(0);
                sent += n;
                net.stack(ci).flush_output().unwrap();
            }
            net.step();
            loop {
                let n = net.stack(si).tcp_recv_into(server, buf).unwrap();
                if n == 0 {
                    break;
                }
                got += n;
            }
        }
        assert_eq!(got, TOTAL, "whole megabyte arrived");
    };

    for _ in 0..2 {
        transfer(&mut net, &mut buf);
    }

    let frames_before =
        net.stack(ci).stats().tx_frames + net.stack(si).stats().tx_frames;
    // As in the echo guard: stats + tracing are enabled and must ride
    // along allocation-free (snapshot/drain allocate, so outside).
    let base = ukstats::snapshot();
    net.stack(ci).trace_events();
    let counter = AllocCounter::start();
    transfer(&mut net, &mut buf);
    let allocs = counter.allocs();
    let frames =
        net.stack(ci).stats().tx_frames + net.stack(si).stats().tx_frames - frames_before;
    assert!(frames > 0);
    assert_eq!(
        allocs, 0,
        "steady-state 1 MB pooled transfer must not touch the heap \
         ({allocs} allocs over {frames} frames, stats + tracing enabled)"
    );
    // And it really rode the fast path: super-segments, not per-MSS.
    assert!(net.stack(ci).stats().tso_super_frames > 0);
    if ukstats::COMPILED_IN {
        let snap = ukstats::snapshot();
        let delta = |name: &str| {
            snap.counter(name).unwrap_or(0) - base.counter(name).unwrap_or(0)
        };
        assert!(delta("netstack.tso_super_frames") > 0, "registry saw the supers");
        assert!(delta("netstack.tx_bytes") >= TOTAL as u64, "bytes were counted");
        let hist = snap.hist("netstack.pump_ns").expect("pump histogram");
        let base_hist = base.hist("netstack.pump_ns").expect("pump histogram");
        assert!(hist.count > base_hist.count, "pump latency was recorded");
    }
    if uktrace::COMPILED_IN {
        assert!(
            !net.stack(ci).trace_ring().is_empty(),
            "the transfer wrote trace records (tso_super_tx et al.)"
        );
    }
}

/// The receive-side guard: a 1 MB transfer from a **per-MSS sender**
/// (TSO off — every wire frame is an MSS segment, the workload GRO
/// exists for) drained through the zero-copy netbuf receive path must
/// be allocation-free: frames coalesce in the reused GRO stage, the
/// payload buffers move from the demux into the connection's receive
/// queue and out to the application, and recycling returns each to
/// the pool. Not one byte of payload is copied on the receive side
/// and not one heap allocation happens anywhere.
#[test]
fn recv_1mb_gro_netbuf_path_is_allocation_free_in_steady_state() {
    let _guard = serial();
    let mut net = Network::new();
    let tsc = Tsc::new(3_600_000_000);
    let mut dev = VirtioNet::new(VhostKind::VhostUser, &tsc);
    dev.configure(NetDevConf::default()).unwrap();
    let mut cfg = StackConfig::node(1);
    cfg.tso = false; // Per-MSS frames on the wire.
    let ci = net.attach(NetStack::new(cfg, Box::new(dev)));
    let si = net.attach(mk_stack(2));
    assert!(net.stack(si).gro(), "receive path runs over GRO");
    let listener = net.stack(si).tcp_listen(9100).unwrap();
    let client = net
        .stack(ci)
        .tcp_connect(Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 9100))
        .unwrap();
    net.run_until_quiet(32);
    let server = net.stack(si).tcp_accept(listener).unwrap();

    const TOTAL: usize = 1024 * 1024;
    let chunk = [0x2eu8; 64 * 1024];
    let mut bufs: Vec<uknetdev::netbuf::Netbuf> = Vec::with_capacity(64);

    // One bulk transfer, drained entirely through tcp_recv_burst_netbuf
    // with every buffer recycled to the receiver's pool.
    let transfer = |net: &mut Network, bufs: &mut Vec<uknetdev::netbuf::Netbuf>| {
        let mut sent = 0;
        let mut got = 0;
        while got < TOTAL {
            if sent < TOTAL {
                let want = chunk.len().min(TOTAL - sent);
                let n = net
                    .stack(ci)
                    .tcp_send_queued(client, &chunk[..want])
                    .unwrap_or(0);
                sent += n;
                net.stack(ci).flush_output().unwrap();
            }
            net.step();
            loop {
                let n = net.stack(si).tcp_recv_burst_netbuf(server, bufs, 64);
                if n == 0 {
                    break;
                }
                for nb in bufs.drain(..) {
                    got += nb.payload().len();
                    net.stack(si).recycle(nb);
                }
            }
        }
        assert_eq!(got, TOTAL, "whole megabyte received as netbufs");
    };

    for _ in 0..2 {
        transfer(&mut net, &mut bufs);
    }

    let frames_before = net.stack(si).stats().rx_frames;
    let counter = AllocCounter::start();
    transfer(&mut net, &mut bufs);
    let allocs = counter.allocs();
    let frames = net.stack(si).stats().rx_frames - frames_before;
    assert!(frames > 500, "per-MSS receive really happened ({frames} frames)");
    assert_eq!(
        allocs, 0,
        "steady-state 1 MB GRO + netbuf receive must not touch the heap \
         ({allocs} allocs over {frames} frames)"
    );
    // And it really rode the receive fast path: coalesced runs.
    assert!(net.stack(si).stats().gro_runs > 0, "GRO merged runs");
}

/// The pool-layer guard beneath all the round-trip guards above: raw
/// take/give-back circulation performs zero heap allocations. This
/// holds in the default (tier-1) build — proving the `netbuf-sanitizer`
/// feature compiles out to literally nothing the allocator can see —
/// and under `make verify-sanitize` too, where poisoning is a byte fill
/// into existing storage and provenance is `&'static Location`, so even
/// the sanitized pool never touches the heap while circulating.
#[test]
fn pool_circulation_is_allocation_free_in_both_feature_modes() {
    let _guard = serial();
    let mut pool = uknetdev::netbuf::NetbufPool::new(8, 2048, 64);
    let mut held = Vec::with_capacity(8);
    // Warm one cycle (nothing to size, but keep the shape uniform).
    for _ in 0..8 {
        held.push(pool.take().unwrap());
    }
    for nb in held.drain(..) {
        pool.give_back(nb);
    }

    let counter = AllocCounter::start();
    for _ in 0..32 {
        for _ in 0..8 {
            held.push(pool.take().unwrap());
        }
        for nb in held.drain(..) {
            pool.give_back(nb);
        }
    }
    assert_eq!(
        counter.allocs(),
        0,
        "pool circulation must not touch the heap (netbuf-sanitizer {})",
        if cfg!(feature = "netbuf-sanitizer") { "on" } else { "off" },
    );
    assert_eq!(pool.available(), 8, "every buffer came home");
}

#[test]
fn buffers_circulate_without_draining_the_pools() {
    let _guard = serial();
    let mut net = Network::new();
    let ci = net.attach(mk_stack(1));
    let si = net.attach(mk_stack(2));
    let server_sock = net.stack(si).udp_bind(9).unwrap();
    let client_sock = net.stack(ci).udp_bind(5000).unwrap();
    let server_ep = Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 9);
    let mut buf = [0u8; 2048];

    // Settle, then record pool levels.
    net.stack(ci)
        .udp_send_to(client_sock, b"warm", server_ep)
        .unwrap();
    net.run_until_quiet(16);
    net.stack(si).udp_recv_into(server_sock, &mut buf).unwrap();
    let ci_avail = net.stack(ci).pool_available().unwrap();
    let si_avail = net.stack(si).pool_available().unwrap();

    for _ in 0..100 {
        net.stack(ci)
            .udp_send_to(client_sock, b"ping", server_ep)
            .unwrap();
        net.run_until_quiet(16);
        net.stack(si).udp_recv_into(server_sock, &mut buf).unwrap();
    }
    assert_eq!(
        net.stack(ci).pool_available(),
        Some(ci_avail),
        "every TX buffer returned to the client pool"
    );
    assert_eq!(
        net.stack(si).pool_available(),
        Some(si_avail),
        "every RX buffer returned to the server pool"
    );
}
