//! Host-side backends and the wire model.
//!
//! The guest-side driver work (rings, netbufs) is real code; what happens
//! *after* the driver hands packets to the host cannot be physically
//! incurred here, so it is charged to the virtual TSC:
//!
//! - **vhost-net**: the kernel backend. Each notification ("kick") is a VM
//!   exit; each packet is copied out of guest memory and walked through
//!   the tap/bridge path. Batching amortizes the kick but not the copies.
//! - **vhost-user**: a DPDK-style userspace backend polling shared
//!   memory: no kicks, no copies, a small per-descriptor cost — "at the
//!   cost of polling in the host" (§6.2).
//!
//! A 10 Gbit/s wire model (the paper's X520 cards) caps throughput: per
//! burst we charge `max(cpu_ns, wire_ns)`, so small packets are CPU-bound
//! under vhost-net and wire-bound under vhost-user, reproducing the
//! crossover of Figure 19.

use ukplat::cost;
use ukplat::time::Tsc;

use crate::netbuf::Netbuf;

/// Which host backend services the virtio device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VhostKind {
    /// Kernel backend: kick per burst, copy per packet.
    VhostNet,
    /// Userspace polling backend: no kick, zero copy.
    VhostUser,
}

impl VhostKind {
    /// Display name used in Figure 19.
    pub fn name(self) -> &'static str {
        match self {
            VhostKind::VhostNet => "vhost-net",
            VhostKind::VhostUser => "vhost-user",
        }
    }
}

/// 10 GbE wire model.
#[derive(Debug, Clone, Copy)]
pub struct Wire {
    /// Line rate in bits per second.
    pub bps: u64,
    /// Per-frame overhead bytes (preamble 8 + IFG 12 + CRC 4).
    pub frame_overhead: usize,
}

impl Default for Wire {
    fn default() -> Self {
        Wire {
            bps: 10_000_000_000,
            frame_overhead: 24,
        }
    }
}

impl Wire {
    /// Nanoseconds a frame of `payload` bytes occupies the wire.
    pub fn frame_ns(&self, payload: usize) -> u64 {
        let bits = ((payload + self.frame_overhead) * 8) as u64;
        bits * 1_000_000_000 / self.bps
    }

    /// Theoretical maximum packets per second for a payload size.
    pub fn max_pps(&self, payload: usize) -> f64 {
        1e9 / self.frame_ns(payload) as f64
    }
}

/// The host side of a virtio-net device.
#[derive(Debug)]
pub struct HostBackend {
    kind: VhostKind,
    tsc: Tsc,
    wire: Wire,
    /// Packets that reached the wire.
    tx_packets: u64,
    /// Bytes that reached the wire.
    tx_bytes: u64,
    /// Kicks (VM exits) performed.
    kicks: u64,
}

impl HostBackend {
    /// Creates a backend of the given kind charging to `tsc`.
    pub fn new(kind: VhostKind, tsc: &Tsc) -> Self {
        HostBackend {
            kind,
            tsc: tsc.clone(),
            wire: Wire::default(),
            tx_packets: 0,
            tx_bytes: 0,
            kicks: 0,
        }
    }

    /// Replaces the wire model (tests use a slow wire).
    pub fn set_wire(&mut self, wire: Wire) {
        self.wire = wire;
    }

    /// Whether the guest must kick (trap) to notify this backend.
    pub fn needs_kick(&self) -> bool {
        matches!(self.kind, VhostKind::VhostNet)
    }

    /// Backend kind.
    pub fn kind(&self) -> VhostKind {
        self.kind
    }

    /// Processes a burst the guest queued: charges host CPU and wire time
    /// and counts the packets out. Returns the number processed.
    pub fn process_tx(&mut self, pkts: &[Netbuf]) -> usize {
        if pkts.is_empty() {
            return 0;
        }
        let mut cpu_cycles = 0u64;
        let mut wire_ns = 0u64;
        for p in pkts {
            // A GSO chain is one descriptor here but its full byte
            // count still crosses the host (and, cut into MSS frames,
            // the wire).
            let len = p.chain_len();
            match self.kind {
                VhostKind::VhostNet => {
                    cpu_cycles += cost::VHOST_NET_PKT_CYCLES + cost::copy_cost_cycles(len);
                }
                VhostKind::VhostUser => {
                    cpu_cycles += cost::VHOST_USER_PKT_CYCLES;
                }
            }
            wire_ns += self.wire.frame_ns(len);
            self.tx_packets += 1;
            self.tx_bytes += len as u64;
        }
        // The backend pipeline overlaps CPU work and wire time: the burst
        // costs whichever is longer.
        let cpu_ns = self.tsc.cycles_to_ns(cpu_cycles);
        self.tsc.advance_ns(cpu_ns.max(wire_ns));
        pkts.len()
    }

    /// Records a guest kick (VM exit).
    pub fn kick(&mut self) {
        self.kicks += 1;
        self.tsc.advance(cost::VMEXIT_CYCLES);
    }

    /// Packets transmitted to the wire so far.
    pub fn tx_packets(&self) -> u64 {
        self.tx_packets
    }

    /// Bytes transmitted so far.
    pub fn tx_bytes(&self) -> u64 {
        self.tx_bytes
    }

    /// Kick count.
    pub fn kicks(&self) -> u64 {
        self.kicks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tsc() -> Tsc {
        Tsc::new(cost::CPU_FREQ_HZ)
    }

    fn pkt(len: usize) -> Netbuf {
        let mut nb = Netbuf::alloc(2048, 0);
        nb.set_len(len);
        nb
    }

    #[test]
    fn wire_max_pps_matches_10g_small_frames() {
        let w = Wire::default();
        // 64B payload + 24B overhead = 88B → ~14.2 Mp/s, the paper's peak.
        let pps = w.max_pps(64);
        assert!((14_000_000.0..14_500_000.0).contains(&pps), "{pps}");
    }

    #[test]
    fn vhost_user_cheaper_than_vhost_net() {
        let t1 = tsc();
        let mut user = HostBackend::new(VhostKind::VhostUser, &t1);
        let t2 = tsc();
        let mut net = HostBackend::new(VhostKind::VhostNet, &t2);
        let pkts: Vec<_> = (0..32).map(|_| pkt(64)).collect();
        user.process_tx(&pkts);
        net.process_tx(&pkts);
        net.kick();
        assert!(t2.now_cycles() > t1.now_cycles());
    }

    #[test]
    fn only_vhost_net_needs_kicks() {
        let t = tsc();
        assert!(HostBackend::new(VhostKind::VhostNet, &t).needs_kick());
        assert!(!HostBackend::new(VhostKind::VhostUser, &t).needs_kick());
    }

    #[test]
    fn stats_accumulate() {
        let t = tsc();
        let mut b = HostBackend::new(VhostKind::VhostUser, &t);
        let pkts: Vec<_> = (0..10).map(|_| pkt(100)).collect();
        b.process_tx(&pkts);
        assert_eq!(b.tx_packets(), 10);
        assert_eq!(b.tx_bytes(), 1000);
    }

    #[test]
    fn large_packets_are_wire_bound_for_vhost_user() {
        let t = tsc();
        let mut b = HostBackend::new(VhostKind::VhostUser, &t);
        let pkts: Vec<_> = (0..10).map(|_| pkt(1500)).collect();
        let before = t.now_cycles();
        b.process_tx(&pkts);
        let ns = t.cycles_to_ns(t.now_cycles() - before);
        let wire_ns: u64 = (0..10).map(|_| Wire::default().frame_ns(1500)).sum();
        assert_eq!(ns, wire_ns, "wire time dominates CPU for 1500B frames");
    }
}
