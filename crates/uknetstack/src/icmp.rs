//! ICMP echo (ping): codec and reply logic.
//!
//! Rounds out the stack the way lwIP does: echo requests are answered
//! by the stack itself, and applications can issue pings to probe
//! reachability (useful when bringing up driver + wiring).

use uknetdev::netbuf::Netbuf;
use ukplat::{Errno, Result};

use crate::inet_checksum;

/// ICMP header length for echo messages.
pub const ICMP_ECHO_LEN: usize = 8;

/// An ICMP echo message (request or reply).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IcmpEcho {
    /// `true` for echo request (type 8), `false` for reply (type 0).
    pub request: bool,
    /// Identifier (like a process id).
    pub ident: u16,
    /// Sequence number.
    pub seq: u16,
    /// Payload carried back verbatim.
    pub payload: Vec<u8>,
}

impl IcmpEcho {
    /// Serializes with a correct ICMP checksum.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(ICMP_ECHO_LEN + self.payload.len());
        b.push(if self.request { 8 } else { 0 });
        b.push(0); // code
        b.extend_from_slice(&[0, 0]); // checksum placeholder
        b.extend_from_slice(&self.ident.to_be_bytes());
        b.extend_from_slice(&self.seq.to_be_bytes());
        b.extend_from_slice(&self.payload);
        let ck = inet_checksum(&b, 0);
        b[2..4].copy_from_slice(&ck.to_be_bytes());
        b
    }

    /// Prepends this message's header over its payload via the
    /// headroom path: appends the payload, then calls
    /// [`encode_echo_into`]. Byte-identical to [`encode`](Self::encode).
    pub fn encode_into(&self, nb: &mut Netbuf) {
        nb.append(&self.payload);
        encode_echo_into(self.request, self.ident, self.seq, nb);
    }

    /// Parses and checksum-verifies an echo message into an owned
    /// value (copies the payload; the stack's hot path uses the
    /// borrowing [`decode_echo`] instead).
    pub fn decode(data: &[u8]) -> Result<IcmpEcho> {
        let (request, ident, seq, payload) = decode_echo(data)?;
        Ok(IcmpEcho {
            request,
            ident,
            seq,
            payload: payload.to_vec(),
        })
    }

}

/// Parses and checksum-verifies an echo message without copying:
/// returns `(request, ident, seq, payload)` with the payload borrowed
/// from `data`.
pub fn decode_echo(data: &[u8]) -> Result<(bool, u16, u16, &[u8])> {
    if data.len() < ICMP_ECHO_LEN {
        return Err(Errno::Inval);
    }
    if inet_checksum(data, 0) != 0 {
        return Err(Errno::Io);
    }
    let request = match data[0] {
        8 => true,
        0 => false,
        _ => return Err(Errno::ProtoNoSupport),
    };
    Ok((
        request,
        u16::from_be_bytes([data[4], data[5]]),
        u16::from_be_bytes([data[6], data[7]]),
        &data[ICMP_ECHO_LEN..],
    ))
}

/// Prepends an 8-byte echo header (correct checksum) over the payload
/// already in `nb` — the zero-copy primitive behind both `ping` and
/// the stack's echo replies, which previously cloned the payload into
/// a fresh [`IcmpEcho`].
///
/// # Panics
///
/// Panics if `nb` has less than [`ICMP_ECHO_LEN`] bytes of headroom.
pub fn encode_echo_into(request: bool, ident: u16, seq: u16, nb: &mut Netbuf) {
    let hdr = nb.push_header_uninit(ICMP_ECHO_LEN);
    hdr[0] = if request { 8 } else { 0 };
    hdr[1] = 0; // code
    hdr[2..4].copy_from_slice(&[0, 0]); // checksum placeholder
    hdr[4..6].copy_from_slice(&ident.to_be_bytes());
    hdr[6..8].copy_from_slice(&seq.to_be_bytes());
    let ck = inet_checksum(nb.payload(), 0);
    nb.payload_mut()[2..4].copy_from_slice(&ck.to_be_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let e = IcmpEcho {
            request: true,
            ident: 0x1234,
            seq: 7,
            payload: b"ping-data".to_vec(),
        };
        assert_eq!(IcmpEcho::decode(&e.encode()).unwrap(), e);
    }

    #[test]
    fn corruption_detected() {
        let e = IcmpEcho {
            request: true,
            ident: 1,
            seq: 1,
            payload: vec![1, 2, 3, 4],
        };
        let mut b = e.encode();
        b[9] ^= 0xff;
        assert_eq!(IcmpEcho::decode(&b).unwrap_err(), Errno::Io);
    }

    #[test]
    fn in_place_reply_mirrors_request() {
        // The stack's reply path: echo the request payload into a
        // buffer and prepend a reply header in the headroom.
        let mut nb = Netbuf::alloc(256, ICMP_ECHO_LEN);
        nb.append(b"abc");
        encode_echo_into(false, 9, 3, &mut nb);
        let rep = IcmpEcho::decode(nb.payload()).unwrap();
        assert!(!rep.request);
        assert_eq!(rep.ident, 9);
        assert_eq!(rep.seq, 3);
        assert_eq!(rep.payload, b"abc");
    }

    #[test]
    fn encode_into_matches_encode() {
        let e = IcmpEcho {
            request: true,
            ident: 0x0102,
            seq: 42,
            payload: b"payload bytes".to_vec(),
        };
        let mut nb = Netbuf::alloc(256, ICMP_ECHO_LEN);
        e.encode_into(&mut nb);
        assert_eq!(nb.payload(), &e.encode()[..]);
    }
}
