//! The stack proper: interface, demux, sockets — zero-copy **burst**
//! datapath.
//!
//! A [`NetStack`] owns a `uk_netdev` device and implements the socket
//! path of the paper's architecture (scenario ➁) with the §3.1
//! buffer-ownership discipline end to end. Since the burst rework, the
//! unit of work at every layer boundary is *a burst of netbufs*, not a
//! single packet; the steady-state lifecycle of a buffer is:
//!
//! ```text
//! pool ─take──▶ payload write ─▶ headers prepended in place
//!      ─stage─▶ tx_burst (whole batch; checksum completed by the
//!      device when offloaded) ─▶ harvest_tx ─▶ wire DMA-copies onto
//!      the receiver's pooled RX buffers ─▶ deliver_burst (one
//!      inject_rx per burst) ─▶ pump: rx_burst ─▶ per-burst demux
//!      sweep ─▶ socket queues ─▶ *_recv_into ─▶ recycle ─▶ pool
//! ```
//!
//! - **TX** is one buffer from application to wire. Payload bytes are
//!   written once into a pooled [`Netbuf`] behind [`TX_HEADROOM`]
//!   bytes of headroom; TCP/UDP/ICMP, IPv4 and Ethernet each *prepend*
//!   their header in place (`encode_into`). When the device advertises
//!   `tx_csum_offload`, TCP/UDP headers are stamped with only the
//!   partial pseudo-header sum (`encode_into_partial`) and the device
//!   completes the checksum at `tx_burst` time. Senders *stage* frames
//!   ([`udp_send_burst`], [`tcp_send_queued`]) and the whole batch
//!   crosses in one `tx_burst` sweep ([`flush_output`]); completions
//!   are reclaimed by the wire harness as netbufs ([`harvest_tx`]) and
//!   recycled into the pool ([`recycle`]).
//! - **RX** walks the same buffers up the stack in bursts: the wire
//!   injects a whole burst with one [`deliver_burst`], [`pump`] drains
//!   `rx_burst` and demuxes every frame of the burst (next-hop MACs
//!   memoized per burst) before running the transport/readiness sweep
//!   *once per burst*. UDP payloads are queued on sockets *as netbufs*
//!   — no per-datagram `Vec`. Readers copy out in batches
//!   ([`udp_recv_burst_into`]) or singly
//!   ([`udp_recv_into`]/[`tcp_recv_into`]) and buffers return to the
//!   pool.
//!
//! - **Bulk transfers** ride the large-transfer fast path:
//!   [`tcp_send_queued`] writes application bytes once into pooled
//!   buffers on the connection's zero-copy send queue; a flush moves
//!   a window's worth of them out as one scatter-gather
//!   **super-segment** chain carrying a `GsoRequest` (TSO,
//!   `VIRTIO_NET_F_HOST_TSO4`), and a peer that negotiated big
//!   receive (`VIRTIO_NET_F_GUEST_TSO4`) gets the chain delivered
//!   whole — one demux, one ingest, one coalesced ACK for what would
//!   otherwise be ~40 per-MSS frames' worth of per-segment work.
//!   Peers without the features fall back transparently: the host
//!   side cuts MSS frames (`uknetdev::gso`), and with `tso` off the
//!   stack segments per-MSS in software (the ablation baseline).
//!
//! # The receive-side fast path
//!
//! Ingest mirrors the send side since the GRO/netbuf-recv rework:
//!
//! - **Zero-copy receive queue.** The demux *keeps* the RX buffer a
//!   TCP payload arrived in: headers are pulled in place and the
//!   buffer moves into the connection's receive queue. Readers copy
//!   out ([`tcp_recv_into`]) or — the zero-copy path — take the
//!   buffers whole ([`tcp_recv_netbuf`] / [`tcp_recv_burst_netbuf`],
//!   and [`udp_recv_netbuf`] for datagrams), consuming the payload in
//!   place and handing each buffer back via [`recycle`]. Between the
//!   wire's DMA copy and the application there is **no copy at all**.
//! - **GRO coalescing** (`StackConfig::gro`). Consecutive in-order
//!   data segments of one `rx_burst` to the same connection are
//!   staged and merged into a single multi-part ingest with one
//!   coalesced ACK — the receive-side mirror of GSO, aimed at
//!   per-MSS (non-TSO) senders. A segment continuing the staged
//!   run's flow at exactly the expected sequence number is matched
//!   **without any demux-table lookup** (the `gro_list` flow-compare
//!   idea); control segments flush the stage first, so nothing ever
//!   overtakes staged data. Merging is work-shaping only: the wire
//!   conversation is property-tested byte-identical with GRO on and
//!   off.
//! - **In-order-only ingest, never silent.** A segment that does not
//!   land exactly at `rcv_nxt` is dropped *and answered with an
//!   immediate duplicate ACK*; a FIN is processed only in sequence
//!   position. See `tcp.rs` for the invariant.
//!
//! In steady state the rx/tx hot path performs **zero heap
//! allocations per packet** — per-frame, per-burst *and* per
//! 1 MB bulk transfer in either direction, asserted by the
//! `zero_alloc` integration test; all scratch vectors live in the
//! stack and are reused across turns.
//!
//! [`harvest_tx`]: NetStack::harvest_tx
//! [`recycle`]: NetStack::recycle
//! [`udp_recv_into`]: NetStack::udp_recv_into
//! [`udp_recv_burst_into`]: NetStack::udp_recv_burst_into
//! [`udp_recv_netbuf`]: NetStack::udp_recv_netbuf
//! [`udp_send_burst`]: NetStack::udp_send_burst
//! [`tcp_recv_into`]: NetStack::tcp_recv_into
//! [`tcp_recv_netbuf`]: NetStack::tcp_recv_netbuf
//! [`tcp_recv_burst_netbuf`]: NetStack::tcp_recv_burst_netbuf
//! [`tcp_send_queued`]: NetStack::tcp_send_queued
//! [`flush_output`]: NetStack::flush_output
//! [`deliver_burst`]: NetStack::deliver_burst
//! [`pump`]: NetStack::pump

use std::collections::{HashMap, VecDeque};

use ukevent::{EventMask, ReadySource};
use uknetdev::dev::{BurstStats, NetDev};
use uknetdev::netbuf::{Netbuf, NetbufPool, TcpHold};
use uknetdev::MAX_BURST;
use ukplat::{Errno, Result};

use crate::arp::{ArpCache, ArpOp, ArpPacket};
use crate::eth::{EthHeader, EtherType, ETH_HDR_LEN};
use crate::flow::{flow_key, FlowTable};
use crate::icmp::{self, ICMP_ECHO_LEN};
use crate::ipv4::{IpProto, Ipv4Header, IPV4_HDR_LEN};
use crate::tcp::{
    Tcb, TcpFlags, TcpHeader, TcpOptions, TcpState, MSS, SACK_PERMITTED_OPT, TCP_HDR_LEN,
    TCP_MAX_OPT_LEN,
};
use crate::timer::{TimerToken, TimerWheel};
use crate::udp::{UdpHeader, UDP_HDR_LEN};
use crate::{Endpoint, Ipv4Addr, Mac};

/// Headroom reserved in every TX buffer: room for Ethernet + IPv4 +
/// the largest transport header **including TCP options** (SACK blocks
/// on pure ACKs need up to [`TCP_MAX_OPT_LEN`] extra bytes), so
/// payloads are written once and all headers are prepended in place.
pub const TX_HEADROOM: usize = 96;

/// Storage size of each packet buffer (MTU + headers, rounded up).
pub const BUF_CAP: usize = 2048;

/// Default ceiling on one GSO super-segment's TCP payload (Linux's
/// classic `GSO_MAX_SIZE` neighborhood; comfortably under the 16-bit
/// IPv4 total-length limit with headers included).
pub const GSO_MAX_SIZE: usize = 61440;

/// Most datagrams a UDP socket queues before new arrivals are dropped
/// (bounds how much of the pool a flooded socket can pin).
const UDP_RX_QUEUE_CAP: usize = 256;

/// Packets parked per next-hop awaiting ARP resolution before
/// *droppable* (non-TCP) packets start being evicted oldest-first
/// (Linux's `unres_qlen` idea). TCP segments are preferred survivors —
/// a dropped segment is recoverable only by a full RTO fire (200 ms
/// floor, then exponential backoff), so evicting one trades a queue
/// slot for orders of magnitude of added latency.
const ARP_PENDING_CAP: usize = 16;

/// Absolute per-next-hop parking bound. Parked packets pin pooled
/// buffers, so even TCP segments must stop accumulating at some point
/// (an application looping `tcp_connect` on an unreachable address
/// would otherwise pin the whole pool); beyond this the oldest packet
/// is dropped regardless of protocol.
const ARP_PENDING_HARD_CAP: usize = 64;

/// A who-has request is (re-)broadcast on the 1st, 9th, 17th, …
/// packet parked for a next-hop: self-healing if a request frame was
/// lost to RX-ring overflow, without the old request-per-packet storm.
const ARP_REQUEST_RETRY_EVERY: u64 = 8;

/// A who-has request is also re-broadcast every this-many `pump`
/// bursts while packets stay parked: a queue that went quiet after
/// parking (no new sends to trip the per-packet cadence above) still
/// makes progress.
const ARP_REQUEST_RETRY_PUMPS: u64 = 8;

/// Slots in the per-burst next-hop memo: resolved `(dst IP → MAC)`
/// pairs are remembered across one burst sweep so a burst of replies
/// to the same few peers does one ARP-table lookup per peer, not per
/// frame.
const ARP_MEMO_SIZE: usize = 8;

/// Listener handles carry this tag. It sits far above both the UDP
/// handle range (a small counter, < 2³²) and connection handles
/// (`generation << 32 | slot`, generation ≤ 0xffff, so < 2⁴⁸) — the
/// three handle spaces can never collide, and a garbage handle decodes
/// to generation 0, which no live connection ever carries.
const LISTENER_TAG: usize = 1 << 48;

/// TCP maximum segment lifetime against the virtual clock (TIME_WAIT
/// lingers 2×MSL before its port recycles). Deliberately compressed
/// versus RFC 793's 2 minutes — with a virtual clock the constant is
/// policy, and tests/benches drive hours of it in milliseconds.
pub const TCP_MSL_NS: u64 = 500_000_000;

/// A connection stuck in the handshake (SYN_SENT / SYN_RECEIVED) is
/// reaped after this long: generous against SYN-retransmit backoff,
/// finite against a peer that vanished mid-handshake.
pub const HANDSHAKE_TIMEOUT_NS: u64 = 6_000_000_000;

/// FIN_WAIT_2 orphan reaping: the peer acked our FIN but never sent
/// its own (Linux's `tcp_fin_timeout` shape).
pub const FINWAIT2_TIMEOUT_NS: u64 = 3_000_000_000;

/// Keepalive: idle time on an established connection before the first
/// probe is sent.
pub const KEEPALIVE_IDLE_NS: u64 = 5_000_000_000;

/// Keepalive: spacing between unanswered probes.
pub const KEEPALIVE_INTVL_NS: u64 = 1_000_000_000;

/// Keepalive: unanswered probes before the peer is declared dead and
/// the connection torn down.
pub const KEEPALIVE_PROBES: u32 = 3;

/// A fully Closed connection lingers this long before its slot is
/// reclaimed (and keeps being re-checked on the same cadence while
/// the application still has readable data to drain).
pub const CLOSED_LINGER_NS: u64 = 10_000_000;

/// Netbuf-pool level below which the receive path sheds the newest
/// out-of-order reassembly extents back to the pool. Sustained loss
/// pins buffers on both ends (rtx extents on the sender, OOO extents
/// on the receiver); shedding the newest OOO data — the furthest from
/// being cumulatively acknowledged, and guaranteed to be retransmitted
/// by the peer — degrades goodput gracefully where a starved pool
/// would stall the whole stack.
pub const LOW_POOL_BUFS: usize = 16;

// Timer-key kinds (bits 63..48 of a wheel key; the low 48 bits carry
// `generation << 32 | slot`, validated against the slab at dispatch so
// a timer armed by a dead incarnation fires into nothing).
const TK_RTO: u64 = 0;
const TK_DELACK: u64 = 1;
const TK_LIFE: u64 = 2;
const TK_RACK: u64 = 3;
const TK_PACE: u64 = 4;

// Reap-reason codes carried by the `tcp_conn_reaped` tracepoint.
const REAP_CLOSED: u64 = 0;
const REAP_HANDSHAKE: u64 = 1;
const REAP_KEEPALIVE: u64 = 2;
const REAP_FINWAIT2: u64 = 3;
const REAP_TIMEWAIT: u64 = 4;
const REAP_SYN_EVICTED: u64 = 5;

/// Packs a connection handle from its slab coordinates.
fn conn_handle(slot: u32, gen: u16) -> usize {
    ((gen as usize) << 32) | slot as usize
}

/// Splits a handle back into `(slot, generation)` — `None` for
/// listener, UDP and garbage handles (generation 0 is never issued).
fn conn_parts(h: usize) -> Option<(u32, u16)> {
    if h >> 48 != 0 {
        return None;
    }
    let gen = (h >> 32) as u16;
    if gen == 0 {
        return None;
    }
    Some(((h & 0xffff_ffff) as u32, gen))
}

/// Packs a timer-wheel key: kind, then the same generation-tagged slab
/// coordinates a handle carries.
fn timer_key(kind: u64, slot: u32, gen: u16) -> u64 {
    (kind << 48) | ((gen as u64) << 32) | slot as u64
}

// All three header layers — options included — must fit the reserved
// headroom.
const _: () =
    assert!(TX_HEADROOM >= ETH_HDR_LEN + IPV4_HDR_LEN + TCP_HDR_LEN + TCP_MAX_OPT_LEN);

/// Interface configuration.
#[derive(Debug, Clone, Copy)]
pub struct StackConfig {
    /// Our MAC address.
    pub mac: Mac,
    /// Our IPv4 address.
    pub ip: Ipv4Addr,
    /// Whether TX buffers come from a pre-allocated pool.
    pub use_pools: bool,
    /// Pool size (buffers) when pooling.
    pub pool_size: usize,
    /// Whether to offload TCP/UDP transmit checksums to the device
    /// (effective only when the device advertises the capability;
    /// disable for the software-checksum ablation).
    pub tx_csum_offload: bool,
    /// Whether to offload TCP segmentation (`VIRTIO_NET_F_HOST_TSO4`):
    /// bulk sends leave the stack as one super-segment chain per
    /// window's worth of data and the host cuts the MSS frames.
    /// Effective only when the device advertises TSO *and* transmit
    /// checksum offload is on (the per-frame checksums only exist
    /// after the cut); otherwise the stack falls back to software
    /// per-MSS segmentation. Disable for the software-segmentation
    /// ablation.
    pub tso: bool,
    /// Ceiling on one super-segment's payload when `tso` is on.
    pub gso_max_size: usize,
    /// Whether to trust the wire/device's checksum-validated mark on
    /// received frames (`VIRTIO_NET_F_GUEST_CSUM`) and skip software
    /// verification. Unmarked frames are always verified. Disable for
    /// the software-verification ablation.
    pub rx_csum_offload: bool,
    /// Whether to accept oversized TCP frames delivered whole as
    /// buffer chains (`VIRTIO_NET_F_GUEST_TSO4` + `MRG_RXBUF`): a
    /// peer's super-segment crosses the wire as one chain — one demux,
    /// one ingest — instead of being cut into MSS frames at the host
    /// boundary. Effective only with `rx_csum_offload` on (the spec
    /// ties `GUEST_TSO4` to `GUEST_CSUM`); without it the host cuts.
    pub guest_tso: bool,
    /// Whether to GRO-coalesce received TCP segments: consecutive
    /// in-order data segments of one `rx_burst` to the same connection
    /// are merged into a single multi-part ingest with one coalesced
    /// ACK — the receive-side mirror of TSO, and the fast path for
    /// per-MSS (non-TSO) senders. Purely stack-internal (no device
    /// capability involved); disable for the ablation baseline.
    pub gro: bool,
    /// Maximum segment size for this stack's TCP connections.
    pub mss: usize,
    /// Whether TCP connections run NewReno congestion control (slow
    /// start / congestion avoidance / fast recovery): the congestion
    /// window bounds emission alongside the peer window. Disable for
    /// the peer-window-only ablation — loss recovery (RTO, fast
    /// retransmit, reassembly) works either way.
    pub congestion_control: bool,
    /// Whether ACKs for received data may be deferred onto the timer
    /// wheel (fire after ~40 ms or every second full segment, the
    /// RFC 1122 shape) instead of leaving with the next flush.
    /// Effective only with a virtual clock installed; delivery is
    /// property-tested byte-identical with the switch on and off.
    pub delayed_ack: bool,
    /// Whether idle established connections probe the peer
    /// (keepalive) and tear down after unanswered probes — dead peers
    /// stop pinning TCBs and pooled buffers. Effective only with a
    /// virtual clock installed.
    pub keepalive: bool,
    /// Per-listener bound on both the half-open SYN queue and the
    /// accept backlog. When the SYN queue is full, the **oldest
    /// half-open** connection is evicted to admit a new SYN; when the
    /// accept backlog is full, handshake-completing ACKs are dropped
    /// (the client retransmits, the handshake timer bounds the
    /// half-open lifetime).
    pub listen_backlog: usize,
    /// Whether connections negotiate and use selective acknowledgment
    /// (RFC 2018): the receiver reports its out-of-order reassembly
    /// extents as SACK blocks on pure ACKs, and the sender keeps a
    /// scoreboard over the retransmission queue so a multi-hole loss
    /// episode retransmits *only the holes* (with D-SACK detection of
    /// spurious retransmits). Disable for the go-back-N ablation.
    pub sack: bool,
    /// Whether loss detection is time-based (RACK-TLP shape,
    /// RFC 8985): per-extent transmit timestamps plus a
    /// reordering-window timer replace the brittle 3-dup-ACK
    /// threshold, and a tail-loss probe rescues last-segment drops
    /// without a full RTO. Effective only with a virtual clock
    /// installed (the reordering window needs a timebase); without
    /// one the classic dup-ACK threshold stays in force.
    pub rack: bool,
    /// Whether recovery-episode emission (retransmissions and
    /// post-RTO slow start) is paced: the `min(cwnd, snd_wnd)` budget
    /// is released in SRTT-spread quanta through a wheel timer
    /// instead of as one burst. Effective only with a virtual clock
    /// installed.
    pub pacing: bool,
    /// Whether new TCBs start with empty send/receive/retransmit
    /// queues that grow on demand, instead of the steady-state
    /// preallocation. For connection-scale workloads (tens of
    /// thousands of mostly-idle connections) this shrinks an idle
    /// connection to its struct size; active connections grow to the
    /// same steady-state capacity after their first bursts, so the
    /// zero-alloc hot-path property still holds once warm.
    pub lean_tcbs: bool,
}

impl StackConfig {
    /// Config for test node `n` (10.0.0.n).
    pub fn node(n: u8) -> Self {
        StackConfig {
            mac: Mac::node(n),
            ip: Ipv4Addr::new(10, 0, 0, n),
            use_pools: true,
            pool_size: 512,
            tx_csum_offload: true,
            tso: true,
            gso_max_size: GSO_MAX_SIZE,
            rx_csum_offload: true,
            guest_tso: true,
            gro: true,
            mss: MSS,
            congestion_control: true,
            delayed_ack: false,
            keepalive: false,
            listen_backlog: 64,
            sack: true,
            rack: true,
            pacing: false,
            lean_tcbs: false,
        }
    }
}

/// Handle to a socket or connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SocketHandle(pub usize);

struct UdpSocket {
    port: u16,
    /// Received datagrams, held as the pooled buffers they arrived in
    /// (payload trimmed to the UDP body) — recycled on receive.
    rx: VecDeque<(Endpoint, Netbuf)>,
    /// Monotonic count of datagrams ever enqueued (readiness progress).
    rx_total: u64,
}

/// Which lifecycle timer (one per connection, multiplexed through
/// `TK_LIFE`) is armed for a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LifeKind {
    /// No lifecycle timer.
    None,
    /// Handshake timeout (SYN_SENT / SYN_RECEIVED reclamation).
    Handshake,
    /// Keepalive probing on an idle established connection.
    Keepalive,
    /// FIN_WAIT_2 orphan reaping.
    FinWait2,
    /// 2MSL TIME_WAIT expiry (port recycling).
    TimeWait,
    /// Closed-slot reclamation (short linger for EPOLLHUP delivery).
    Reap,
}

struct TcpConn {
    tcb: Tcb,
    remote: Endpoint,
    local_port: u16,
    /// Wheel mirror of the TCB's RTO/persist deadline.
    rto_tok: TimerToken,
    rto_armed_ns: Option<u64>,
    /// Wheel mirror of the TCB's delayed-ACK deadline.
    delack_tok: TimerToken,
    delack_armed_ns: Option<u64>,
    /// The single lifecycle timer (kind says which one is armed).
    life_tok: TimerToken,
    life_kind: LifeKind,
    /// Wheel mirror of the TCB's RACK deadline (reordering window or
    /// tail-loss probe, whichever is nearer).
    rack_tok: TimerToken,
    rack_armed_ns: Option<u64>,
    /// Wheel mirror of the TCB's pacing-gate deadline.
    pace_tok: TimerToken,
    pace_armed_ns: Option<u64>,
    /// Last segment activity (keepalive idle reference).
    last_activity_ns: u64,
    /// Unanswered keepalive probes since the last activity.
    ka_probes: u32,
    /// Whether this connection sits on the stack's dirty list (its
    /// output and timers get reconciled by the next flush).
    dirty: bool,
}

/// One slab slot: the generation tag survives the connection, so a
/// handle minted for a reaped incarnation fails the lookup instead of
/// aliasing the slot's next occupant.
struct ConnSlot {
    gen: u16,
    conn: Option<TcpConn>,
}

/// Packets parked for one unresolved next-hop: IP-level packets with
/// Ethernet headroom still reserved, tagged with their transport
/// protocol so eviction can prefer droppable (non-TCP) traffic.
#[derive(Default)]
struct ArpPendingQueue {
    packets: Vec<(IpProto, Netbuf)>,
    /// Packets ever parked here (drives the who-has retry cadence).
    parked_total: u64,
    /// Pump bursts survived while parked (drives the quiet-queue
    /// who-has retry — see [`ARP_REQUEST_RETRY_PUMPS`]).
    pump_ticks: u64,
}

/// A readiness cell plus the last progress value published through it.
struct SourceEntry {
    src: ReadySource,
    progress: u64,
}

/// The expected continuation of the GRO run currently being staged:
/// the flow identity of its last segment and the sequence number the
/// next in-order segment must carry.
struct GroCont {
    src: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    conn: usize,
    next_seq: u32,
}

struct TcpListener {
    /// Half-open (SYN_RECEIVED) connections, oldest first — the
    /// bounded SYN queue. Overflow evicts the front.
    syn_queue: VecDeque<u32>,
    /// Fully established connections awaiting `tcp_accept`.
    backlog: VecDeque<SocketHandle>,
    /// Monotonic count of connections ever queued (readiness progress).
    accepted_total: u64,
}

/// Stack statistics.
#[derive(Debug, Default, Clone, Copy)]
pub struct StackStats {
    /// Frames received and parsed.
    pub rx_frames: u64,
    /// Frames transmitted.
    pub tx_frames: u64,
    /// Payload bytes transmitted.
    pub tx_bytes: u64,
    /// RX bursts swept by `pump` (`rx_frames / rx_bursts` is the
    /// per-burst amortization factor).
    pub rx_bursts: u64,
    /// TX bursts pushed into the device.
    pub tx_bursts: u64,
    /// Frames whose transport checksum was offloaded to the device.
    pub csum_offloaded: u64,
    /// GSO super-segments handed to the device for TSO cutting (each
    /// counts once in `tx_frames` but covers many wire frames).
    pub tso_super_frames: u64,
    /// Payload bytes that left in GSO super-segments.
    pub tso_super_bytes: u64,
    /// Received frames whose software checksum verification was
    /// skipped because the wire/device marked them validated.
    pub rx_csum_skipped: u64,
    /// Super-segments received whole as buffer chains (big receive);
    /// each counts once in `rx_frames` but covers many MSS worth of
    /// stream.
    pub rx_super_frames: u64,
    /// GRO runs delivered: groups of ≥ 2 consecutive in-order TCP
    /// segments from one burst merged into a single multi-part ingest.
    pub gro_runs: u64,
    /// Frames that rode those runs (`gro_merged_frames / gro_runs` is
    /// the receive-side coalescing factor).
    pub gro_merged_frames: u64,
    /// Frames dropped (parse errors, unknown ports, full queues).
    pub dropped: u64,
}

/// Typed tracepoints of the stack datapath. Each fires into the owning
/// stack's [`TraceRing`](uktrace::TraceRing) (drained via
/// [`NetStack::trace_events`]); with the `trace` feature off every call
/// site compiles to nothing.
pub mod tp {
    uktrace::tracepoints! {
        // ARP: resolution traffic and the parking queue.
        arp_request_tx(dst_ip),
        arp_request_rx(sender_ip),
        arp_reply_rx(sender_ip),
        arp_parked(dst_ip, queued),
        // TCP: connection lifecycle and the data fast paths.
        tcp_syn_rx(local_port, remote_port),
        tcp_established(conn),
        tcp_data_rx(conn, bytes),
        tcp_super_rx(conn, bytes),
        tcp_dup_ack(conn, seq),
        tcp_fin_rx(local_port, seq),
        tcp_segment_tx(dst_port, seq),
        tso_super_tx(bytes, mss),
        gro_merge(conn, frames),
        // TCP loss recovery.
        tcp_rto_fire(conn, backlog),
        tcp_retransmit(conn, count),
        tcp_fast_retransmit(conn, count),
        tcp_ooo_queue(conn, count),
        // TCP surgical recovery (SACK scoreboard / RACK-TLP / pacing).
        tcp_sack_rtx(conn, count),
        tcp_spurious_rtx(conn, count),
        tcp_tlp_probe(conn, count),
        tcp_paced_release(conn, count),
        tcp_ooo_shed(conn, count),
        // TCP connection lifecycle (timer wheel).
        tcp_rst_tx(dst_port, seq),
        tcp_time_wait(conn, port),
        tcp_conn_reaped(conn, reason),
        tcp_syn_evicted(port, slot),
        tcp_keepalive_probe(conn, probes),
        // Other demux outcomes.
        udp_rx(dst_port, bytes),
        icmp_echo_rx(ident, seq),
        demux_miss(proto, port),
    }
}

/// Records a trace ring holds before overwriting the oldest.
pub const TRACE_RING_CAP: usize = 1024;

/// Pre-registered `ukstats` handles for the stack: every [`StackStats`]
/// field mirrored into the global registry under `netstack.*`, plus the
/// demux/ARP/pump observability the plain struct never carried.
/// Registration (which may lock and allocate) happens once in
/// [`NetStack::new`]; the hot path only ever does relaxed atomic adds
/// on these resolved slots.
struct StackCounters {
    rx_frames: ukstats::Counter,
    tx_frames: ukstats::Counter,
    tx_bytes: ukstats::Counter,
    rx_bursts: ukstats::Counter,
    tx_bursts: ukstats::Counter,
    csum_offloaded: ukstats::Counter,
    tso_super_frames: ukstats::Counter,
    tso_super_bytes: ukstats::Counter,
    rx_csum_skipped: ukstats::Counter,
    rx_super_frames: ukstats::Counter,
    gro_runs: ukstats::Counter,
    gro_merged_frames: ukstats::Counter,
    dropped: ukstats::Counter,
    demux_tcp: ukstats::Counter,
    demux_udp: ukstats::Counter,
    demux_arp: ukstats::Counter,
    demux_icmp: ukstats::Counter,
    demux_miss: ukstats::Counter,
    dup_acks: ukstats::Counter,
    /// Retransmission-timeout fires across all connections.
    tcp_rto_fires: ukstats::Counter,
    /// Segments re-emitted (data, SYN, SYN-ACK, FIN retransmissions).
    tcp_retransmits: ukstats::Counter,
    /// Fast-retransmit triggers (3rd duplicate ACK).
    tcp_fast_retransmits: ukstats::Counter,
    /// Out-of-order extents filed into reassembly queues.
    tcp_ooo_queued: ukstats::Counter,
    /// Scoreboard-driven (SACK) hole retransmissions beyond the
    /// cumulative-ACK front.
    tcp_sack_rtx: ukstats::Counter,
    /// Spurious retransmissions detected via D-SACK.
    tcp_spurious_rtx: ukstats::Counter,
    /// Tail-loss probes fired in place of a full RTO.
    tcp_tlp_probes: ukstats::Counter,
    /// Pacing-gate quantum releases during recovery episodes.
    tcp_paced_releases: ukstats::Counter,
    /// Out-of-order extents shed under netbuf-pool pressure.
    tcp_ooo_shed: ukstats::Counter,
    /// Last observed RACK reordering window (ns; most recently polled
    /// connection).
    tcp_rack_reorder_window_ns: ukstats::Gauge,
    /// Last observed congestion window (bytes; most recently polled
    /// connection).
    tcp_cwnd: ukstats::Gauge,
    /// Connections that entered TIME_WAIT.
    tcp_timewait: ukstats::Counter,
    /// Connections reaped by keepalive dead-peer detection.
    tcp_keepalive_drops: ukstats::Counter,
    /// Listener overflow events: half-open connections evicted from a
    /// full SYN queue plus handshake-completing ACKs dropped against a
    /// full accept backlog.
    tcp_syn_overflow: ukstats::Counter,
    /// RST segments generated for segments that missed the demux.
    tcp_rst_tx: ukstats::Counter,
    arp_parked: ukstats::Counter,
    arp_evicted: ukstats::Counter,
    arp_requests_tx: ukstats::Counter,
    pump_sweeps: ukstats::Counter,
    /// Wall-clock duration of one full `pump` sweep.
    pump_ns: ukstats::Histogram,
    /// Most pooled buffers ever in flight at once (pool high-water).
    pool_inflight_hiwater: ukstats::Gauge,
    /// Most packets ever parked behind one unresolved next-hop.
    arp_parked_hiwater: ukstats::Gauge,
}

impl StackCounters {
    fn register() -> Self {
        StackCounters {
            rx_frames: ukstats::Counter::register("netstack.rx_frames"),
            tx_frames: ukstats::Counter::register("netstack.tx_frames"),
            tx_bytes: ukstats::Counter::register("netstack.tx_bytes"),
            rx_bursts: ukstats::Counter::register("netstack.rx_bursts"),
            tx_bursts: ukstats::Counter::register("netstack.tx_bursts"),
            csum_offloaded: ukstats::Counter::register("netstack.csum_offloaded"),
            tso_super_frames: ukstats::Counter::register("netstack.tso_super_frames"),
            tso_super_bytes: ukstats::Counter::register("netstack.tso_super_bytes"),
            rx_csum_skipped: ukstats::Counter::register("netstack.rx_csum_skipped"),
            rx_super_frames: ukstats::Counter::register("netstack.rx_super_frames"),
            gro_runs: ukstats::Counter::register("netstack.gro_runs"),
            gro_merged_frames: ukstats::Counter::register("netstack.gro_merged_frames"),
            dropped: ukstats::Counter::register("netstack.dropped"),
            demux_tcp: ukstats::Counter::register("netstack.demux_tcp"),
            demux_udp: ukstats::Counter::register("netstack.demux_udp"),
            demux_arp: ukstats::Counter::register("netstack.demux_arp"),
            demux_icmp: ukstats::Counter::register("netstack.demux_icmp"),
            demux_miss: ukstats::Counter::register("netstack.demux_miss"),
            dup_acks: ukstats::Counter::register("netstack.dup_acks"),
            tcp_rto_fires: ukstats::Counter::register("netstack.tcp.rto_fires"),
            tcp_retransmits: ukstats::Counter::register("netstack.tcp.retransmits"),
            tcp_fast_retransmits: ukstats::Counter::register("netstack.tcp.fast_retransmits"),
            tcp_ooo_queued: ukstats::Counter::register("netstack.tcp.ooo_queued"),
            tcp_sack_rtx: ukstats::Counter::register("netstack.tcp.sack_rtx"),
            tcp_spurious_rtx: ukstats::Counter::register("netstack.tcp.spurious_rtx"),
            tcp_tlp_probes: ukstats::Counter::register("netstack.tcp.tlp_probes"),
            tcp_paced_releases: ukstats::Counter::register("netstack.tcp.paced_releases"),
            tcp_ooo_shed: ukstats::Counter::register("netstack.tcp.ooo_shed"),
            tcp_rack_reorder_window_ns: ukstats::Gauge::register(
                "netstack.tcp.rack_reorder_window_ns",
            ),
            tcp_cwnd: ukstats::Gauge::register("netstack.tcp.cwnd"),
            tcp_timewait: ukstats::Counter::register("netstack.tcp.timewait"),
            tcp_keepalive_drops: ukstats::Counter::register("netstack.tcp.keepalive_drops"),
            tcp_syn_overflow: ukstats::Counter::register("netstack.tcp.syn_overflow"),
            tcp_rst_tx: ukstats::Counter::register("netstack.tcp.rst_tx"),
            arp_parked: ukstats::Counter::register("netstack.arp_parked"),
            arp_evicted: ukstats::Counter::register("netstack.arp_evicted"),
            arp_requests_tx: ukstats::Counter::register("netstack.arp_requests_tx"),
            pump_sweeps: ukstats::Counter::register("netstack.pump_sweeps"),
            pump_ns: ukstats::Histogram::register("netstack.pump_ns"),
            pool_inflight_hiwater: ukstats::Gauge::register("netstack.pool_inflight_hiwater"),
            arp_parked_hiwater: ukstats::Gauge::register("netstack.arp_parked_hiwater"),
        }
    }
}

/// The network stack.
pub struct NetStack {
    config: StackConfig,
    dev: Box<dyn NetDev>,
    arp: ArpCache,
    pool: Option<NetbufPool>,
    udp_socks: HashMap<usize, UdpSocket>,
    udp_ports: HashMap<u16, usize>,
    /// Connection slab: TCBs live inline in slots; a slot's generation
    /// tag is baked into the connection handle, so a stale handle (a
    /// reaped connection whose slot was reused) fails the lookup
    /// instead of reaching the wrong TCB.
    conn_slots: Vec<ConnSlot>,
    /// Free slots awaiting reuse (LIFO keeps the working set warm).
    conn_free: Vec<u32>,
    /// Open-addressing demux: packed `(local port, remote)` flow key →
    /// slab slot. Replaces the old `HashMap<(u16, Endpoint), usize>` —
    /// lookup cost and memory stay flat at 100 K–1 M flows.
    flow: FlowTable,
    /// Hierarchical timer wheel driving every connection timer —
    /// RTO/persist, delayed ACK and the lifecycle set (handshake
    /// timeout, keepalive, FIN_WAIT_2 reaping, 2MSL TIME_WAIT) — off
    /// the virtual clock, O(1) per arm/cancel/advance.
    wheel: TimerWheel,
    /// Connections touched since the last flush (slot list,
    /// deduplicated by the per-connection `dirty` flag): the output
    /// and timer-sync passes walk this instead of every connection, so
    /// 100 K idle connections cost nothing per pump.
    dirty: Vec<u32>,
    /// Fired-timer scratch for `tcp_timer_tick` (reused).
    fired_scratch: Vec<(u64, u64)>,
    listeners: HashMap<u16, TcpListener>,
    next_handle: usize,
    next_ephemeral: u16,
    iss: u32,
    stats: StackStats,
    /// Packets waiting for ARP resolution, keyed by next-hop IP.
    arp_pending: HashMap<Ipv4Addr, ArpPendingQueue>,
    /// Echo replies received: (peer, ident, seq).
    ping_replies: Vec<(Ipv4Addr, u16, u16)>,
    /// Readiness cells handed out to event queues, keyed by handle,
    /// with the progress counter last published through each. Synced
    /// after every socket-mutating operation and each `pump`.
    sources: HashMap<usize, SourceEntry>,
    /// Ethernet-ready frames staged for the next `tx_burst` (reused).
    tx_stage: Vec<Netbuf>,
    /// TCP segments staged during `flush_tcp`, pre-ARP (reused).
    tcp_stage: Vec<(Ipv4Addr, Netbuf)>,
    /// RX burst scratch for `pump` (reused).
    rx_scratch: Vec<Netbuf>,
    /// Injection scratch for `deliver_frame` (reused).
    inject_scratch: Vec<Netbuf>,
    /// Key scratch for `sync_readiness` (reused).
    sync_scratch: Vec<usize>,
    /// Whether TCP/UDP TX checksums are completed by the device
    /// (config wish ∧ device capability).
    csum_offload: bool,
    /// Whether bulk TCP output leaves as GSO super-segments for the
    /// device to cut (config wish ∧ device TSO ∧ `csum_offload`).
    tso: bool,
    /// Whether software checksum verification is skipped for received
    /// frames the wire marked validated (config wish ∧ device
    /// capability).
    rx_csum_offload: bool,
    /// Whether peers' super-segments are delivered whole as chains
    /// (config wish ∧ device capability ∧ `rx_csum_offload`).
    guest_tso: bool,
    /// Whether received TCP data segments are GRO-coalesced before
    /// ingest (stack-internal, config switch only).
    gro: bool,
    /// GRO staging area: `(conn handle, header, payload buffer)` per
    /// mergeable data segment of the burst being swept, in arrival
    /// order (flushed whenever ordering demands it and at the end of
    /// every burst; reused storage).
    gro_stage: Vec<(usize, TcpHeader, Netbuf)>,
    /// The tail of the run being staged: a segment matching this flow
    /// at exactly this sequence number appends to the stage *without
    /// any demux-table lookup* — the GRO flow-match fast path (the
    /// role of Linux's `gro_list` flow compare).
    gro_cont: Option<GroCont>,
    /// Per-burst next-hop memo: `(dst IP, MAC)` pairs resolved during
    /// the current burst sweep (cleared each `pump` and on ARP-table
    /// updates; reused storage).
    arp_memo: Vec<(Ipv4Addr, Mac)>,
    /// Next-hops due a who-has re-broadcast this pump (reused).
    arp_retry_scratch: Vec<Ipv4Addr>,
    /// Pre-registered global counter/gauge/histogram handles.
    ustats: StackCounters,
    /// Tracepoint ring (a ZST no-op with the `trace` feature off).
    trace: uktrace::TraceRing,
    /// Virtual clock driving the per-connection retransmission timers
    /// (`pump` ticks every TCB when installed). No clock means no
    /// timer fires — the pre-loss-recovery behavior.
    clock: Option<ukplat::time::Tsc>,
    /// Scratch for flattening returning held TX frames into their
    /// payload extents (reused).
    hold_scratch: Vec<Netbuf>,
}

impl std::fmt::Debug for NetStack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetStack")
            .field("ip", &self.config.ip)
            .field("conns", &(self.conn_slots.len() - self.conn_free.len()))
            .field("stats", &self.stats)
            .finish()
    }
}

impl NetStack {
    /// Creates a stack over a configured device. Out-of-range tuning
    /// knobs are clamped to safe values: the MSS to what one wire
    /// frame and one pooled buffer can carry, the GSO budget to what
    /// the IPv4 16-bit total-length field admits.
    // ukcheck: allow(alloc) -- one-time stack construction: maps, the
    // pool, scratch vectors and the trace ring are all built here so the
    // per-frame pump never allocates (the zero_alloc suite enforces it)
    pub fn new(mut config: StackConfig, dev: Box<dyn NetDev>) -> Self {
        config.mss = config.mss.clamp(1, MSS);
        // Headers + super-segment payload must fit the u16 IPv4 total
        // length, or the frame would be unparseable on arrival — a
        // deterministic parse failure retransmission must not paper
        // over.
        const GSO_HARD_MAX: usize = 65_535 - IPV4_HDR_LEN - TCP_HDR_LEN;
        config.gso_max_size = config.gso_max_size.clamp(config.mss, GSO_HARD_MAX);
        config.listen_backlog = config.listen_backlog.clamp(1, 4096);
        let info = dev.info();
        let csum_offload = config.tx_csum_offload && info.tx_csum_offload;
        // TSO requires checksum offload (the cut frames' checksums are
        // completed host-side); without either capability the stack
        // falls back to software per-MSS segmentation.
        let tso = config.tso && info.tso && csum_offload;
        let rx_csum_offload = config.rx_csum_offload && info.rx_csum_offload;
        // Big receive needs the checksum-validated mark: a chained
        // super-frame's checksum was never materialized, so a stack
        // that insists on software verification must have the host
        // cut (and checksum) MSS frames instead.
        let guest_tso = config.guest_tso && info.guest_tso && rx_csum_offload;
        // Pooled buffers pre-reserve fragment-list capacity for the
        // largest super-segment chain, so chain building — GSO on TX,
        // big receive on RX — never grows a Vec on the hot path.
        let chain_frags = if tso || guest_tso {
            config.gso_max_size.div_ceil(BUF_CAP) + 2
        } else {
            // Even with both offloads down the sw-seg path builds
            // small chains: a sub-MSS frame coalesced from several
            // queued extents rides the spent (emptied) buffers as
            // fragments so they recycle with the frame.
            4
        };
        let pool = config.use_pools.then(|| {
            NetbufPool::with_chain_capacity(config.pool_size, BUF_CAP, TX_HEADROOM, chain_frags)
        });
        NetStack {
            config,
            dev,
            arp: ArpCache::new(),
            pool,
            udp_socks: HashMap::new(),
            udp_ports: HashMap::new(),
            conn_slots: Vec::new(),
            conn_free: Vec::new(),
            flow: FlowTable::new(),
            wheel: TimerWheel::new(),
            dirty: Vec::new(),
            fired_scratch: Vec::new(),
            listeners: HashMap::new(),
            next_handle: 1,
            next_ephemeral: 49152,
            iss: 1,
            stats: StackStats::default(),
            arp_pending: HashMap::new(),
            ping_replies: Vec::new(),
            sources: HashMap::new(),
            tx_stage: Vec::new(),
            tcp_stage: Vec::new(),
            rx_scratch: Vec::new(),
            inject_scratch: Vec::new(),
            sync_scratch: Vec::new(),
            csum_offload,
            tso,
            rx_csum_offload,
            guest_tso,
            gro: config.gro,
            gro_stage: Vec::new(),
            gro_cont: None,
            arp_memo: Vec::with_capacity(ARP_MEMO_SIZE),
            arp_retry_scratch: Vec::new(),
            ustats: StackCounters::register(),
            trace: uktrace::TraceRing::new(TRACE_RING_CAP),
            clock: None,
            hold_scratch: Vec::with_capacity(MAX_BURST),
        }
    }

    /// Installs the virtual clock that drives TCP retransmission
    /// timers: every `pump` ticks each connection's RTO/persist timer
    /// against it. Also stamps trace records with the same clock.
    /// Without a clock no timer ever fires (timer-less setups keep
    /// their exact pre-timer behavior); the returning-frame
    /// retransmission queue and fast retransmit still work.
    pub fn set_clock(&mut self, tsc: &ukplat::time::Tsc) {
        self.clock = Some(tsc.clone());
        self.set_trace_clock(tsc);
    }

    /// Stamps this stack's trace records with the platform's virtual
    /// clock instead of the default per-ring sequence numbers.
    pub fn set_trace_clock(&mut self, tsc: &ukplat::time::Tsc) {
        self.trace.set_clock(tsc);
    }

    /// The stack's tracepoint ring (zero-sized no-op with the `trace`
    /// feature off).
    pub fn trace_ring(&mut self) -> &mut uktrace::TraceRing {
        &mut self.trace
    }

    /// Drains and returns the stack's buffered trace records, oldest
    /// first (always empty with the `trace` feature off).
    pub fn trace_events(&mut self) -> Vec<uktrace::TraceEvent> {
        self.trace.drain()
    }

    /// Whether TX transport checksums are being offloaded to the
    /// device (configuration wish ∧ device capability).
    pub fn csum_offload(&self) -> bool {
        self.csum_offload
    }

    /// Whether bulk TCP output leaves as GSO super-segments for TSO
    /// cutting (configuration wish ∧ device capability ∧ checksum
    /// offload on).
    pub fn tso(&self) -> bool {
        self.tso
    }

    /// Whether received frames marked checksum-validated by the wire
    /// skip software verification (configuration wish ∧ device
    /// capability).
    pub fn rx_csum_offload(&self) -> bool {
        self.rx_csum_offload
    }

    /// Whether this stack accepts peers' super-segments whole, as
    /// buffer chains (`VIRTIO_NET_F_GUEST_TSO4` shape) — the wire
    /// consults this to decide between whole-chain delivery and the
    /// host-side MSS cut.
    pub fn accepts_super_frames(&self) -> bool {
        self.guest_tso
    }

    /// Whether received TCP segments are GRO-coalesced before ingest.
    pub fn gro(&self) -> bool {
        self.gro
    }

    /// Our address.
    pub fn ip(&self) -> Ipv4Addr {
        self.config.ip
    }

    /// Our MAC.
    pub fn mac(&self) -> Mac {
        self.config.mac
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> StackStats {
        self.stats
    }

    /// Buffers currently available in the TX pool (diagnostics; `None`
    /// when pooling is off).
    pub fn pool_available(&self) -> Option<usize> {
        self.pool.as_ref().map(|p| p.available())
    }

    /// Allocates a UDP socket handle (plain counter; connection and
    /// listener handles live in disjoint ranges — see
    /// [`LISTENER_TAG`]).
    fn handle(&mut self) -> usize {
        let h = self.next_handle;
        self.next_handle += 1;
        h
    }

    /// Current virtual time, when a clock is installed.
    fn now_ns(&self) -> Option<u64> {
        self.clock.as_ref().map(|c| c.cycles_to_ns(c.now_cycles()))
    }

    /// Resolves a generation-tagged handle to its live connection.
    fn conn(&self, h: usize) -> Option<&TcpConn> {
        let (slot, gen) = conn_parts(h)?;
        let cs = self.conn_slots.get(slot as usize)?;
        if cs.gen != gen {
            return None;
        }
        cs.conn.as_ref()
    }

    /// Mutable form of [`conn`](Self::conn).
    fn conn_mut(&mut self, h: usize) -> Option<&mut TcpConn> {
        let (slot, gen) = conn_parts(h)?;
        let cs = self.conn_slots.get_mut(slot as usize)?;
        if cs.gen != gen {
            return None;
        }
        cs.conn.as_mut()
    }

    /// Live TCP connections in the slab (any state, TIME_WAIT
    /// included) — diagnostics for tests and reports.
    pub fn tcp_conn_count(&self) -> usize {
        self.conn_slots.len() - self.conn_free.len()
    }

    /// Timers currently armed on the wheel (diagnostics).
    pub fn armed_timer_count(&self) -> usize {
        self.wheel.len()
    }

    /// Puts a connection on the dirty list (idempotent): the next
    /// flush polls its output and reconciles its wheel timers.
    fn mark_dirty_handle(&mut self, h: usize) {
        let Some((slot, gen)) = conn_parts(h) else {
            return;
        };
        if let Some(cs) = self.conn_slots.get_mut(slot as usize) {
            if cs.gen == gen {
                if let Some(c) = cs.conn.as_mut() {
                    if !c.dirty {
                        c.dirty = true;
                        self.dirty.push(slot);
                    }
                }
            }
        }
    }

    /// Installs a connection into the slab + flow table, bumping the
    /// slot's generation, and marks it dirty (its first output — SYN
    /// or SYN-ACK — leaves with the next flush).
    fn alloc_conn(&mut self, tcb: Tcb, remote: Endpoint, local_port: u16, now: u64) -> usize {
        let slot = match self.conn_free.pop() {
            Some(s) => s,
            None => {
                self.conn_slots.push(ConnSlot { gen: 0, conn: None });
                (self.conn_slots.len() - 1) as u32
            }
        };
        let cs = &mut self.conn_slots[slot as usize];
        cs.gen = if cs.gen == u16::MAX { 1 } else { cs.gen + 1 };
        cs.conn = Some(TcpConn {
            tcb,
            remote,
            local_port,
            rto_tok: TimerToken::NONE,
            rto_armed_ns: None,
            delack_tok: TimerToken::NONE,
            delack_armed_ns: None,
            life_tok: TimerToken::NONE,
            life_kind: LifeKind::None,
            rack_tok: TimerToken::NONE,
            rack_armed_ns: None,
            pace_tok: TimerToken::NONE,
            pace_armed_ns: None,
            last_activity_ns: now,
            ka_probes: 0,
            dirty: false,
        });
        let gen = cs.gen;
        self.flow.insert(flow_key(local_port, remote), slot);
        let h = conn_handle(slot, gen);
        self.mark_dirty_handle(h);
        h
    }

    /// Tears a connection down completely: cancels its wheel timers,
    /// removes its flow entry, scrubs it from its listener's queues,
    /// returns **every** buffer it holds (send, receive, reassembly,
    /// staged control) to the pool, frees the slab slot and publishes
    /// the final `EPOLLHUP`. In-flight TX frames tagged with the old
    /// generation fall through to the pool on return — nothing leaks.
    // `_reason` feeds only the `tcp_conn_reaped` tracepoint (unused
    // when tracing is compiled out, hence the underscore).
    fn reap_conn_slot(&mut self, slot: u32, _reason: u64) {
        let Some(cs) = self.conn_slots.get_mut(slot as usize) else {
            return;
        };
        let gen = cs.gen;
        let Some(mut c) = cs.conn.take() else {
            return;
        };
        let h = conn_handle(slot, gen);
        self.wheel.cancel(c.rto_tok);
        self.wheel.cancel(c.delack_tok);
        self.wheel.cancel(c.life_tok);
        self.wheel.cancel(c.rack_tok);
        self.wheel.cancel(c.pace_tok);
        self.flow.remove(flow_key(c.local_port, c.remote));
        if let Some(l) = self.listeners.get_mut(&c.local_port) {
            l.syn_queue.retain(|&s| s != slot);
            l.backlog.retain(|s| s.0 != h);
        }
        if self.gro_cont.as_ref().is_some_and(|g| g.conn == h) {
            self.gro_cont = None;
        }
        let mut pool = self.pool.take();
        c.tcb.drain_all_buffers(|mut nb| match pool.as_mut() {
            Some(p) => p.give_back_chain(nb),
            None => while nb.pop_frag().is_some() {},
        });
        self.pool = pool;
        self.conn_free.push(slot);
        uktrace::trace!(self.trace, tp::tcp_conn_reaped, h, _reason);
        self.sync_one(h);
    }

    // --- Readiness (ukevent integration) ------------------------------

    /// Computes the current level-triggered readiness of a socket:
    ///
    /// - listeners: `EPOLLIN` while the accept queue is non-empty;
    /// - UDP sockets: `EPOLLIN` while datagrams are queued, `EPOLLOUT`
    ///   always (sends never block);
    /// - TCP connections: `EPOLLIN` on buffered rx data, `EPOLLRDHUP`
    ///   (plus `EPOLLIN`) once the peer's FIN arrived, `EPOLLOUT` while
    ///   the send buffer has room, `EPOLLHUP` when fully closed;
    /// - unknown/closed handles: `EPOLLHUP`.
    pub fn readiness(&self, sock: SocketHandle) -> EventMask {
        if sock.0 & LISTENER_TAG != 0 {
            let port = (sock.0 & 0xffff) as u16;
            return match self.listeners.get(&port) {
                Some(l) if !l.backlog.is_empty() => EventMask::IN,
                Some(_) => EventMask::EMPTY,
                None => EventMask::HUP,
            };
        }
        if let Some(u) = self.udp_socks.get(&sock.0) {
            let mut m = EventMask::OUT;
            if !u.rx.is_empty() {
                m |= EventMask::IN;
            }
            return m;
        }
        if let Some(c) = self.conn(sock.0) {
            let mut m = EventMask::EMPTY;
            if c.tcb.readable() > 0 {
                m |= EventMask::IN;
            }
            if c.tcb.peer_fin_seen() {
                m |= EventMask::IN | EventMask::RDHUP;
            }
            if c.tcb.send_capacity() > 0 {
                m |= EventMask::OUT;
            }
            if c.tcb.state == TcpState::Closed {
                m |= EventMask::HUP;
            }
            return m;
        }
        EventMask::HUP
    }

    /// Returns the shared readiness cell for `sock`, creating it on
    /// first use. Event queues register this cell (it implements
    /// [`ukevent::Pollable`]); the stack publishes every state
    /// transition — accept-queue non-empty, rx data, tx window opening,
    /// FIN — through it as edges.
    pub fn ready_source(&mut self, sock: SocketHandle) -> ReadySource {
        let level = self.readiness(sock);
        let progress = self.rx_progress(sock);
        let entry = self.sources.entry(sock.0).or_insert_with(|| SourceEntry {
            src: ReadySource::new(),
            progress,
        });
        entry.progress = progress;
        let src = entry.src.clone();
        src.set_level(level);
        src
    }

    /// Monotonic "input happened" counter for a socket: bytes ingested
    /// on a connection, datagrams on a UDP socket, connections queued
    /// on a listener. Lets the readiness sync distinguish *new* input
    /// from *pending* input, which is what re-triggers `EPOLLET`
    /// watchers while the readable level is already high.
    fn rx_progress(&self, sock: SocketHandle) -> u64 {
        if sock.0 & LISTENER_TAG != 0 {
            return self
                .listeners
                .get(&((sock.0 & 0xffff) as u16))
                .map(|l| l.accepted_total)
                .unwrap_or(0);
        }
        if let Some(u) = self.udp_socks.get(&sock.0) {
            return u.rx_total;
        }
        self.conn(sock.0).map(|c| c.tcb.rx_total()).unwrap_or(0)
    }

    /// Number of live readiness cells the stack is publishing to (for
    /// tests and reports; defunct sockets' cells are pruned).
    pub fn watched_source_count(&self) -> usize {
        self.sources.len()
    }

    /// Whether the socket behind a handle is gone for good: a removed
    /// listener/UDP socket, or a fully closed connection with no
    /// residual readable data. Its readiness can never change again.
    fn socket_defunct(&self, sock: SocketHandle) -> bool {
        if sock.0 & LISTENER_TAG != 0 {
            return !self.listeners.contains_key(&((sock.0 & 0xffff) as u16));
        }
        if self.udp_socks.contains_key(&sock.0) {
            return false;
        }
        match self.conn(sock.0) {
            Some(c) => c.tcb.state == TcpState::Closed && c.tcb.readable() == 0,
            None => true,
        }
    }

    /// Publishes readiness for one watched socket (the one an operation
    /// just touched), dropping its cell when the socket is defunct.
    /// Per-socket operations use this so an event-loop turn stays O(N)
    /// overall; the full sweep below runs only from `pump`, where any
    /// number of sockets may have changed.
    fn sync_one(&mut self, key: usize) {
        if !self.sources.contains_key(&key) {
            return;
        }
        let level = self.readiness(SocketHandle(key));
        let progress = self.rx_progress(SocketHandle(key));
        let Some(entry) = self.sources.get_mut(&key) else {
            // Checked above; re-fetched only to scope the mutable borrow.
            return;
        };
        let had_in = entry.src.current().contains(EventMask::IN);
        let new_input = progress > entry.progress;
        entry.progress = progress;
        let src = entry.src.clone();
        src.set_level(level);
        // New input while already readable: no level transition, but
        // Linux re-triggers EPOLLET consumers — pulse the edge counter.
        if new_input && had_in && level.contains(EventMask::IN) {
            src.pulse();
        }
        if self.socket_defunct(SocketHandle(key)) {
            self.sources.remove(&key);
        }
    }

    /// Recomputes and publishes readiness for every socket an event
    /// queue is watching. The `ReadySource` cells detect rising edges
    /// themselves, so calling this after every mutation is idempotent.
    /// Sources for defunct sockets get a final `EPOLLHUP` level and are
    /// dropped, bounding the table to live sockets.
    fn sync_readiness(&mut self) {
        if self.sources.is_empty() {
            return;
        }
        let mut keys = std::mem::take(&mut self.sync_scratch);
        keys.clear();
        keys.extend(self.sources.keys().copied());
        for key in keys.drain(..) {
            self.sync_one(key);
        }
        self.sync_scratch = keys;
    }

    // --- UDP ----------------------------------------------------------

    /// Binds a UDP socket to `port`.
    // ukcheck: allow(alloc) -- socket creation is control plane; the
    // per-datagram path reuses the queue allocated here
    pub fn udp_bind(&mut self, port: u16) -> Result<SocketHandle> {
        if self.udp_ports.contains_key(&port) {
            return Err(Errno::AddrInUse);
        }
        let h = self.handle();
        self.udp_socks.insert(
            h,
            UdpSocket {
                port,
                rx: VecDeque::new(),
                rx_total: 0,
            },
        );
        self.udp_ports.insert(port, h);
        Ok(SocketHandle(h))
    }

    /// Builds and routes one datagram (payload written once, headers
    /// prepended in place, checksum offloaded when the device supports
    /// it) *without* flushing — the shared staging half of
    /// [`udp_send_to`](Self::udp_send_to) and
    /// [`udp_send_burst`](Self::udp_send_burst).
    fn stage_udp(&mut self, src_port: u16, data: &[u8], to: Endpoint) -> Result<()> {
        let mut nb = self.take_buf();
        if data.len() > nb.tailroom() {
            self.recycle(nb);
            return Err(Errno::Inval); // Larger than MTU-sized buffers.
        }
        nb.append(data);
        let ip = Ipv4Header {
            src: self.config.ip,
            dst: to.addr,
            proto: IpProto::Udp,
            payload_len: UDP_HDR_LEN + data.len(),
            ttl: 64,
        };
        let hdr = UdpHeader {
            src_port,
            dst_port: to.port,
        };
        if self.csum_offload {
            hdr.encode_into_partial(&ip, &mut nb);
            self.stats.csum_offloaded += 1;
        } else {
            hdr.encode_into(&ip, &mut nb);
        }
        ip.encode_into(&mut nb);
        self.send_ipv4_nb(to.addr, IpProto::Udp, nb);
        Ok(())
    }

    /// Sends a datagram: the payload is written once into a pooled
    /// buffer and UDP/IP/Ethernet headers are prepended in place.
    ///
    /// The stack does not fragment: payloads beyond a packet buffer's
    /// tailroom ([`BUF_CAP`] − [`TX_HEADROOM`] = 1952 bytes — already
    /// past the 1500-byte wire MTU) are rejected with `EINVAL`.
    pub fn udp_send_to(&mut self, sock: SocketHandle, data: &[u8], to: Endpoint) -> Result<()> {
        let src_port = self
            .udp_socks
            .get(&sock.0)
            .ok_or(Errno::BadF)?
            .port;
        self.stage_udp(src_port, data, to)?;
        self.flush_tx()
    }

    /// `sendmmsg`-style burst send: stages every `(payload, dest)`
    /// datagram, then pushes the whole batch to the device in bursts —
    /// one `tx_burst` sweep instead of one flush per datagram.
    ///
    /// Returns the datagrams sent. Like `sendmmsg(2)`, a failing
    /// datagram stops the burst and is reported as an error only when
    /// nothing was sent before it.
    pub fn udp_send_burst<'a, I>(&mut self, sock: SocketHandle, msgs: I) -> Result<usize>
    where
        I: IntoIterator<Item = (&'a [u8], Endpoint)>,
    {
        let src_port = self
            .udp_socks
            .get(&sock.0)
            .ok_or(Errno::BadF)?
            .port;
        let mut sent = 0;
        let mut first_err = None;
        for (data, to) in msgs {
            match self.stage_udp(src_port, data, to) {
                Ok(()) => sent += 1,
                Err(e) => {
                    first_err = Some(e);
                    break;
                }
            }
        }
        let flushed = self.flush_tx();
        if sent == 0 {
            if let Some(e) = first_err {
                return Err(e);
            }
            flushed?;
        }
        // Partial success wins over a late error (sendmmsg contract):
        // a flush failure leaves the tail staged for the next flush,
        // nothing is lost.
        Ok(sent)
    }

    /// Receives a datagram, if one is queued (allocating convenience
    /// wrapper over [`udp_recv_into`](Self::udp_recv_into)).
    // ukcheck: allow(alloc) -- documented allocating convenience API;
    // zero-copy callers use `udp_recv_into` instead
    pub fn udp_recv_from(&mut self, sock: SocketHandle) -> Option<(Endpoint, Vec<u8>)> {
        let (from, nb) = self.udp_socks.get_mut(&sock.0)?.rx.pop_front()?;
        let data = nb.payload().to_vec();
        self.recycle(nb);
        self.sync_one(sock.0);
        Some((from, data))
    }

    /// Copies the next queued datagram into `out` (truncating to fit)
    /// and recycles its buffer — the allocation-free receive path.
    /// Returns the sender and the copied length.
    pub fn udp_recv_into(
        &mut self,
        sock: SocketHandle,
        out: &mut [u8],
    ) -> Option<(Endpoint, usize)> {
        let (from, nb) = self.udp_socks.get_mut(&sock.0)?.rx.pop_front()?;
        let n = nb.len().min(out.len());
        out[..n].copy_from_slice(&nb.payload()[..n]);
        self.recycle(nb);
        self.sync_one(sock.0);
        Some((from, n))
    }

    /// Takes the next queued datagram as the pooled buffer it arrived
    /// in (payload trimmed to the UDP body) — the zero-copy UDP
    /// receive path, same ownership contract as
    /// [`tcp_recv_netbuf`](Self::tcp_recv_netbuf): the caller hands
    /// the buffer back via [`recycle`](Self::recycle) when done.
    pub fn udp_recv_netbuf(&mut self, sock: SocketHandle) -> Option<(Endpoint, Netbuf)> {
        let (from, nb) = self.udp_socks.get_mut(&sock.0)?.rx.pop_front()?;
        self.sync_one(sock.0);
        Some((from, nb))
    }

    /// `recvmmsg`-style burst receive: drains up to `max` queued
    /// datagrams, packing their payloads back-to-back into `buf` and
    /// appending one `(sender, length)` pair per datagram to `msgs`
    /// (the caller slices `buf` by running offset). Stops early when
    /// the remaining space cannot hold the next datagram whole (no
    /// truncation in burst mode — size `buf` for `max` MTU-sized
    /// datagrams). Returns the datagrams received this call.
    ///
    /// Allocation-free in steady state: payloads copy straight from
    /// the queued netbufs, which recycle into the pool.
    pub fn udp_recv_burst_into(
        &mut self,
        sock: SocketHandle,
        buf: &mut [u8],
        msgs: &mut Vec<(Endpoint, usize)>,
        max: usize,
    ) -> usize {
        let mut pool = self.pool.take();
        let mut received = 0;
        let mut off = 0;
        if let Some(s) = self.udp_socks.get_mut(&sock.0) {
            while received < max {
                let fits = match s.rx.front() {
                    Some((_, nb)) => off + nb.len() <= buf.len(),
                    None => false,
                };
                if !fits {
                    break;
                }
                let Some((from, nb)) = s.rx.pop_front() else {
                    // `fits` proved front() was Some; bail defensively
                    // rather than panic if that invariant ever breaks.
                    debug_assert!(false, "rx queue emptied between front() and pop_front()");
                    break;
                };
                buf[off..off + nb.len()].copy_from_slice(nb.payload());
                msgs.push((from, nb.len()));
                off += nb.len();
                received += 1;
                if let Some(p) = pool.as_mut() {
                    if p.owns(&nb) {
                        p.give_back(nb);
                    }
                }
            }
        }
        self.pool = pool;
        if received > 0 {
            self.sync_one(sock.0);
        }
        received
    }

    // --- TCP ----------------------------------------------------------

    /// Starts listening on `port`.
    // ukcheck: allow(alloc) -- listener creation is control plane; the
    // SYN/accept queues are pre-sized to the backlog here so the
    // handshake path never grows them
    pub fn tcp_listen(&mut self, port: u16) -> Result<SocketHandle> {
        if self.listeners.contains_key(&port) {
            return Err(Errno::AddrInUse);
        }
        self.listeners.insert(
            port,
            TcpListener {
                syn_queue: VecDeque::with_capacity(self.config.listen_backlog),
                backlog: VecDeque::with_capacity(self.config.listen_backlog),
                accepted_total: 0,
            },
        );
        Ok(SocketHandle(port as usize | LISTENER_TAG))
    }

    /// Accepts a pending connection, if any. Only fully established
    /// connections ever reach the accept backlog — half-open ones wait
    /// in the listener's SYN queue until their handshake completes.
    pub fn tcp_accept(&mut self, listener: SocketHandle) -> Option<SocketHandle> {
        if listener.0 & LISTENER_TAG == 0 {
            return None;
        }
        let port = (listener.0 & 0xffff) as u16;
        let r = self.listeners.get_mut(&port)?.backlog.pop_front();
        self.sync_one(listener.0);
        r
    }

    /// Starts an active connection; completes after network pumping.
    ///
    /// Ephemeral port selection scans for a port whose `(port, peer)`
    /// flow key is free: a flow lingering in TIME_WAIT blocks only its
    /// exact 4-tuple, and its 2MSL reap recycles the port.
    pub fn tcp_connect(&mut self, to: Endpoint) -> Result<SocketHandle> {
        let mut port = self.next_ephemeral;
        let mut chosen = None;
        for _ in 0..=(65535u32 - 49152) {
            if self.flow.get(flow_key(port, to)).is_none() {
                chosen = Some(port);
                break;
            }
            port = if port == 65535 { 49152 } else { port + 1 };
        }
        let local_port = chosen.ok_or(Errno::AddrInUse)?;
        self.next_ephemeral = if local_port == 65535 { 49152 } else { local_port + 1 };
        self.iss = self.iss.wrapping_add(64_000);
        let mut tcb = Tcb::connect(local_port, to.port, self.iss);
        if self.config.lean_tcbs {
            tcb.shrink_queues();
        }
        tcb.set_mss(self.config.mss);
        tcb.set_congestion_control(self.config.congestion_control);
        tcb.set_lifecycle_enabled(self.clock.is_some());
        tcb.set_delayed_ack(self.config.delayed_ack && self.clock.is_some());
        tcb.set_sack(self.config.sack);
        // RACK and pacing need a timebase: without a clock the dup-ACK
        // threshold and burst emission stay in force.
        tcb.set_rack(self.config.rack && self.clock.is_some());
        tcb.set_pacing(self.config.pacing && self.clock.is_some());
        let now = self.now_ns();
        if let Some(n) = now {
            tcb.set_now(n);
        }
        let h = self.alloc_conn(tcb, to, local_port, now.unwrap_or(0));
        self.flush_tcp()?;
        Ok(SocketHandle(h))
    }

    /// Connection state.
    pub fn tcp_state(&self, conn: SocketHandle) -> Option<TcpState> {
        self.conn(conn.0).map(|c| c.tcb.state)
    }

    /// Queues data on a connection, returning the bytes accepted — a
    /// partial write when the send buffer is short on space (`EAGAIN`
    /// when it is full because the peer's window stays closed).
    pub fn tcp_send(&mut self, conn: SocketHandle, data: &[u8]) -> Result<usize> {
        let accepted = self.tcp_send_queued(conn, data)?;
        self.flush_tcp()?;
        Ok(accepted)
    }

    /// Queues data on a connection *without* flushing segments to the
    /// device — the burst-TX half of [`tcp_send`](Self::tcp_send).
    /// Callers batch any number of sends across any number of
    /// connections inside one event-loop turn, then emit everything as
    /// a single burst with [`flush_output`](Self::flush_output).
    ///
    /// The bytes are written **once**, directly into pooled buffers on
    /// the connection's zero-copy send queue; emission moves those
    /// buffers into outgoing frames (chained into super-segments on
    /// the TSO path) without ever re-copying the payload.
    pub fn tcp_send_queued(&mut self, conn: SocketHandle, data: &[u8]) -> Result<usize> {
        let mut pool = self.pool.take();
        let r = match self.conn_mut(conn.0) {
            Some(c) => c.tcb.app_send_with(data, || {
                pool.as_mut()
                    .and_then(|p| p.take())
                    .unwrap_or_else(|| Netbuf::alloc(BUF_CAP, TX_HEADROOM))
            }),
            None => Err(Errno::BadF),
        };
        self.pool = pool;
        let accepted = r?;
        self.mark_dirty_handle(conn.0);
        self.sync_one(conn.0);
        Ok(accepted)
    }

    /// Emits all pending transport output as one burst: segments every
    /// connection's send queue into pooled buffers and pushes the
    /// staged frames through `tx_burst` sweeps. The companion to
    /// [`tcp_send_queued`](Self::tcp_send_queued) (idempotent when
    /// there is nothing to send) — one event-loop turn, one flush.
    pub fn flush_output(&mut self) -> Result<()> {
        self.flush_tcp()
    }

    /// Reads up to `max` bytes from a connection (allocating
    /// convenience wrapper over [`tcp_recv_into`](Self::tcp_recv_into)).
    // ukcheck: allow(alloc) -- documented allocating convenience API;
    // zero-copy callers use `tcp_recv_into` instead
    pub fn tcp_recv(&mut self, conn: SocketHandle, max: usize) -> Result<Vec<u8>> {
        let readable = self.conn(conn.0).ok_or(Errno::BadF)?.tcb.readable();
        let mut data = vec![0u8; max.min(readable)];
        let n = self.tcp_recv_into(conn, &mut data)?;
        data.truncate(n);
        Ok(data)
    }

    /// Copies buffered received bytes into `out` — the allocation-free
    /// receive *copy* path (the zero-copy path is
    /// [`tcp_recv_netbuf`](Self::tcp_recv_netbuf)). Drained queue
    /// buffers recycle straight back to the pool. May emit a
    /// window-update ACK when a previously-zero receive window reopens.
    pub fn tcp_recv_into(&mut self, conn: SocketHandle, out: &mut [u8]) -> Result<usize> {
        let mut pool = self.pool.take();
        let r = match self.conn_mut(conn.0) {
            Some(c) => Ok(c.tcb.app_recv_into_with(out, |nb| {
                if let Some(p) = pool.as_mut() {
                    p.give_back_chain(nb);
                }
            })),
            None => Err(Errno::BadF),
        };
        self.pool = pool;
        let n = r?;
        self.mark_dirty_handle(conn.0);
        self.flush_tcp()?;
        self.sync_one(conn.0);
        Ok(n)
    }

    /// Takes the next received buffer whole — the **zero-copy receive
    /// path**: the pooled netbuf the peer's bytes arrived in (trimmed
    /// to its TCP payload extent) moves straight to the application,
    /// no copy anywhere between the wire and the caller.
    ///
    /// **Ownership contract:** the caller owns the buffer and must
    /// hand it back with [`recycle`](Self::recycle) once consumed —
    /// that returns it to the owning pool (buffers from other pools or
    /// the heap are simply dropped there). Holding buffers
    /// indefinitely pins pool capacity. A window-update ACK may be
    /// staged when a previously-zero receive window reopens; it is
    /// flushed here only when output is actually pending.
    pub fn tcp_recv_netbuf(&mut self, conn: SocketHandle) -> Option<Netbuf> {
        let c = self.conn_mut(conn.0)?;
        let nb = c.tcb.app_recv_netbuf()?;
        if c.tcb.has_pending_control() {
            self.mark_dirty_handle(conn.0);
            let _ = self.flush_tcp();
        }
        self.sync_one(conn.0);
        Some(nb)
    }

    /// Burst form of [`tcp_recv_netbuf`](Self::tcp_recv_netbuf):
    /// drains up to `max` queued payload buffers into `out` with one
    /// readiness sync and at most one output flush for the whole
    /// batch. Returns the buffers taken; the ownership/recycle
    /// contract is the same.
    pub fn tcp_recv_burst_netbuf(
        &mut self,
        conn: SocketHandle,
        out: &mut Vec<Netbuf>,
        max: usize,
    ) -> usize {
        let Some(c) = self.conn_mut(conn.0) else {
            return 0;
        };
        let mut taken = 0;
        while taken < max {
            match c.tcb.app_recv_netbuf() {
                Some(nb) => {
                    out.push(nb);
                    taken += 1;
                }
                None => break,
            }
        }
        let pending = c.tcb.has_pending_control();
        if taken > 0 {
            if pending {
                self.mark_dirty_handle(conn.0);
                let _ = self.flush_tcp();
            }
            self.sync_one(conn.0);
        }
        taken
    }

    /// Free send-buffer space on a connection (0 for closed handles).
    pub fn tcp_send_capacity(&self, conn: SocketHandle) -> usize {
        self.conn(conn.0).map(|c| c.tcb.send_capacity()).unwrap_or(0)
    }

    /// Whether the peer's advertised receive window admits no more data.
    pub fn tcp_window_closed(&self, conn: SocketHandle) -> bool {
        self.conn(conn.0).map(|c| c.tcb.window_closed()).unwrap_or(true)
    }

    /// Loss-recovery counters for one connection — cumulative
    /// `(rto_fires, retransmits, fast_retransmits, ooo_queued)`, for
    /// tests and diagnostics. The stack-wide `netstack.tcp.*` counters
    /// aggregate the same values across connections.
    pub fn tcp_loss_stats(&self, conn: SocketHandle) -> (u64, u64, u64, u64) {
        self.conn(conn.0)
            .map(|c| {
                (
                    c.tcb.rto_fires(),
                    c.tcb.retransmits(),
                    c.tcb.fast_retransmits(),
                    c.tcb.ooo_queued(),
                )
            })
            .unwrap_or((0, 0, 0, 0))
    }

    /// Surgical-recovery counters for one connection — cumulative
    /// `(sack_rtx, spurious_rtx, tlp_probes, paced_releases, ooo_shed)`,
    /// the PR 9 companions to [`tcp_loss_stats`](Self::tcp_loss_stats).
    pub fn tcp_recovery_stats(&self, conn: SocketHandle) -> (u64, u64, u64, u64, u64) {
        self.conn(conn.0)
            .map(|c| {
                (
                    c.tcb.sack_rtx(),
                    c.tcb.spurious_rtx(),
                    c.tcb.tlp_probes(),
                    c.tcb.paced_releases(),
                    c.tcb.ooo_shed(),
                )
            })
            .unwrap_or((0, 0, 0, 0, 0))
    }

    /// Current congestion window (bytes) for one connection.
    pub fn tcp_cwnd(&self, conn: SocketHandle) -> usize {
        self.conn(conn.0).map(|c| c.tcb.cwnd()).unwrap_or(0)
    }

    /// Bytes ready to read.
    pub fn tcp_readable(&self, conn: SocketHandle) -> usize {
        self.conn(conn.0).map(|c| c.tcb.readable()).unwrap_or(0)
    }

    /// Whether the peer closed (EOF).
    pub fn tcp_peer_closed(&self, conn: SocketHandle) -> bool {
        self.conn(conn.0).map(|c| c.tcb.peer_closed()).unwrap_or(true)
    }

    /// The remote endpoint of a connection (`getpeername` shape).
    pub fn tcp_peer(&self, conn: SocketHandle) -> Option<Endpoint> {
        self.conn(conn.0).map(|c| c.remote)
    }

    /// Starts an orderly close.
    pub fn tcp_close(&mut self, conn: SocketHandle) -> Result<()> {
        let c = self.conn_mut(conn.0).ok_or(Errno::BadF)?;
        c.tcb.app_close();
        self.mark_dirty_handle(conn.0);
        let r = self.flush_tcp();
        self.sync_one(conn.0);
        r
    }

    // --- Data path ----------------------------------------------------

    /// Takes a TX buffer (pool or heap — the application's choice,
    /// §3.1) with [`TX_HEADROOM`] reserved for headers.
    fn take_buf(&mut self) -> Netbuf {
        match self.pool.as_mut().and_then(|p| p.take()) {
            Some(nb) => nb,
            None => Netbuf::alloc(BUF_CAP, TX_HEADROOM),
        }
    }

    /// Takes an RX buffer (no headroom: the wire writes whole frames).
    /// The wire harness fills it and injects it with
    /// [`deliver_frame`](Self::deliver_frame).
    pub fn take_rx_buf(&mut self) -> Netbuf {
        match self.pool.as_mut().and_then(|p| p.take()) {
            Some(mut nb) => {
                nb.reset(0);
                nb
            }
            None => Netbuf::alloc(BUF_CAP, 0),
        }
    }

    /// Returns a finished buffer — or a whole scatter-gather chain —
    /// to the stack's pool (heap and foreign buffers are simply
    /// dropped). Everyone who takes a netbuf out of this stack — the
    /// wire harness via [`harvest_tx`](Self::harvest_tx), readers via
    /// the `*_recv_into` paths — hands it back here.
    pub fn recycle(&mut self, mut nb: Netbuf) {
        if let Some(hold) = nb.take_tcp_hold() {
            self.rtx_return_chain(hold, nb);
            return;
        }
        self.recycle_plain(nb);
    }

    /// Pool return without retransmission interception.
    fn recycle_plain(&mut self, mut nb: Netbuf) {
        if let Some(pool) = self.pool.as_mut() {
            pool.give_back_chain(nb);
        } else {
            // No pool: still unlink the chain so fragments drop flat.
            while nb.pop_frag().is_some() {}
        }
    }

    /// A TCP data frame came back from the wire (TX-complete harvest or
    /// ARP-queue eviction): instead of returning it to the pool, strip
    /// the protocol headers off the head (restoring its headroom) and
    /// file the payload extents back into the owning connection's
    /// retransmission queue keyed by sequence number. Extents the TCB
    /// no longer needs — already acknowledged, duplicate coverage,
    /// connection gone — fall through to the pool as usual, so nothing
    /// leaks.
    fn rtx_return_chain(&mut self, hold: TcpHold, mut head: Netbuf) {
        head.take_csum_request();
        head.take_gso_request();
        // All protocol headers live in the head buffer.
        let hdr = head.chain_len().saturating_sub(hold.payload_len as usize);
        if hdr <= head.len() {
            head.pull_header(hdr);
        }
        let mut scratch = core::mem::take(&mut self.hold_scratch);
        scratch.clear();
        head.take_frags_into(&mut scratch);
        scratch.insert(0, head);
        let mut seq = hold.seq;
        for mut ext in scratch.drain(..) {
            let len = ext.len() as u32;
            ext.take_csum_request();
            ext.take_gso_request();
            let back = match self.conn_mut(hold.conn as usize) {
                Some(c) => c.tcb.rtx_return(seq, hold.sent_ns, ext),
                None => Some(ext),
            };
            if let Some(nb) = back {
                self.recycle_plain(nb);
            }
            seq = seq.wrapping_add(len);
        }
        self.hold_scratch = scratch;
        self.mark_dirty_handle(hold.conn as usize);
    }

    /// Prepends the Ethernet header and stages the frame for the next
    /// TX burst.
    fn stage_eth(&mut self, dst: Mac, ethertype: EtherType, mut nb: Netbuf) {
        EthHeader {
            dst,
            src: self.config.mac,
            ethertype,
        }
        .encode_into(&mut nb);
        self.tx_stage.push(nb);
    }

    /// Pushes staged frames into the device (one burst call per
    /// `MAX_BURST` frames; leftovers stay staged if the ring fills).
    fn flush_tx(&mut self) -> Result<()> {
        while !self.tx_stage.is_empty() {
            let st = self.dev.tx_burst(0, &mut self.tx_stage)?;
            if st.stats.frames == 0 {
                break; // Ring full; retried on the next flush.
            }
            self.stats.tx_frames += st.stats.frames as u64;
            self.stats.tx_bytes += st.stats.bytes as u64;
            self.stats.tx_bursts += 1;
            self.ustats.tx_frames.add(st.stats.frames as u64);
            self.ustats.tx_bytes.add(st.stats.bytes as u64);
            self.ustats.tx_bursts.inc();
        }
        Ok(())
    }

    /// Resolves a next-hop MAC through the per-burst memo first, then
    /// the ARP table (memoizing a hit). The memo is cleared at every
    /// `pump` and whenever the ARP table learns a mapping, so one
    /// burst's worth of frames to the same few peers pays one table
    /// lookup per peer.
    fn lookup_next_hop(&mut self, dst: Ipv4Addr) -> Option<Mac> {
        if let Some(&(_, mac)) = self.arp_memo.iter().find(|(ip, _)| *ip == dst) {
            return Some(mac);
        }
        let mac = self.arp.lookup(dst)?;
        if self.arp_memo.len() < ARP_MEMO_SIZE {
            self.arp_memo.push((dst, mac));
        }
        Some(mac)
    }

    /// Stages a broadcast who-has request for `dst`.
    fn stage_arp_request(&mut self, dst: Ipv4Addr) {
        let req = ArpPacket {
            op: ArpOp::Request,
            sha: self.config.mac,
            spa: self.config.ip,
            tha: Mac([0; 6]),
            tpa: dst,
        };
        let mut anb = self.take_buf();
        anb.append(&req.encode());
        self.stage_eth(Mac::BROADCAST, EtherType::Arp, anb);
        self.ustats.arp_requests_tx.inc();
        uktrace::trace!(self.trace, tp::arp_request_tx, dst.0);
    }

    /// Routes an IP-level packet (headers already in place, Ethernet
    /// headroom reserved): resolved destinations are staged for TX,
    /// unresolved ones park under the pending ARP request. Parking is
    /// bounded (soft cap evicting droppable traffic first, hard cap
    /// evicting anything) so an unreachable next-hop cannot pin the
    /// buffer pool, and the who-has broadcast is re-issued every
    /// [`ARP_REQUEST_RETRY_EVERY`] parked packets.
    fn send_ipv4_nb(&mut self, dst: Ipv4Addr, proto: IpProto, nb: Netbuf) {
        match self.lookup_next_hop(dst) {
            Some(mac) => self.stage_eth(mac, EtherType::Ipv4, nb),
            None => {
                let (evicted, request_due, queued) = {
                    let pending = self.arp_pending.entry(dst).or_default();
                    pending.packets.push((proto, nb));
                    pending.parked_total += 1;
                    let evicted = if pending.packets.len() > ARP_PENDING_HARD_CAP {
                        Some(pending.packets.remove(0))
                    } else if pending.packets.len() > ARP_PENDING_CAP {
                        pending
                            .packets
                            .iter()
                            .position(|(p, _)| *p != IpProto::Tcp)
                            .map(|i| pending.packets.remove(i))
                    } else {
                        None
                    };
                    (
                        evicted,
                        pending.parked_total % ARP_REQUEST_RETRY_EVERY == 1,
                        pending.packets.len(),
                    )
                };
                self.ustats.arp_parked.inc();
                self.ustats.arp_parked_hiwater.set_max(queued as u64);
                uktrace::trace!(self.trace, tp::arp_parked, dst.0, queued);
                if let Some((_, old)) = evicted {
                    self.stats.dropped += 1;
                    self.ustats.dropped.inc();
                    self.ustats.arp_evicted.inc();
                    self.recycle(old);
                }
                if request_due {
                    self.stage_arp_request(dst);
                }
            }
        }
    }

    /// The quiet-queue who-has retry (run once per `pump`): every
    /// pending next-hop ticks a per-burst counter and re-broadcasts
    /// its request every [`ARP_REQUEST_RETRY_PUMPS`] pumps. The
    /// per-parked-packet cadence in [`send_ipv4_nb`](Self::send_ipv4_nb)
    /// only fires while *new* packets keep parking; this one keeps
    /// parked packets making progress after the application goes
    /// quiet.
    fn arp_retry_tick(&mut self) {
        if self.arp_pending.is_empty() {
            return;
        }
        let mut due = std::mem::take(&mut self.arp_retry_scratch);
        due.clear();
        for (dst, pending) in self.arp_pending.iter_mut() {
            if pending.packets.is_empty() {
                continue;
            }
            pending.pump_ticks += 1;
            if pending.pump_ticks % ARP_REQUEST_RETRY_PUMPS == 0 {
                due.push(*dst);
            }
        }
        for dst in due.drain(..) {
            self.stage_arp_request(dst);
        }
        self.arp_retry_scratch = due;
    }

    /// Emits all pending TCP output: each segment is cut from the send
    /// buffer straight into a pooled netbuf (payload first, then
    /// TCP/IP headers prepended in place) — no intermediate `Vec`s.
    ///
    /// With TSO on, a connection's whole sendable window leaves as
    /// *one* frame per `gso_max_size` bytes: the payload streams into
    /// a scatter-gather chain, the headers describe the super-segment,
    /// and a [`GsoRequest`](uknetdev::netbuf::GsoRequest) tells the
    /// host side to cut the per-MSS wire frames — the per-segment
    /// header encode / checksum stamp / staging / ring costs are paid
    /// once per super-segment instead of once per MSS.
    fn flush_tcp(&mut self) -> Result<()> {
        let mut staged = std::mem::take(&mut self.tcp_stage);
        // Both the TCB's buffer supplier and the frame finisher need
        // the pool, so it lives in a local cell for the duration.
        let pool = std::cell::RefCell::new(self.pool.take());
        let take_buf = || {
            pool.borrow_mut()
                .as_mut()
                .and_then(|p| p.take())
                .unwrap_or_else(|| Netbuf::alloc(BUF_CAP, TX_HEADROOM))
        };
        let src_ip = self.config.ip;
        let offload = self.csum_offload;
        let tso = self.tso;
        let gso_max = self.config.gso_max_size;
        let mut offloaded = 0u64;
        let mut supers = 0u64;
        let mut super_bytes = 0u64;
        let mut rtx_delta = 0u64;
        let mut sack_rtx_delta = 0u64;
        let now = self.now_ns();
        // Only dirty connections are polled — at 100 K idle
        // connections the flush touches none of them. The list is
        // walked by index (not drained) because segment emission below
        // can re-mark connections mid-walk via `rtx_return_chain`.
        let mut i = 0;
        while i < self.dirty.len() {
            let slot = self.dirty[i];
            i += 1;
            let Some(cs) = self.conn_slots.get_mut(slot as usize) else {
                continue;
            };
            let gen = cs.gen;
            let Some(c) = cs.conn.as_mut() else { continue };
            if !c.dirty {
                continue;
            }
            c.dirty = false;
            let h = conn_handle(slot, gen);
            if let Some(n) = now {
                c.tcb.set_now(n);
            }
            let dst = c.remote.addr;
            let mss = c.tcb.mss();
            // The GSO budget is floored to a multiple of the MSS so a
            // super-segment boundary never forces a short wire frame
            // mid-stream — the cut frames land on exactly the byte
            // boundaries software segmentation would produce.
            let max_seg = if tso { (gso_max / mss).max(1) * mss } else { mss };
            let rtx0 = c.tcb.retransmits();
            let sack_rtx0 = c.tcb.sack_rtx();
            // The receiver half's SACK report for this poll: D-SACK
            // plus the reassembly queue's extents, encoded once and
            // attached to the first *pure ACK* the poll emits (the GSO
            // cutter forbids options on data frames, and a poll that
            // owes the peer a SACK always emits a pure ACK).
            let mut sack_opt = [0u8; TCP_MAX_OPT_LEN];
            let sack_len = c.tcb.fill_sack_option(&mut sack_opt);
            let sack_on = c.tcb.sack_enabled();
            let mut sack_used = false;
            c.tcb.poll_output_chain_with(max_seg, &take_buf, |header, chain| {
                // Data rides in as the send queue's own buffers —
                // chained for a super-segment, a single moved buffer
                // otherwise; control segments get a fresh head.
                let was_data = chain.is_some();
                let mut nb = chain.unwrap_or_else(&take_buf);
                let plen = nb.chain_len();
                // Options ride only on control segments: SACK-permitted
                // on SYN / SYN-ACK, SACK blocks on the poll's first
                // pure ACK.
                let opts: &[u8] = if was_data || header.flags.rst {
                    &[]
                } else if header.flags.syn && sack_on {
                    &SACK_PERMITTED_OPT
                } else if header.flags.ack && !header.flags.syn && !sack_used && sack_len > 0
                {
                    sack_used = true;
                    &sack_opt[..sack_len]
                } else {
                    &[]
                };
                let ip = Ipv4Header {
                    src: src_ip,
                    dst,
                    proto: IpProto::Tcp,
                    payload_len: TCP_HDR_LEN + opts.len() + plen,
                    ttl: 64,
                };
                if plen > mss {
                    // Super-segment: headers on the chain head, MSS
                    // cutting offloaded to the device's host side.
                    header.encode_into_gso(&ip, &mut nb, mss as u16);
                    offloaded += 1;
                    supers += 1;
                    super_bytes += plen as u64;
                    uktrace::trace!(self.trace, tp::tso_super_tx, plen, mss);
                } else if !opts.is_empty() {
                    if offload {
                        header.encode_into_partial_opts(&ip, &mut nb, opts);
                        offloaded += 1;
                    } else {
                        header.encode_into_opts(&ip, &mut nb, opts);
                    }
                } else if offload {
                    header.encode_into_partial(&ip, &mut nb);
                    offloaded += 1;
                } else {
                    header.encode_into(&ip, &mut nb);
                }
                uktrace::trace!(self.trace, tp::tcp_segment_tx, header.dst_port, header.seq);
                ip.encode_into(&mut nb);
                if was_data {
                    // Tag unacknowledged data so the recycle path files
                    // the payload into the retransmission queue instead
                    // of the pool (see `rtx_return_chain`), stamped
                    // with the transmit time RACK's loss logic keys on.
                    nb.set_tcp_hold(h as u64, header.seq, plen as u32, now.unwrap_or(0));
                }
                staged.push((dst, nb));
            });
            let d = c.tcb.retransmits() - rtx0;
            if d > 0 {
                rtx_delta += d;
                uktrace::trace!(self.trace, tp::tcp_retransmit, h, d);
            }
            let ds = c.tcb.sack_rtx() - sack_rtx0;
            if ds > 0 {
                sack_rtx_delta += ds;
                uktrace::trace!(self.trace, tp::tcp_sack_rtx, h, ds);
            }
            self.ustats.tcp_cwnd.set(c.tcb.cwnd() as u64);
            if c.tcb.rack_enabled() {
                self.ustats.tcp_rack_reorder_window_ns.set(c.tcb.reo_wnd_ns());
            }
        }
        self.ustats.tcp_retransmits.add(rtx_delta);
        self.ustats.tcp_sack_rtx.add(sack_rtx_delta);
        self.pool = pool.into_inner();
        self.stats.csum_offloaded += offloaded;
        self.stats.tso_super_frames += supers;
        self.stats.tso_super_bytes += super_bytes;
        self.ustats.csum_offloaded.add(offloaded);
        self.ustats.tso_super_frames.add(supers);
        self.ustats.tso_super_bytes.add(super_bytes);
        // Second pass: mirror every polled connection's timer wants
        // (RTO, delayed ACK, lifecycle) into the wheel.
        if let Some(n) = now {
            let mut i = 0;
            while i < self.dirty.len() {
                let slot = self.dirty[i];
                i += 1;
                self.sync_conn_timers(slot, n);
            }
        }
        self.dirty.clear();
        for (dst, nb) in staged.drain(..) {
            self.send_ipv4_nb(dst, IpProto::Tcp, nb);
        }
        self.tcp_stage = staged;
        self.flush_tx()
    }

    /// Advances the hierarchical timer wheel to the virtual clock (a
    /// no-op until [`set_clock`](Self::set_clock) arms one) and
    /// dispatches every expired timer: RTO/persist fires, delayed-ACK
    /// deadlines, and lifecycle events (handshake timeout, keepalive
    /// probes, FIN-WAIT-2 orphan reaping, TIME_WAIT 2MSL expiry).
    /// Cost is O(expired timers), not O(connections) — 100 K idle
    /// connections cost the tick nothing.
    fn tcp_timer_tick(&mut self) {
        let Some(now) = self.now_ns() else { return };
        let mut fired = std::mem::take(&mut self.fired_scratch);
        fired.clear();
        self.wheel.advance(now, |key, deadline| fired.push((key, deadline)));
        for (key, _) in fired.drain(..) {
            self.dispatch_timer(key, now);
        }
        self.fired_scratch = fired;
    }

    /// Routes one expired wheel timer to its connection. The key
    /// carries the timer kind, the slot, and the generation the timer
    /// was armed under — a reused slot simply ignores stale fires.
    fn dispatch_timer(&mut self, key: u64, now: u64) {
        let kind = key >> 48;
        let gen = ((key >> 32) & 0xffff) as u16;
        let slot = (key & 0xffff_ffff) as u32;
        enum Act {
            None,
            Reap(u64),
        }
        let mut act = Act::None;
        {
            let Some(cs) = self.conn_slots.get_mut(slot as usize) else {
                return;
            };
            if cs.gen != gen {
                return;
            }
            let Some(c) = cs.conn.as_mut() else { return };
            match kind {
                TK_RTO => {
                    c.rto_tok = TimerToken::NONE;
                    c.rto_armed_ns = None;
                    if c.tcb.on_tick(now) {
                        self.ustats.tcp_rto_fires.inc();
                        uktrace::trace!(
                            self.trace,
                            tp::tcp_rto_fire,
                            conn_handle(slot, gen),
                            c.tcb.rto_fires()
                        );
                    }
                    if !c.dirty {
                        c.dirty = true;
                        self.dirty.push(slot);
                    }
                }
                TK_DELACK => {
                    c.delack_tok = TimerToken::NONE;
                    c.delack_armed_ns = None;
                    c.tcb.on_delack_timeout();
                    if !c.dirty {
                        c.dirty = true;
                        self.dirty.push(slot);
                    }
                }
                TK_RACK => {
                    c.rack_tok = TimerToken::NONE;
                    c.rack_armed_ns = None;
                    let fr0 = c.tcb.fast_retransmits();
                    let tlp0 = c.tcb.tlp_probes();
                    c.tcb.on_rack_timeout(now);
                    let fr = c.tcb.fast_retransmits() - fr0;
                    if fr > 0 {
                        self.ustats.tcp_fast_retransmits.add(fr);
                        uktrace::trace!(
                            self.trace,
                            tp::tcp_fast_retransmit,
                            conn_handle(slot, gen),
                            fr
                        );
                    }
                    let tlp = c.tcb.tlp_probes() - tlp0;
                    if tlp > 0 {
                        self.ustats.tcp_tlp_probes.add(tlp);
                        uktrace::trace!(
                            self.trace,
                            tp::tcp_tlp_probe,
                            conn_handle(slot, gen),
                            tlp
                        );
                    }
                    if !c.dirty {
                        c.dirty = true;
                        self.dirty.push(slot);
                    }
                }
                TK_PACE => {
                    c.pace_tok = TimerToken::NONE;
                    c.pace_armed_ns = None;
                    let p0 = c.tcb.paced_releases();
                    c.tcb.on_pace_timeout(now);
                    let p = c.tcb.paced_releases() - p0;
                    if p > 0 {
                        self.ustats.tcp_paced_releases.add(p);
                        uktrace::trace!(
                            self.trace,
                            tp::tcp_paced_release,
                            conn_handle(slot, gen),
                            p
                        );
                    }
                    if !c.dirty {
                        c.dirty = true;
                        self.dirty.push(slot);
                    }
                }
                TK_LIFE => {
                    c.life_tok = TimerToken::NONE;
                    match c.life_kind {
                        LifeKind::Handshake => act = Act::Reap(REAP_HANDSHAKE),
                        LifeKind::FinWait2 => act = Act::Reap(REAP_FINWAIT2),
                        LifeKind::TimeWait => act = Act::Reap(REAP_TIMEWAIT),
                        LifeKind::Reap => {
                            if c.tcb.readable() == 0 {
                                act = Act::Reap(REAP_CLOSED);
                            } else if !c.dirty {
                                // Application still owes a read; check
                                // again on the same cadence.
                                c.dirty = true;
                                self.dirty.push(slot);
                            }
                        }
                        LifeKind::Keepalive => {
                            let idle = now.saturating_sub(c.last_activity_ns);
                            if idle >= KEEPALIVE_IDLE_NS {
                                if c.ka_probes >= KEEPALIVE_PROBES {
                                    self.ustats.tcp_keepalive_drops.inc();
                                    act = Act::Reap(REAP_KEEPALIVE);
                                } else {
                                    c.ka_probes += 1;
                                    c.tcb.emit_keepalive_probe();
                                    uktrace::trace!(
                                        self.trace,
                                        tp::tcp_keepalive_probe,
                                        conn_handle(slot, gen),
                                        c.ka_probes as usize
                                    );
                                    if !c.dirty {
                                        c.dirty = true;
                                        self.dirty.push(slot);
                                    }
                                }
                            } else {
                                c.ka_probes = 0;
                                if !c.dirty {
                                    c.dirty = true;
                                    self.dirty.push(slot);
                                }
                            }
                        }
                        LifeKind::None => {}
                    }
                }
                _ => {}
            }
        }
        if let Act::Reap(reason) = act {
            self.reap_conn_slot(slot, reason);
        }
    }

    /// Mirrors one connection's timer wants into the wheel: the TCB's
    /// RTO/persist deadline, its delayed-ACK deadline, and the
    /// lifecycle deadline implied by its state. Re-arms only on
    /// change, so steady-state data flow costs one compare per kind.
    fn sync_conn_timers(&mut self, slot: u32, now: u64) {
        let keepalive = self.config.keepalive;
        let delayed_ack = self.config.delayed_ack;
        let Some(cs) = self.conn_slots.get_mut(slot as usize) else {
            return;
        };
        let gen = cs.gen;
        let Some(c) = cs.conn.as_mut() else { return };
        let want = c.tcb.rtx_deadline();
        if want != c.rto_armed_ns || (want.is_some() && c.rto_tok.is_none()) {
            self.wheel.cancel(c.rto_tok);
            c.rto_tok = TimerToken::NONE;
            c.rto_armed_ns = want;
            if let Some(d) = want {
                c.rto_tok = self.wheel.arm(d, timer_key(TK_RTO, slot, gen));
            }
        }
        let want = if delayed_ack { c.tcb.ack_deadline() } else { None };
        if want != c.delack_armed_ns || (want.is_some() && c.delack_tok.is_none()) {
            self.wheel.cancel(c.delack_tok);
            c.delack_tok = TimerToken::NONE;
            c.delack_armed_ns = want;
            if let Some(d) = want {
                c.delack_tok = self.wheel.arm(d, timer_key(TK_DELACK, slot, gen));
            }
        }
        let want = c.tcb.rack_deadline();
        if want != c.rack_armed_ns || (want.is_some() && c.rack_tok.is_none()) {
            self.wheel.cancel(c.rack_tok);
            c.rack_tok = TimerToken::NONE;
            c.rack_armed_ns = want;
            if let Some(d) = want {
                c.rack_tok = self.wheel.arm(d, timer_key(TK_RACK, slot, gen));
            }
        }
        let want = c.tcb.pace_deadline();
        if want != c.pace_armed_ns || (want.is_some() && c.pace_tok.is_none()) {
            self.wheel.cancel(c.pace_tok);
            c.pace_tok = TimerToken::NONE;
            c.pace_armed_ns = want;
            if let Some(d) = want {
                c.pace_tok = self.wheel.arm(d, timer_key(TK_PACE, slot, gen));
            }
        }
        let (kind, deadline) = match c.tcb.state {
            TcpState::SynSent | TcpState::SynReceived => {
                (LifeKind::Handshake, now + HANDSHAKE_TIMEOUT_NS)
            }
            TcpState::Established | TcpState::CloseWait if keepalive => {
                let idle_deadline = c.last_activity_ns + KEEPALIVE_IDLE_NS;
                let d = if idle_deadline <= now {
                    now + KEEPALIVE_INTVL_NS
                } else {
                    idle_deadline
                };
                (LifeKind::Keepalive, d)
            }
            TcpState::FinWait2 => (LifeKind::FinWait2, now + FINWAIT2_TIMEOUT_NS),
            TcpState::TimeWait => (LifeKind::TimeWait, now + 2 * TCP_MSL_NS),
            TcpState::Closed => (LifeKind::Reap, now + CLOSED_LINGER_NS),
            _ => (LifeKind::None, 0),
        };
        if kind != c.life_kind || (kind != LifeKind::None && c.life_tok.is_none()) {
            if kind == LifeKind::TimeWait && c.life_kind != LifeKind::TimeWait {
                self.ustats.tcp_timewait.inc();
                uktrace::trace!(
                    self.trace,
                    tp::tcp_time_wait,
                    conn_handle(slot, gen),
                    c.local_port as usize
                );
            }
            self.wheel.cancel(c.life_tok);
            c.life_tok = TimerToken::NONE;
            c.life_kind = kind;
            if kind != LifeKind::None {
                c.life_tok = self.wheel.arm(deadline, timer_key(TK_LIFE, slot, gen));
            }
        }
    }

    /// Answers a segment that matched no flow and no listener with a
    /// correctly-sequenced RST (RFC 793 §3.4): a connection that died
    /// here tells its peer immediately instead of letting it
    /// retransmit into a black hole. Never RSTs a RST.
    fn stage_rst(&mut self, dst: Ipv4Addr, tcp: &TcpHeader, payload_len: usize) {
        if tcp.flags.rst {
            return;
        }
        let (seq, ack, flags) = if tcp.flags.ack {
            // The peer told us what it expects next; answer from there
            // with a bare RST.
            (tcp.ack, 0, TcpFlags { rst: true, ..TcpFlags::default() })
        } else {
            // No ACK to echo: seq 0, and acknowledge everything the
            // segment occupied so the RST is acceptable to the peer.
            let occupied =
                payload_len as u32 + tcp.flags.syn as u32 + tcp.flags.fin as u32;
            (
                0,
                tcp.seq.wrapping_add(occupied),
                TcpFlags { rst: true, ack: true, ..TcpFlags::default() },
            )
        };
        let header = TcpHeader {
            src_port: tcp.dst_port,
            dst_port: tcp.src_port,
            seq,
            ack,
            flags,
            window: 0,
        };
        let mut nb = self.take_buf();
        let ip = Ipv4Header {
            src: self.config.ip,
            dst,
            proto: IpProto::Tcp,
            payload_len: TCP_HDR_LEN,
            ttl: 64,
        };
        if self.csum_offload {
            header.encode_into_partial(&ip, &mut nb);
        } else {
            header.encode_into(&ip, &mut nb);
        }
        ip.encode_into(&mut nb);
        self.ustats.tcp_rst_tx.inc();
        uktrace::trace!(self.trace, tp::tcp_rst_tx, header.dst_port, header.seq);
        self.send_ipv4_nb(dst, IpProto::Tcp, nb);
    }

    /// Processes received frames in bursts and flushes replies once.
    /// Returns the number of frames handled.
    ///
    /// This is the per-burst sweep of the burst datapath: each
    /// `rx_burst` batch is fully decoded and demultiplexed (replies
    /// and ACKs *staging*, not flushing — next-hop MACs come from the
    /// per-burst memo), and only after the ring runs dry does the
    /// stack run its transport sweep: who-has retries for parked
    /// queues, one `flush_tcp` segmenting every connection, one staged
    /// `tx_burst` push, one readiness sync. Per-packet overheads
    /// become per-burst overheads.
    pub fn pump(&mut self) -> usize {
        let sweep_start = std::time::Instant::now();
        let mut handled = 0;
        let mut frames = std::mem::take(&mut self.rx_scratch);
        self.arp_memo.clear();
        loop {
            let st = match self.dev.rx_burst(0, &mut frames, MAX_BURST) {
                Ok(st) => st,
                Err(_) => break,
            };
            if st.received > 0 {
                self.stats.rx_bursts += 1;
                self.ustats.rx_bursts.inc();
            }
            for nb in frames.drain(..) {
                if self.handle_frame(nb).is_ok() {
                    handled += 1;
                } else {
                    self.stats.dropped += 1;
                    self.ustats.dropped.inc();
                }
            }
            if st.received == 0 && !st.more {
                break;
            }
        }
        self.rx_scratch = frames;
        // End of the burst sweep: deliver every staged GRO run before
        // the transport flush, so the coalesced ACKs ride it.
        self.gro_flush();
        self.arp_retry_tick();
        self.tcp_timer_tick();
        let _ = self.flush_tcp();
        self.sync_readiness();
        self.ustats.pump_sweeps.inc();
        self.ustats
            .pump_ns
            .record(sweep_start.elapsed().as_nanos() as u64);
        if let Some(p) = self.pool.as_ref() {
            self.ustats
                .pool_inflight_hiwater
                .set_max((p.capacity() - p.low_water()) as u64);
        }
        handled
    }

    /// Reclaims completed TX frames into `out` as netbufs — the wire
    /// handoff (no copy-out; the old `Vec<Vec<u8>>` path is gone). The
    /// harness copies each frame onto the destination's RX buffers and
    /// returns ours via [`recycle`](Self::recycle).
    pub fn harvest_tx(&mut self, out: &mut Vec<Netbuf>) -> usize {
        self.dev.reclaim_tx(0, out).unwrap_or(0)
    }

    /// Injects a whole burst of frames into this stack's device RX
    /// ring with a single `inject_rx` call (the wire side — one
    /// boundary crossing per burst instead of per frame). Frames that
    /// do not fit (ring full) are dropped and their buffers recycled,
    /// like a real NIC. Returns the device's burst accounting.
    pub fn deliver_burst(&mut self, frames: &mut Vec<Netbuf>) -> BurstStats {
        let stats = self.dev.inject_rx(0, frames).unwrap_or(BurstStats {
            frames: 0,
            bytes: 0,
            drops: frames.len(),
        });
        while let Some(rest) = frames.pop() {
            self.stats.dropped += 1;
            self.ustats.dropped.inc();
            self.recycle(rest);
        }
        stats
    }

    /// Injects one frame into this stack's device RX ring (the wire
    /// side) — single-frame convenience over
    /// [`deliver_burst`](Self::deliver_burst).
    pub fn deliver_frame(&mut self, nb: Netbuf) {
        let mut scratch = std::mem::take(&mut self.inject_scratch);
        scratch.push(nb);
        self.deliver_burst(&mut scratch);
        self.inject_scratch = scratch;
    }

    fn handle_frame(&mut self, mut nb: Netbuf) -> Result<()> {
        self.stats.rx_frames += 1;
        self.ustats.rx_frames.inc();
        let eth = match EthHeader::decode(nb.payload()) {
            Ok((h, _)) => h,
            Err(e) => {
                self.recycle(nb);
                return Err(e);
            }
        };
        if eth.dst != self.config.mac && eth.dst != Mac::BROADCAST {
            self.recycle(nb);
            return Err(Errno::Inval);
        }
        nb.pull_header(ETH_HDR_LEN);
        match eth.ethertype {
            EtherType::Arp => {
                self.ustats.demux_arp.inc();
                let r = self.handle_arp(nb.payload());
                self.recycle(nb);
                r
            }
            EtherType::Ipv4 => self.handle_ipv4(nb),
        }
    }

    fn handle_arp(&mut self, data: &[u8]) -> Result<()> {
        let arp = ArpPacket::decode(data)?;
        match arp.op {
            ArpOp::Request => {
                uktrace::trace!(self.trace, tp::arp_request_rx, arp.spa.0);
            }
            ArpOp::Reply => {
                uktrace::trace!(self.trace, tp::arp_reply_rx, arp.spa.0);
            }
        }
        self.arp.insert(arp.spa, arp.sha);
        // The table changed: memoized next-hops may be stale.
        self.arp_memo.clear();
        // Release packets that were waiting on this mapping.
        if let Some(pending) = self.arp_pending.remove(&arp.spa) {
            for (_, nb) in pending.packets {
                self.stage_eth(arp.sha, EtherType::Ipv4, nb);
            }
        }
        if arp.op == ArpOp::Request && arp.tpa == self.config.ip {
            let reply = ArpPacket {
                op: ArpOp::Reply,
                sha: self.config.mac,
                spa: self.config.ip,
                tha: arp.sha,
                tpa: arp.spa,
            };
            let mut nb = self.take_buf();
            nb.append(&reply.encode());
            self.stage_eth(arp.sha, EtherType::Arp, nb);
        }
        Ok(())
    }

    /// Walks an IPv4 frame up the stack in place: the IP header is
    /// pulled, trailing Ethernet padding trimmed, and the same buffer
    /// continues to the transport layer.
    ///
    /// A frame the wire/device marked checksum-validated
    /// (`VIRTIO_NET_F_GUEST_CSUM`) skips the software IPv4-header and
    /// TCP/UDP checksum passes when RX checksum offload is on;
    /// unmarked frames are always fully verified.
    fn handle_ipv4(&mut self, mut nb: Netbuf) -> Result<()> {
        let trusted = self.rx_csum_offload && nb.csum_verified();
        if nb.has_frags() {
            // A big-receive super-segment: headers in the head buffer,
            // payload spanning the chain. Only the trusted wire
            // delivers these (GUEST_TSO4 requires GUEST_CSUM) — an
            // unmarked chain is a forgery and is dropped.
            if !trusted {
                self.recycle(nb);
                return Err(Errno::Inval);
            }
            return self.handle_super_frame(nb);
        }
        let decoded = if trusted {
            Ipv4Header::decode_trusted(nb.payload())
        } else {
            Ipv4Header::decode(nb.payload())
        };
        let (ip, body_len) = match decoded {
            Ok((h, body)) => (h, body.len()),
            Err(e) => {
                self.recycle(nb);
                return Err(e);
            }
        };
        if ip.dst != self.config.ip {
            self.recycle(nb);
            return Err(Errno::Inval);
        }
        if trusted && matches!(ip.proto, IpProto::Tcp | IpProto::Udp) {
            self.stats.rx_csum_skipped += 1;
            self.ustats.rx_csum_skipped.inc();
        }
        nb.pull_header(IPV4_HDR_LEN);
        nb.truncate(body_len);
        match ip.proto {
            IpProto::Udp => self.handle_udp(&ip, nb, trusted),
            IpProto::Tcp => self.handle_tcp_nb(&ip, nb, trusted),
            IpProto::Icmp => {
                let r = self.handle_icmp(&ip, nb.payload());
                self.recycle(nb);
                r
            }
        }
    }

    fn handle_icmp(&mut self, ip: &Ipv4Header, data: &[u8]) -> Result<()> {
        let (request, ident, seq, payload) = icmp::decode_echo(data)?;
        self.ustats.demux_icmp.inc();
        if request {
            uktrace::trace!(self.trace, tp::icmp_echo_rx, ident, seq);
            // Answer pings like lwIP does: echo the payload into a
            // fresh pooled buffer, headers prepended in place. A
            // request too large for a reply buffer (an injected
            // over-MTU frame) is dropped, not echoed.
            let mut nb = self.take_buf();
            if payload.len() > nb.tailroom() {
                self.recycle(nb);
                return Err(Errno::Inval);
            }
            nb.append(payload);
            icmp::encode_echo_into(false, ident, seq, &mut nb);
            let hdr = Ipv4Header {
                src: self.config.ip,
                dst: ip.src,
                proto: IpProto::Icmp,
                payload_len: ICMP_ECHO_LEN + payload.len(),
                ttl: 64,
            };
            hdr.encode_into(&mut nb);
            self.send_ipv4_nb(ip.src, IpProto::Icmp, nb);
            Ok(())
        } else {
            self.ping_replies.push((ip.src, ident, seq));
            Ok(())
        }
    }

    /// Sends an ICMP echo request to `dst`.
    pub fn ping(&mut self, dst: Ipv4Addr, ident: u16, seq: u16) -> Result<()> {
        let mut nb = self.take_buf();
        nb.append(b"unikraft-rs ping");
        icmp::encode_echo_into(true, ident, seq, &mut nb);
        let hdr = Ipv4Header {
            src: self.config.ip,
            dst,
            proto: IpProto::Icmp,
            payload_len: nb.len(),
            ttl: 64,
        };
        hdr.encode_into(&mut nb);
        self.send_ipv4_nb(dst, IpProto::Icmp, nb);
        self.flush_tx()
    }

    /// Drains echo replies received so far: (peer, ident, seq).
    pub fn ping_replies(&mut self) -> Vec<(Ipv4Addr, u16, u16)> {
        std::mem::take(&mut self.ping_replies)
    }

    /// Demultiplexes a UDP datagram: the receive buffer itself (payload
    /// trimmed to the UDP body) moves into the socket's queue.
    fn handle_udp(&mut self, ip: &Ipv4Header, mut nb: Netbuf, trusted: bool) -> Result<()> {
        let decoded = if trusted {
            UdpHeader::decode_trusted(ip, nb.payload())
        } else {
            UdpHeader::decode(ip, nb.payload())
        };
        let (udp, body_len) = match decoded {
            Ok((h, body)) => (h, body.len()),
            Err(e) => {
                self.recycle(nb);
                return Err(e);
            }
        };
        let Some(&h) = self.udp_ports.get(&udp.dst_port) else {
            self.ustats.demux_miss.inc();
            uktrace::trace!(self.trace, tp::demux_miss, 17u64, udp.dst_port);
            self.recycle(nb);
            return Err(Errno::ConnRefused);
        };
        let queued = self.udp_socks.get(&h).map(|s| s.rx.len());
        match queued {
            None => {
                self.recycle(nb);
                return Err(Errno::BadF);
            }
            Some(n) if n >= UDP_RX_QUEUE_CAP => {
                self.recycle(nb);
                return Err(Errno::NoMem); // Queue full: drop (counted).
            }
            Some(_) => {}
        }
        nb.pull_header(UDP_HDR_LEN);
        nb.truncate(body_len);
        self.ustats.demux_udp.inc();
        uktrace::trace!(self.trace, tp::udp_rx, udp.dst_port, body_len);
        let Some(sock) = self.udp_socks.get_mut(&h) else {
            // `queued` above proved the socket exists; drop the
            // datagram instead of panicking if that ever regresses.
            debug_assert!(false, "udp socket vanished between queue check and push");
            self.recycle(nb);
            return Err(Errno::BadF);
        };
        sock.rx
            .push_back((Endpoint::new(ip.src, udp.src_port), nb));
        sock.rx_total += 1;
        Ok(())
    }

    /// Validates a big-receive super-frame's headers (IPv4 + TCP, both
    /// in the head extent — the wire guarantees this) and returns the
    /// parsed TCP header plus the header bytes to strip off the head.
    fn parse_super_frame(nb: &Netbuf, my_ip: Ipv4Addr) -> Result<(TcpHeader, Ipv4Addr, usize)> {
        let head = nb.payload();
        let total = nb.chain_len();
        if head.len() < IPV4_HDR_LEN + TCP_HDR_LEN || head[0] != 0x45 {
            return Err(Errno::Inval);
        }
        let ip_total = u16::from_be_bytes([head[2], head[3]]) as usize;
        if ip_total != total || head[9] != 6 {
            return Err(Errno::Inval); // Chains carry exactly one TCP super-segment.
        }
        let ip = Ipv4Header {
            src: Ipv4Addr(u32::from_be_bytes([head[12], head[13], head[14], head[15]])),
            dst: Ipv4Addr(u32::from_be_bytes([head[16], head[17], head[18], head[19]])),
            proto: IpProto::Tcp,
            payload_len: total - IPV4_HDR_LEN,
            ttl: head[8],
        };
        if ip.dst != my_ip {
            return Err(Errno::Inval);
        }
        let (tcp, first) = TcpHeader::decode_trusted(&ip, &head[IPV4_HDR_LEN..])?;
        let consumed = head.len() - first.len();
        Ok((tcp, ip.src, consumed))
    }

    /// Ingests a big-receive super-segment **zero-copy**: headers are
    /// stripped off the chain head in place and the whole chain moves
    /// into the connection's receive queue as *one* multi-part segment
    /// — one demux, one ACK, no per-MSS work and no payload copy
    /// anywhere on the receive side.
    fn handle_super_frame(&mut self, mut nb: Netbuf) -> Result<()> {
        // A super-segment is TCP data: it must not overtake per-MSS
        // frames already staged for the same connection.
        self.gro_flush();
        let (tcp, src, consumed) = match Self::parse_super_frame(&nb, self.config.ip) {
            Ok(p) => p,
            Err(e) => {
                self.recycle(nb);
                return Err(e);
            }
        };
        let remote = Endpoint::new(src, tcp.src_port);
        let payload_len = nb.chain_len() - consumed;
        let Some(slot) = self.flow.get(flow_key(tcp.dst_port, remote)) else {
            self.ustats.demux_miss.inc();
            uktrace::trace!(self.trace, tp::demux_miss, 6u64, tcp.dst_port);
            self.stage_rst(src, &tcp, payload_len);
            self.recycle(nb);
            return Err(Errno::ConnRefused);
        };
        let now = self.now_ns();
        let cs = &mut self.conn_slots[slot as usize];
        let gen = cs.gen;
        // `_h` and `_bytes` are only read by tracepoints (unused when
        // tracing is compiled out, hence the underscores).
        let _h = conn_handle(slot, gen);
        let Some(c) = cs.conn.as_mut() else {
            self.ustats.demux_miss.inc();
            uktrace::trace!(self.trace, tp::demux_miss, 6u64, tcp.dst_port);
            self.recycle(nb);
            return Err(Errno::ConnRefused);
        };
        nb.pull_header(consumed);
        let _bytes = nb.chain_len();
        if let Some(n) = now {
            c.tcb.set_now(n);
            c.last_activity_ns = n;
            c.ka_probes = 0;
        }
        let dup0 = c.tcb.dup_acks();
        let fr0 = c.tcb.fast_retransmits();
        let ooo0 = c.tcb.ooo_queued();
        let mut pool = self.pool.take();
        c.tcb.on_segment_bufs(&tcp, std::iter::once(nb), |b| {
            if let Some(p) = pool.as_mut() {
                p.give_back_chain(b);
            }
        });
        self.pool = pool;
        let dup = c.tcb.dup_acks() - dup0;
        if dup > 0 {
            self.ustats.dup_acks.add(dup);
            uktrace::trace!(self.trace, tp::tcp_dup_ack, _h, tcp.seq);
        }
        let fr = c.tcb.fast_retransmits() - fr0;
        if fr > 0 {
            self.ustats.tcp_fast_retransmits.add(fr);
            uktrace::trace!(self.trace, tp::tcp_fast_retransmit, _h, fr);
        }
        let ooo = c.tcb.ooo_queued() - ooo0;
        if ooo > 0 {
            self.ustats.tcp_ooo_queued.add(ooo);
            uktrace::trace!(self.trace, tp::tcp_ooo_queue, _h, ooo);
        }
        if !c.dirty {
            c.dirty = true;
            self.dirty.push(slot);
        }
        self.ustats.demux_tcp.inc();
        uktrace::trace!(self.trace, tp::tcp_super_rx, _h, _bytes);
        self.stats.rx_super_frames += 1;
        self.stats.rx_csum_skipped += 1;
        self.ustats.rx_super_frames.inc();
        self.ustats.rx_csum_skipped.inc();
        Ok(())
    }

    /// Demultiplexes one TCP segment, **keeping ownership of the RX
    /// buffer**: a mergeable data segment is staged for GRO, anything
    /// else is delivered to its TCB with the payload buffer moved into
    /// the receive queue (or recycled, if the data is not accepted).
    fn handle_tcp_nb(&mut self, ip: &Ipv4Header, mut nb: Netbuf, trusted: bool) -> Result<()> {
        let decoded = if trusted {
            TcpHeader::decode_trusted(ip, nb.payload())
        } else {
            TcpHeader::decode(ip, nb.payload())
        };
        let (tcp, doff) = match decoded {
            Ok((h, payload)) => (h, nb.len() - payload.len()),
            Err(e) => {
                self.recycle(nb);
                return Err(e);
            }
        };
        let payload_len = nb.len() - doff;
        // GRO: a plain data segment (ACK set, no SYN/FIN/RST) joins
        // the burst's staging area; consecutive ones merge into one
        // ingest at flush. A segment continuing the staged run's flow
        // at exactly the expected sequence number appends with *zero*
        // demux-table lookups — the flow-match fast path that makes
        // per-MSS receive cheap.
        let mergeable = self.gro
            && tcp.flags.ack
            && !tcp.flags.syn
            && !tcp.flags.fin
            && !tcp.flags.rst
            && nb.len() > doff;
        if mergeable {
            if let Some(cont) = self.gro_cont.as_mut() {
                let flow_match = cont.src_port == tcp.src_port
                    && cont.dst_port == tcp.dst_port
                    && cont.src == ip.src;
                if flow_match && cont.next_seq == tcp.seq {
                    nb.pull_header(doff);
                    cont.next_seq = tcp.seq.wrapping_add(nb.len() as u32);
                    let conn = cont.conn;
                    self.gro_stage.push((conn, tcp, nb));
                    self.ustats.demux_tcp.inc();
                    return Ok(());
                }
                if flow_match {
                    // Sequence gap in the staged flow (a drop or
                    // reorder on the wire): deliver the staged run
                    // *now* so coalescing never merges across the
                    // hole — the gapped segment takes the demux path
                    // below and lands in the reassembly queue.
                    self.gro_flush();
                }
            }
        }
        let remote = Endpoint::new(ip.src, tcp.src_port);
        let fkey = flow_key(tcp.dst_port, remote);
        let mut hit = self.flow.get(fkey);
        // TIME_WAIT assassination (RFC 1122 §4.2.2.13): a fresh SYN
        // landing on a connection parked in TIME_WAIT reaps it on the
        // spot and falls through to the listener below — the port
        // recycles without waiting out the full 2MSL.
        if tcp.flags.syn && !tcp.flags.ack {
            if let Some(slot) = hit {
                let is_tw = self
                    .conn_slots
                    .get(slot as usize)
                    .and_then(|cs| cs.conn.as_ref())
                    .map(|c| c.tcb.state == TcpState::TimeWait)
                    .unwrap_or(false);
                if is_tw {
                    self.reap_conn_slot(slot, REAP_TIMEWAIT);
                    hit = None;
                }
            }
        }
        if let Some(slot) = hit {
            let state0 = self
                .conn_slots
                .get(slot as usize)
                .and_then(|cs| cs.conn.as_ref())
                .map(|c| c.tcb.state);
            if let Some(state0) = state0 {
                let gen = self.conn_slots[slot as usize].gen;
                let h = conn_handle(slot, gen);
                // TCP options (SACK-permitted on SYNs, SACK blocks on
                // pure ACKs) live between the fixed header and the
                // payload; capture them before the header is pulled.
                let opts = if doff > TCP_HDR_LEN {
                    Some(TcpOptions::parse(&nb.payload()[TCP_HDR_LEN..doff]))
                } else {
                    None
                };
                nb.pull_header(doff);
                // GRO staging is for flows in steady data transfer;
                // anything mid-handshake or mid-teardown takes the
                // direct path so state transitions apply immediately.
                if mergeable && state0 == TcpState::Established {
                    // Start (or interleave) a staged run for this flow.
                    self.gro_cont = Some(GroCont {
                        src: ip.src,
                        src_port: tcp.src_port,
                        dst_port: tcp.dst_port,
                        conn: h,
                        next_seq: tcp.seq.wrapping_add(nb.len() as u32),
                    });
                    self.gro_stage.push((h, tcp, nb));
                    self.ustats.demux_tcp.inc();
                    return Ok(());
                }
                // Control flags take the direct path — after flushing
                // the stage, so nothing overtakes data already queued
                // for this connection.
                self.gro_flush();
                if state0 == TcpState::SynReceived
                    && tcp.flags.ack
                    && !tcp.flags.syn
                    && !tcp.flags.rst
                {
                    // The handshake-completing ACK would move this
                    // connection onto the accept backlog; if that is
                    // full, drop the ACK — the connection stays
                    // half-open until the peer retransmits or the
                    // handshake timer reclaims it.
                    let full = self
                        .listeners
                        .get(&tcp.dst_port)
                        .map(|l| l.backlog.len() >= self.config.listen_backlog)
                        .unwrap_or(false);
                    if full {
                        self.ustats.tcp_syn_overflow.inc();
                        self.recycle(nb);
                        return Err(Errno::NoMem);
                    }
                }
                if tcp.flags.fin {
                    uktrace::trace!(self.trace, tp::tcp_fin_rx, tcp.dst_port, tcp.seq);
                }
                let bytes = nb.len();
                let now = self.now_ns();
                let mut pool = self.pool.take();
                let cs = &mut self.conn_slots[slot as usize];
                let Some(c) = cs.conn.as_mut() else {
                    // The flow table named this slot, so it must be
                    // occupied; drop the segment rather than panic if
                    // the table and slab ever disagree.
                    debug_assert!(false, "flow table points at an empty connection slot");
                    self.pool = pool;
                    self.recycle(nb);
                    return Err(Errno::BadF);
                };
                if let Some(n) = now {
                    c.tcb.set_now(n);
                    c.last_activity_ns = n;
                    c.ka_probes = 0;
                }
                let dup0 = c.tcb.dup_acks();
                let fr0 = c.tcb.fast_retransmits();
                let ooo0 = c.tcb.ooo_queued();
                let sp0 = c.tcb.spurious_rtx();
                if let Some(ref opts) = opts {
                    c.tcb.process_options(&tcp, opts);
                }
                c.tcb.on_segment_bufs(&tcp, std::iter::once(nb), |b| {
                    if let Some(p) = pool.as_mut() {
                        p.give_back_chain(b);
                    }
                });
                let dup = c.tcb.dup_acks() - dup0;
                let fr = c.tcb.fast_retransmits() - fr0;
                let ooo = c.tcb.ooo_queued() - ooo0;
                let sp = c.tcb.spurious_rtx() - sp0;
                let shed0 = c.tcb.ooo_shed();
                while pool.as_ref().is_some_and(|p| p.available() < LOW_POOL_BUFS) {
                    let mut give = |b: Netbuf| {
                        if let Some(p) = pool.as_mut() {
                            p.give_back_chain(b);
                        }
                    };
                    if !c.tcb.shed_newest_ooo(&mut give) {
                        break;
                    }
                }
                let shed = c.tcb.ooo_shed() - shed0;
                let established =
                    state0 != TcpState::Established && c.tcb.state == TcpState::Established;
                if !c.dirty {
                    c.dirty = true;
                    self.dirty.push(slot);
                }
                self.pool = pool;
                if established {
                    uktrace::trace!(self.trace, tp::tcp_established, h, tcp.dst_port);
                    if state0 == TcpState::SynReceived {
                        // Handshake complete: graduate from the SYN
                        // queue to the accept backlog.
                        if let Some(l) = self.listeners.get_mut(&tcp.dst_port) {
                            if let Some(pos) = l.syn_queue.iter().position(|&s| s == slot) {
                                l.syn_queue.remove(pos);
                            }
                            l.backlog.push_back(SocketHandle(h));
                            l.accepted_total += 1;
                            self.sync_one(LISTENER_TAG | tcp.dst_port as usize);
                        }
                    }
                }
                if dup > 0 {
                    self.ustats.dup_acks.add(dup);
                    uktrace::trace!(self.trace, tp::tcp_dup_ack, h, tcp.seq);
                }
                if fr > 0 {
                    self.ustats.tcp_fast_retransmits.add(fr);
                    uktrace::trace!(self.trace, tp::tcp_fast_retransmit, h, fr);
                }
                if ooo > 0 {
                    self.ustats.tcp_ooo_queued.add(ooo);
                    uktrace::trace!(self.trace, tp::tcp_ooo_queue, h, ooo);
                }
                if sp > 0 {
                    self.ustats.tcp_spurious_rtx.add(sp);
                    uktrace::trace!(self.trace, tp::tcp_spurious_rtx, h, sp);
                }
                if shed > 0 {
                    self.ustats.tcp_ooo_shed.add(shed);
                    uktrace::trace!(self.trace, tp::tcp_ooo_shed, h, shed);
                }
                if bytes > 0 && !tcp.flags.syn {
                    uktrace::trace!(self.trace, tp::tcp_data_rx, h, bytes);
                }
                self.ustats.demux_tcp.inc();
                return Ok(());
            }
        }
        // No connection: a SYN to a listener spawns a half-open one on
        // the listener's bounded SYN queue.
        if tcp.flags.syn && !tcp.flags.ack {
            if self.listeners.contains_key(&tcp.dst_port) {
                uktrace::trace!(self.trace, tp::tcp_syn_rx, tcp.dst_port, tcp.src_port);
                // At capacity the *oldest* half-open connection is
                // evicted (its buffers pool-returned, its flow entry
                // and timers dropped) — a SYN flood churns the queue
                // but can neither grow it nor starve established
                // connections.
                let victim = self.listeners.get(&tcp.dst_port).and_then(|l| {
                    if l.syn_queue.len() >= self.config.listen_backlog {
                        l.syn_queue.front().copied()
                    } else {
                        None
                    }
                });
                if let Some(v) = victim {
                    self.ustats.tcp_syn_overflow.inc();
                    uktrace::trace!(self.trace, tp::tcp_syn_evicted, tcp.dst_port, v as usize);
                    self.reap_conn_slot(v, REAP_SYN_EVICTED);
                }
                let mut tcb = Tcb::listen(tcp.dst_port);
                if self.config.lean_tcbs {
                    tcb.shrink_queues();
                }
                tcb.set_mss(self.config.mss);
                tcb.set_congestion_control(self.config.congestion_control);
                tcb.set_lifecycle_enabled(self.clock.is_some());
                tcb.set_delayed_ack(self.config.delayed_ack && self.clock.is_some());
                tcb.set_sack(self.config.sack);
                tcb.set_rack(self.config.rack && self.clock.is_some());
                tcb.set_pacing(self.config.pacing && self.clock.is_some());
                self.iss = self.iss.wrapping_add(64_000);
                let now = self.now_ns();
                if let Some(n) = now {
                    tcb.set_now(n);
                }
                if doff > TCP_HDR_LEN {
                    let opts = TcpOptions::parse(&nb.payload()[TCP_HDR_LEN..doff]);
                    tcb.process_options(&tcp, &opts);
                }
                tcb.on_segment(&tcp, &nb.payload()[doff..]);
                self.recycle(nb);
                let h = self.alloc_conn(tcb, remote, tcp.dst_port, now.unwrap_or(0));
                let slot = (h & 0xffff_ffff) as u32;
                if let Some(l) = self.listeners.get_mut(&tcp.dst_port) {
                    l.syn_queue.push_back(slot);
                } else {
                    // Guarded by contains_key above and alloc_conn does
                    // not touch listeners; the half-open connection will
                    // simply time out if this invariant ever breaks.
                    debug_assert!(false, "listener vanished while spawning half-open conn");
                }
                self.ustats.demux_tcp.inc();
                return Ok(());
            }
        }
        // Nothing claimed the segment: count the miss and answer with
        // a RST (suppressed for incoming RSTs — including in-window
        // RSTs aimed at a bare listener, which are simply dropped).
        self.ustats.demux_miss.inc();
        uktrace::trace!(self.trace, tp::demux_miss, 6u64, tcp.dst_port);
        self.stage_rst(ip.src, &tcp, payload_len);
        self.recycle(nb);
        Err(Errno::ConnRefused)
    }

    /// Delivers everything staged for GRO, in arrival order: adjacent
    /// stage entries for the same connection whose sequence numbers
    /// are consecutive collapse into **one** multi-buffer ingest —
    /// one demux-table access, one TCB pass, one coalesced ACK for
    /// the run. The merged header takes the run's first sequence
    /// number and the *last* segment's cumulative ACK and window (the
    /// freshest peer state), exactly what a hardware GRO engine
    /// presents. Buffers drain straight out of the stage into the
    /// receive queue — no intermediate move.
    fn gro_flush(&mut self) {
        self.gro_cont = None;
        if self.gro_stage.is_empty() {
            return;
        }
        let mut stage = std::mem::take(&mut self.gro_stage);
        let mut pool = self.pool.take();
        let now = self.now_ns();
        while !stage.is_empty() {
            // The run at the stage front: adjacent entries, same
            // connection, consecutive sequence numbers.
            let (conn, first) = (stage[0].0, stage[0].1);
            let mut next_seq = first.seq.wrapping_add(stage[0].2.len() as u32);
            let mut j = 1;
            while j < stage.len() && stage[j].0 == conn && stage[j].1.seq == next_seq {
                next_seq = next_seq.wrapping_add(stage[j].2.len() as u32);
                j += 1;
            }
            let last = stage[j - 1].1;
            // Only read by the `tcp_data_rx` tracepoint (unused when
            // tracing is compiled out, hence the underscore).
            let _run_bytes = next_seq.wrapping_sub(first.seq);
            if j > 1 {
                self.stats.gro_runs += 1;
                self.stats.gro_merged_frames += j as u64;
                self.ustats.gro_runs.inc();
                self.ustats.gro_merged_frames.add(j as u64);
                uktrace::trace!(self.trace, tp::gro_merge, conn, j);
            }
            let merged = TcpHeader {
                src_port: first.src_port,
                dst_port: first.dst_port,
                seq: first.seq,
                ack: last.ack,
                flags: TcpFlags {
                    ack: true,
                    psh: first.flags.psh || last.flags.psh,
                    ..Default::default()
                },
                window: last.window,
            };
            let target = match conn_parts(conn) {
                Some((slot, gen)) => match self.conn_slots.get_mut(slot as usize) {
                    Some(cs) if cs.gen == gen => cs.conn.as_mut().map(|c| (slot, c)),
                    _ => None,
                },
                None => None,
            };
            match target {
                Some((slot, c)) => {
                    if let Some(n) = now {
                        c.tcb.set_now(n);
                        c.last_activity_ns = n;
                        c.ka_probes = 0;
                    }
                    let dup0 = c.tcb.dup_acks();
                    let fr0 = c.tcb.fast_retransmits();
                    let ooo0 = c.tcb.ooo_queued();
                    c.tcb
                        .on_segment_bufs(&merged, stage.drain(..j).map(|(_, _, nb)| nb), |nb| {
                            if let Some(p) = pool.as_mut() {
                                p.give_back_chain(nb);
                            }
                        });
                    let dup = c.tcb.dup_acks() - dup0;
                    if dup > 0 {
                        self.ustats.dup_acks.add(dup);
                        uktrace::trace!(self.trace, tp::tcp_dup_ack, conn, merged.seq);
                    }
                    let fr = c.tcb.fast_retransmits() - fr0;
                    if fr > 0 {
                        self.ustats.tcp_fast_retransmits.add(fr);
                        uktrace::trace!(self.trace, tp::tcp_fast_retransmit, conn, fr);
                    }
                    let ooo = c.tcb.ooo_queued() - ooo0;
                    if ooo > 0 {
                        self.ustats.tcp_ooo_queued.add(ooo);
                        uktrace::trace!(self.trace, tp::tcp_ooo_queue, conn, ooo);
                    }
                    let shed0 = c.tcb.ooo_shed();
                    while pool.as_ref().is_some_and(|p| p.available() < LOW_POOL_BUFS) {
                        let mut give = |b: Netbuf| {
                            if let Some(p) = pool.as_mut() {
                                p.give_back_chain(b);
                            }
                        };
                        if !c.tcb.shed_newest_ooo(&mut give) {
                            break;
                        }
                    }
                    let shed = c.tcb.ooo_shed() - shed0;
                    if shed > 0 {
                        self.ustats.tcp_ooo_shed.add(shed);
                        uktrace::trace!(self.trace, tp::tcp_ooo_shed, conn, shed);
                    }
                    if !c.dirty {
                        c.dirty = true;
                        self.dirty.push(slot);
                    }
                    uktrace::trace!(self.trace, tp::tcp_data_rx, conn, _run_bytes);
                }
                None => stage.drain(..j).for_each(|(_, _, nb)| {
                    if let Some(p) = pool.as_mut() {
                        p.give_back_chain(nb);
                    }
                }),
            }
        }
        self.pool = pool;
        self.gro_stage = stage;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uknetdev::backend::VhostKind;
    use uknetdev::dev::NetDevConf;
    use uknetdev::VirtioNet;
    use ukplat::time::Tsc;

    fn stack(n: u8) -> NetStack {
        let tsc = Tsc::new(3_600_000_000);
        let mut dev = VirtioNet::new(VhostKind::VhostUser, &tsc);
        dev.configure(NetDevConf::default()).unwrap();
        NetStack::new(StackConfig::node(n), Box::new(dev))
    }

    #[test]
    fn udp_bind_conflicts_detected() {
        let mut s = stack(1);
        s.udp_bind(5000).unwrap();
        assert_eq!(s.udp_bind(5000).unwrap_err(), Errno::AddrInUse);
    }

    #[test]
    fn udp_send_without_arp_parks_and_requests() {
        let mut s = stack(1);
        let sock = s.udp_bind(5000).unwrap();
        s.udp_send_to(sock, b"ping", Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 7))
            .unwrap();
        // One broadcast ARP request must have left the stack.
        assert_eq!(s.stats().tx_frames, 1);
        assert_eq!(s.arp_pending.len(), 1);
    }

    #[test]
    fn unresolved_arp_parking_is_capped_and_buffers_recycled() {
        let mut s = stack(1);
        let sock = s.udp_bind(5000).unwrap();
        let dst = Endpoint::new(Ipv4Addr::new(10, 0, 0, 99), 7);
        // Far more sends than the per-next-hop cap; nobody ever answers
        // the ARP request.
        for _ in 0..64 {
            s.udp_send_to(sock, b"black hole", dst).unwrap();
        }
        assert_eq!(
            s.arp_pending.get(&dst.addr).unwrap().packets.len(),
            ARP_PENDING_CAP,
            "parked packets bounded per destination"
        );
        assert_eq!(
            s.stats().dropped,
            64 - ARP_PENDING_CAP as u64,
            "evicted packets are counted as drops"
        );
        // Who-has re-broadcast on a fixed cadence, not per packet.
        let requests = 64u64.div_ceil(ARP_REQUEST_RETRY_EVERY);
        assert_eq!(s.stats().tx_frames, requests, "bounded retry cadence");
        // Pool accounting: the capped parked packets plus the ARP
        // request frames (in the device done-list until the wire
        // harvests them) are the only outstanding buffers.
        let outstanding =
            s.config.pool_size - s.pool_available().unwrap();
        assert_eq!(
            outstanding,
            ARP_PENDING_CAP + requests as usize,
            "no buffer leak"
        );
    }

    #[test]
    fn arp_parking_hard_cap_bounds_even_tcp() {
        let mut s = stack(1);
        // An app looping connects on an unreachable address must not
        // pin the pool without bound.
        for _ in 0..100 {
            s.tcp_connect(Endpoint::new(Ipv4Addr::new(10, 0, 0, 99), 80))
                .unwrap();
        }
        let pending = s.arp_pending.get(&Ipv4Addr::new(10, 0, 0, 99)).unwrap();
        assert_eq!(pending.packets.len(), ARP_PENDING_HARD_CAP);
        assert_eq!(s.stats().dropped, 100 - ARP_PENDING_HARD_CAP as u64);
    }

    #[test]
    fn arp_eviction_never_drops_tcp_segments() {
        let mut s = stack(1);
        // Park a SYN on an unresolved next-hop…
        s.tcp_connect(Endpoint::new(Ipv4Addr::new(10, 0, 0, 99), 80))
            .unwrap();
        // …then flood the same next-hop with droppable datagrams.
        let sock = s.udp_bind(5000).unwrap();
        let dst = Endpoint::new(Ipv4Addr::new(10, 0, 0, 99), 7);
        for _ in 0..32 {
            s.udp_send_to(sock, b"flood", dst).unwrap();
        }
        let pending = s.arp_pending.get(&dst.addr).unwrap();
        assert_eq!(pending.packets.len(), ARP_PENDING_CAP);
        let tcp_parked = pending
            .packets
            .iter()
            .filter(|(p, _)| *p == IpProto::Tcp)
            .count();
        assert_eq!(
            tcp_parked, 1,
            "the SYN survives eviction (recovering it would cost a full RTO)"
        );
    }

    #[test]
    fn quiet_queue_arp_retry_fires_on_pump_cadence() {
        let mut s = stack(1);
        let sock = s.udp_bind(5000).unwrap();
        // One send parks one packet and broadcasts one who-has.
        s.udp_send_to(sock, b"hello?", Endpoint::new(Ipv4Addr::new(10, 0, 0, 99), 7))
            .unwrap();
        assert_eq!(s.stats().tx_frames, 1);
        // The application goes quiet: no new packets ever park, so the
        // per-parked-packet cadence can never fire again — but pumping
        // must still retry on the per-burst counter.
        for _ in 0..ARP_REQUEST_RETRY_PUMPS * 2 {
            s.pump();
        }
        assert_eq!(
            s.stats().tx_frames,
            3,
            "two who-has retries after 2×{ARP_REQUEST_RETRY_PUMPS} quiet pumps"
        );
        assert_eq!(
            s.arp_pending.get(&Ipv4Addr::new(10, 0, 0, 99)).unwrap().packets.len(),
            1,
            "the parked packet still waits"
        );
    }

    #[test]
    fn udp_send_burst_reports_sendmmsg_counts() {
        let mut s = stack(1);
        let sock = s.udp_bind(5000).unwrap();
        let dst = Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 7);
        let ok = [0x11u8; 64];
        let too_big = vec![0u8; BUF_CAP];
        // A failing datagram mid-burst stops the burst; the count of
        // datagrams already staged is returned.
        let n = s
            .udp_send_burst(sock, [(&ok[..], dst), (&too_big[..], dst), (&ok[..], dst)])
            .unwrap();
        assert_eq!(n, 1, "burst stops at the first failure");
        // A failing *first* datagram surfaces the error.
        assert_eq!(
            s.udp_send_burst(sock, [(&too_big[..], dst)]).unwrap_err(),
            Errno::Inval
        );
        assert_eq!(
            s.udp_send_burst(sock, std::iter::empty()).unwrap(),
            0,
            "empty burst is a no-op"
        );
    }

    #[test]
    fn csum_offload_tracks_config_and_device_capability() {
        let s = stack(1);
        assert!(s.csum_offload(), "VirtioNet advertises tx csum offload");
        let tsc = Tsc::new(3_600_000_000);
        let mut dev = VirtioNet::new(VhostKind::VhostUser, &tsc);
        dev.configure(NetDevConf::default()).unwrap();
        let mut cfg = StackConfig::node(1);
        cfg.tx_csum_offload = false;
        let s = NetStack::new(cfg, Box::new(dev));
        assert!(!s.csum_offload(), "ablation switch wins over capability");
    }

    #[test]
    fn tso_requires_tx_csum_offload() {
        // The cut frames' checksums are completed host-side, so TSO
        // without checksum offload is a contradiction: the stack must
        // fall back to software segmentation.
        let tsc = Tsc::new(3_600_000_000);
        let mut dev = VirtioNet::new(VhostKind::VhostUser, &tsc);
        dev.configure(NetDevConf::default()).unwrap();
        let mut cfg = StackConfig::node(1);
        cfg.tx_csum_offload = false; // tso wish stays on
        let s = NetStack::new(cfg, Box::new(dev));
        assert!(!s.tso(), "TSO gated on checksum offload");
        assert!(!s.csum_offload());
    }

    #[test]
    fn oversized_icmp_echo_request_is_dropped_not_echoed() {
        // An injected over-MTU echo request must not panic the reply
        // path (`append` would assert on tailroom) — it is dropped.
        let mut s = stack(1);
        let mut nb = uknetdev::netbuf::Netbuf::alloc(4096, TX_HEADROOM);
        nb.append(&[0x77u8; BUF_CAP]); // larger than any reply buffer
        crate::icmp::encode_echo_into(true, 1, 1, &mut nb);
        let ip = Ipv4Header {
            src: Ipv4Addr::new(10, 0, 0, 2),
            dst: s.ip(),
            proto: IpProto::Icmp,
            payload_len: nb.len(),
            ttl: 64,
        };
        ip.encode_into(&mut nb);
        EthHeader {
            dst: s.mac(),
            src: Mac::node(2),
            ethertype: EtherType::Ipv4,
        }
        .encode_into(&mut nb);
        s.deliver_frame(nb);
        let pool_before = s.pool_available().unwrap();
        s.pump();
        assert_eq!(s.stats().dropped, 1, "oversized request dropped");
        assert_eq!(
            s.pool_available().unwrap(),
            pool_before,
            "reply buffer recycled"
        );
    }

    #[test]
    fn oversized_udp_payload_rejected_and_buffer_recycled() {
        let mut s = stack(1);
        let sock = s.udp_bind(5000).unwrap();
        let before = s.pool_available().unwrap();
        let big = vec![0u8; BUF_CAP];
        let err = s
            .udp_send_to(sock, &big, Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 7))
            .unwrap_err();
        assert_eq!(err, Errno::Inval);
        assert_eq!(s.pool_available().unwrap(), before, "no pool leak");
    }

    #[test]
    fn tcp_listen_twice_fails() {
        let mut s = stack(1);
        s.tcp_listen(80).unwrap();
        assert_eq!(s.tcp_listen(80).unwrap_err(), Errno::AddrInUse);
    }

    #[test]
    fn recv_on_bad_handle_errors() {
        let mut s = stack(1);
        assert_eq!(s.tcp_recv(SocketHandle(99), 10).unwrap_err(), Errno::BadF);
    }

    #[test]
    fn handle_spaces_are_disjoint() {
        let mut s = stack(1);
        let udp = s.udp_bind(9000).unwrap();
        let listener = s.tcp_listen(80).unwrap();
        let conn = s
            .tcp_connect(Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 80))
            .unwrap();
        assert_eq!(listener.0 & LISTENER_TAG, LISTENER_TAG);
        assert!(udp.0 < 1 << 32, "UDP handles stay in the counter range");
        assert_eq!(conn.0 & LISTENER_TAG, 0);
        assert!(conn.0 >> 32 > 0, "conn handles carry a generation tag");
        assert!(s.tcp_state(conn).is_some());
        assert_eq!(s.tcp_state(SocketHandle(99)), None, "garbage handle");
    }

    #[test]
    fn source_for_unknown_handle_reports_hup_and_is_pruned() {
        let mut s = stack(1);
        let src = s.ready_source(SocketHandle(4242));
        assert!(src.current().contains(EventMask::HUP));
        let sock = s.udp_bind(9000).unwrap();
        let _live = s.ready_source(sock);
        assert_eq!(s.watched_source_count(), 2);
        // Per-socket ops only sync their own cell; the full sweep in
        // `pump` prunes defunct ones.
        s.pump();
        assert_eq!(s.watched_source_count(), 1, "only the live socket stays");
    }
}
