//! Calibrated datasets from the paper's figures.
//!
//! All values are read off the published figures; the source figure is
//! noted per table. `None` means the paper does not report that cell
//! (e.g. HermiTux cannot run nginx, Mirage only runs its own HTTP
//! responder).

use crate::env::{AppId, ExecEnv};

/// Figure 9: image sizes in MB (stripped, no LTO/DCE), per app.
pub fn image_size_mb(env: ExecEnv, app: AppId) -> Option<f64> {
    use AppId::*;
    use ExecEnv::*;
    let v = match (env, app) {
        (UnikraftKvm, Hello) => 0.213,
        (UnikraftKvm, Nginx) => 1.6,
        (UnikraftKvm, Redis) => 1.8,
        (UnikraftKvm, Sqlite) => 1.6,
        (HermituxUhyve, Hello) => 1.3,
        (HermituxUhyve, Redis) => 2.1,
        (HermituxUhyve, Sqlite) => 1.5,
        (LinuxNative, Hello) => 0.016,
        (LinuxNative, Nginx) => 1.2,
        (LinuxNative, Redis) => 1.8,
        (LinuxNative, Sqlite) => 1.1,
        (LupineKvm, Hello) => 1.7,
        (LupineKvm, Nginx) => 3.6,
        (LupineKvm, Redis) => 2.6,
        (LupineKvm, Sqlite) => 3.2,
        (MirageSolo5, Hello) => 3.3,
        (OsvKvm, Hello) => 4.5,
        (OsvKvm, Nginx) => 5.4,
        (OsvKvm, Redis) => 8.1,
        (OsvKvm, Sqlite) => 5.4,
        (RumpKvm, Hello) => 2.8,
        (RumpKvm, Nginx) => 5.4,
        (RumpKvm, Redis) => 3.7,
        (RumpKvm, Sqlite) => 3.9,
        _ => return None,
    };
    Some(v)
}

/// Figure 11: minimum memory (MB) to boot and serve, per app.
pub fn min_memory_mb(env: ExecEnv, app: AppId) -> Option<u32> {
    use AppId::*;
    use ExecEnv::*;
    let v = match (env, app) {
        (UnikraftKvm, Hello) => 2,
        (UnikraftKvm, Nginx) => 5,
        (UnikraftKvm, Redis) => 7,
        (UnikraftKvm, Sqlite) => 4,
        (DockerNative, Hello) => 6,
        (DockerNative, Nginx) => 7,
        (DockerNative, Redis) => 7,
        (DockerNative, Sqlite) => 6,
        (RumpKvm, Hello) => 8,
        (RumpKvm, Nginx) => 12,
        (RumpKvm, Redis) => 13,
        (RumpKvm, Sqlite) => 10,
        (HermituxUhyve, Hello) => 11,
        (HermituxUhyve, Redis) => 13,
        (HermituxUhyve, Sqlite) => 10,
        (LupineKvm, Hello) => 20,
        (LupineKvm, Nginx) => 21,
        (LupineKvm, Redis) => 21,
        (LupineKvm, Sqlite) => 21,
        (OsvKvm, Hello) => 24,
        (OsvKvm, Nginx) => 26,
        (OsvKvm, Redis) => 40,
        (OsvKvm, Sqlite) => 26,
        (LinuxKvm, Hello) => 29,
        (LinuxKvm, Nginx) => 29,
        (LinuxKvm, Redis) => 30,
        (LinuxKvm, Sqlite) => 29,
        _ => return None,
    };
    Some(v)
}

/// §5.1's guest boot-time comparisons, nanoseconds (guest only, without
/// VMM): "MirageOS (1-2ms on Solo5), OSv (4-5ms on Firecracker…), Rump
/// (14-15ms on Solo5), Hermitux (30-32ms on uHyve), Lupine (70ms on
/// Firecracker, 18ms without KML), and Alpine Linux (around 330ms)".
pub fn guest_boot_ns(env: ExecEnv) -> Option<u64> {
    use ExecEnv::*;
    let ms = match env {
        MirageSolo5 => 1.5,
        OsvKvm => 4.5,
        RumpKvm => 14.5,
        HermituxUhyve => 31.0,
        LupineKvm | LupineFirecracker => 70.0,
        LinuxKvm | LinuxFirecracker => 330.0,
        // Unikraft's own boot is *measured*, not modelled (ukboot).
        UnikraftKvm => return None,
        LinuxNative | DockerNative => 0.0,
    };
    Some((ms * 1e6) as u64)
}

/// Figure 12: Redis throughput in requests/s (GET, SET), 30 conns,
/// 100k requests, pipelining 16.
pub fn redis_throughput(env: ExecEnv) -> Option<(f64, f64)> {
    use ExecEnv::*;
    let v = match env {
        HermituxUhyve => (370_000.0, 240_000.0),
        LinuxFirecracker => (1_140_000.0, 1_060_000.0),
        LupineFirecracker => (1_260_000.0, 930_000.0),
        RumpKvm => (1_330_000.0, 1_170_000.0),
        LinuxKvm => (1_540_000.0, 1_310_000.0),
        LupineKvm => (1_820_000.0, 1_520_000.0),
        DockerNative => (1_950_000.0, 1_680_000.0),
        OsvKvm => (1_980_000.0, 1_540_000.0),
        LinuxNative => (2_440_000.0, 2_010_000.0),
        UnikraftKvm => (2_680_000.0, 2_260_000.0),
        MirageSolo5 => return None,
    };
    Some(v)
}

/// Figure 13: nginx (Mirage: HTTP-reply) throughput in requests/s,
/// wrk, 1 minute, 14 threads, 30 conns, static 612 B page.
pub fn nginx_throughput(env: ExecEnv) -> Option<f64> {
    use ExecEnv::*;
    let v = match env {
        MirageSolo5 => 25_900.0,
        LinuxFirecracker => 60_100.0,
        LupineFirecracker => 71_600.0,
        LinuxKvm => 104_500.0,
        RumpKvm => 152_600.0,
        DockerNative => 160_300.0,
        LinuxNative => 175_600.0,
        LupineKvm => 189_000.0,
        OsvKvm => 232_700.0,
        UnikraftKvm => 291_800.0,
        HermituxUhyve => return None, // "HermiTux does not support nginx".
    };
    Some(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{AppId, ExecEnv};

    #[test]
    fn unikraft_images_smallest_among_unikernels() {
        for app in [AppId::Nginx, AppId::Redis, AppId::Sqlite] {
            let uk = image_size_mb(ExecEnv::UnikraftKvm, app).unwrap();
            for env in [ExecEnv::OsvKvm, ExecEnv::RumpKvm, ExecEnv::LupineKvm] {
                if let Some(other) = image_size_mb(env, app) {
                    assert!(uk < other, "{env:?} {app:?}");
                }
            }
        }
    }

    #[test]
    fn unikraft_needs_least_memory() {
        for app in [AppId::Hello, AppId::Nginx, AppId::Redis, AppId::Sqlite] {
            let uk = min_memory_mb(ExecEnv::UnikraftKvm, app).unwrap();
            for env in ExecEnv::all() {
                if env == ExecEnv::UnikraftKvm {
                    continue;
                }
                if let Some(m) = min_memory_mb(env, app) {
                    assert!(uk <= m, "{env:?} {app:?}: {uk} > {m}");
                }
            }
        }
    }

    #[test]
    fn unikraft_redis_fastest_and_ratios_match_text() {
        let (uk_get, _) = redis_throughput(ExecEnv::UnikraftKvm).unwrap();
        let (osv_get, _) = redis_throughput(ExecEnv::OsvKvm).unwrap();
        let (lupine_get, _) = redis_throughput(ExecEnv::LupineKvm).unwrap();
        // §5.3: "Compared to OSv, Unikraft is about 35% faster on Redis";
        // "Compared to Lupine on QEMU/KVM, Unikraft is around 50% faster".
        assert!((uk_get / osv_get - 1.35).abs() < 0.05);
        assert!((uk_get / lupine_get - 1.47).abs() < 0.05);
    }

    #[test]
    fn unikraft_nginx_beats_everything() {
        let uk = nginx_throughput(ExecEnv::UnikraftKvm).unwrap();
        for env in ExecEnv::all() {
            if let Some(t) = nginx_throughput(env) {
                assert!(uk >= t, "{env:?}");
            }
        }
    }

    #[test]
    fn boot_comparisons_ordered() {
        // Mirage < OSv < Rump < HermiTux < Lupine < Linux.
        let seq = [
            ExecEnv::MirageSolo5,
            ExecEnv::OsvKvm,
            ExecEnv::RumpKvm,
            ExecEnv::HermituxUhyve,
            ExecEnv::LupineKvm,
            ExecEnv::LinuxKvm,
        ];
        let times: Vec<u64> = seq.iter().map(|e| guest_boot_ns(*e).unwrap()).collect();
        for w in times.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}
