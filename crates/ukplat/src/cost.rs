//! Calibrated cost constants.
//!
//! Every host-side cost the simulation charges lives here, with its source.
//! The paper's testbed is an Intel i7-9700K at 3.6 GHz (4.9 GHz turbo); the
//! paper's own Table 1 gives syscall and function-call costs measured on
//! that machine, which we adopt verbatim. Remaining constants are
//! order-of-magnitude figures from the cited literature (Firecracker paper,
//! vhost documentation) chosen so that the *relative* shapes of the figures
//! are preserved; absolute values are not claimed to match silicon.

/// CPU frequency used for all cycle/ns conversions (paper testbed: 3.6 GHz).
pub const CPU_FREQ_HZ: u64 = 3_600_000_000;

/// Cost of a guest function call (paper Table 1: 4 cycles / 1.11 ns).
pub const FUNCTION_CALL_CYCLES: u64 = 4;

/// Cost of a Unikraft "system call" — a plain function call through the
/// syscall shim plus argument marshalling (paper Table 1: 84 cycles).
pub const UNIKRAFT_SYSCALL_CYCLES: u64 = 84;

/// Cost of a Linux system call with default mitigations, i.e. KPTI and
/// friends enabled (paper Table 1: 222 cycles / 61.67 ns).
pub const LINUX_SYSCALL_CYCLES: u64 = 222;

/// Cost of a Linux system call with mitigations disabled
/// (paper Table 1: 154 cycles / 42.78 ns).
pub const LINUX_SYSCALL_NOMIT_CYCLES: u64 = 154;

/// Cost of a VM exit + entry pair (hypercall/kick). Literature figure for
/// modern Intel hardware; used for every para-virtual device notification.
pub const VMEXIT_CYCLES: u64 = 1_200;

/// Extra cost charged per page of data copied between guest and host by a
/// kernel backend (vhost-net copies packets; virtio-9p copies buffers).
pub const HOST_COPY_CYCLES_PER_4K: u64 = 700;

/// Per-byte cost (in picocycles-ish granularity we fold into per-64B) for
/// host-side copies; expressed per 64-byte cache line.
pub const HOST_COPY_CYCLES_PER_64B: u64 = 11;

/// Cost of an interrupt injection into the guest.
pub const IRQ_INJECT_CYCLES: u64 = 2_000;

/// vhost-net: host-kernel backend processes a batch of packets after a
/// single kick; per-packet processing cost in the host kernel path
/// (tap device + bridge).
pub const VHOST_NET_PKT_CYCLES: u64 = 720;

/// vhost-user: DPDK-style userspace backend polls shared memory; no kick
/// and no copy, only a small per-packet descriptor handling cost.
pub const VHOST_USER_PKT_CYCLES: u64 = 150;

/// DPDK guest per-packet TX cost (driver + PMD) used for the
/// "DPDK in a Linux VM" baseline of Figure 19/Table 4.
pub const DPDK_GUEST_PKT_CYCLES: u64 = 160;

/// 9P (virtio-9p) per-message base latency charged on the host side:
/// request parsing, host VFS access, reply construction.
pub const P9_MSG_BASE_CYCLES: u64 = 9_000;

/// Xen adds a grant-table map/unmap per 9pfs message.
pub const XEN_GRANT_CYCLES: u64 = 4_000;

/// Linux guest block/file read path adds the full VFS + page-cache +
/// virtio-blk round trip; per-request extra cost relative to Unikraft's
/// slim path (shape source: paper Fig 20 where Linux latency is
/// consistently above Unikraft's).
pub const LINUX_GUEST_FILE_REQ_CYCLES: u64 = 22_000;

/// Context switch between cooperative threads (register save/restore and
/// stack switch; Unikraft's is a handful of instructions).
pub const CTX_SWITCH_COOP_CYCLES: u64 = 60;

/// Context switch under the preemptive scheduler (adds timer IRQ handling
/// and preemption bookkeeping).
pub const CTX_SWITCH_PREEMPT_CYCLES: u64 = 400;

/// Per-page cost of populating a page-table entry at boot (write + TLB
/// considerations). The *mechanism* in `ukboot::paging` does real work per
/// entry; this constant is only used by baseline models.
pub const PT_ENTRY_WRITE_CYCLES: u64 = 12;

/// KPTI: extra TLB/CR3 switch cost per syscall entry+exit; the difference
/// between the two Linux rows of paper Table 1.
pub const KPTI_EXTRA_CYCLES: u64 = LINUX_SYSCALL_CYCLES - LINUX_SYSCALL_NOMIT_CYCLES;

/// Docker (container, native kernel): syscalls cost the same as native
/// Linux, but seccomp + overlayfs add a small per-syscall filter cost.
pub const SECCOMP_FILTER_CYCLES: u64 = 60;

/// Converts a cycle count at [`CPU_FREQ_HZ`] to nanoseconds (f64 helper for
/// report printing).
pub fn cycles_to_ns_f64(cycles: u64) -> f64 {
    cycles as f64 * 1e9 / CPU_FREQ_HZ as f64
}

/// Host-side copy cost for `bytes` of data (line-granular).
pub fn copy_cost_cycles(bytes: usize) -> u64 {
    let lines = (bytes as u64).div_ceil(64);
    lines * HOST_COPY_CYCLES_PER_64B
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_constants_match_paper() {
        // The paper reports 61.67 ns for 222 cycles at 3.6 GHz.
        let ns = cycles_to_ns_f64(LINUX_SYSCALL_CYCLES);
        assert!((ns - 61.67).abs() < 0.1, "got {ns}");
        let ns = cycles_to_ns_f64(UNIKRAFT_SYSCALL_CYCLES);
        assert!((ns - 23.33).abs() < 0.1, "got {ns}");
        let ns = cycles_to_ns_f64(FUNCTION_CALL_CYCLES);
        assert!((ns - 1.11).abs() < 0.01, "got {ns}");
    }

    #[test]
    fn kpti_delta_is_positive() {
        assert_eq!(KPTI_EXTRA_CYCLES, 68);
    }

    #[test]
    fn copy_cost_is_line_granular() {
        assert_eq!(copy_cost_cycles(0), 0);
        assert_eq!(copy_cost_cycles(1), HOST_COPY_CYCLES_PER_64B);
        assert_eq!(copy_cost_cycles(64), HOST_COPY_CYCLES_PER_64B);
        assert_eq!(copy_cost_cycles(65), 2 * HOST_COPY_CYCLES_PER_64B);
        assert_eq!(copy_cost_cycles(4096), 64 * HOST_COPY_CYCLES_PER_64B);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn relative_order_of_syscall_costs() {
        assert!(FUNCTION_CALL_CYCLES < UNIKRAFT_SYSCALL_CYCLES);
        assert!(UNIKRAFT_SYSCALL_CYCLES < LINUX_SYSCALL_NOMIT_CYCLES);
        assert!(LINUX_SYSCALL_NOMIT_CYCLES < LINUX_SYSCALL_CYCLES);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn vhost_user_cheaper_than_vhost_net() {
        assert!(VHOST_USER_PKT_CYCLES < VHOST_NET_PKT_CYCLES);
    }
}
