//! Syscall shim micro-library (`uksyscall`).
//!
//! §4 of the paper: "we created a micro-library called syscall shim: each
//! library that implements a system call handler registers it, via a
//! macro, with this micro-library. The shim layer then generates a system
//! call interface at libc-level. In this way, we can link to system call
//! implementations directly … with the result that syscalls are
//! transformed into inexpensive function calls."
//!
//! The shim also auto-stubs missing syscalls with `ENOSYS` ("which our
//! shim layer automatically does if a syscall implementation is
//! missing"), which is why several applications run before their syscall
//! coverage is complete (Figure 7).
//!
//! Cost modes reproduce Table 1: in [`SyscallMode::UnikraftNative`] a
//! syscall is a function call through the dispatch table; in
//! [`SyscallMode::UnikraftBinCompat`] a run-time trap-and-translate cost
//! is charged (84 cycles); Linux modes charge the full trap with or
//! without KPTI-era mitigations (222 / 154 cycles).

pub mod bincompat;
pub mod microbench;
pub mod nr;
pub mod shim;

pub use nr::{syscall_name, syscall_nr, UNIKRAFT_RS_SUPPORTED, UNIKRAFT_SUPPORTED};
pub use shim::{SyscallMode, SyscallShim};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_claim_146_syscalls() {
        // §4.1: "we have implementations for 146 syscalls".
        assert_eq!(UNIKRAFT_SUPPORTED.len(), 146);
    }

    #[test]
    fn well_known_numbers() {
        assert_eq!(syscall_nr("read"), Some(0));
        assert_eq!(syscall_nr("write"), Some(1));
        assert_eq!(syscall_name(60), Some("exit"));
    }
}
