//! Example applications and load generators (`ukapps`).
//!
//! The paper's evaluation workloads, reimplemented as real Rust servers
//! running over this workspace's own stack:
//!
//! - [`httpd`] — an nginx-stand-in: HTTP/1.1 keep-alive static server
//!   (Figures 13, 14, 15);
//! - [`kvstore`] — a Redis-stand-in: RESP protocol GET/SET server with
//!   pipelining (Figures 12, 18);
//! - [`sqldb`] — a SQLite-stand-in: SQL tokenizer/parser + row storage
//!   whose record memory flows through `ukalloc` (Figures 16, 17);
//! - [`webcache`] — the Figure 22 web cache opening files via SHFS or
//!   the full vfscore path;
//! - [`udpkv`] — the §6.4/Table 4 UDP key-value store with
//!   syscall-single, syscall-batched, DPDK-style and raw-`uknetdev`
//!   operation modes;
//! - [`loadgen`] — wrk-like and redis-benchmark-like in-process clients.

pub mod httpd;
pub mod kvstore;
pub mod loadgen;
pub mod sqldb;
pub mod udpkv;
pub mod webcache;

/// The shared partial-write drain loop behind [`flush_partial`] and
/// [`flush_partial_queued`]: pushes `out` through `send` until it is
/// empty, the socket stops accepting (`Ok(0)`/`EAGAIN` — the rest
/// stays queued for the caller's next turn), or the connection fails
/// (backlog discarded, returns `false`).
fn drain_partial(
    stack: &mut uknetstack::NetStack,
    sock: uknetstack::SocketHandle,
    out: &mut Vec<u8>,
    send: fn(
        &mut uknetstack::NetStack,
        uknetstack::SocketHandle,
        &[u8],
    ) -> ukplat::Result<usize>,
) -> bool {
    while !out.is_empty() {
        match send(stack, sock, out) {
            Ok(0) => break,
            Ok(n) => {
                out.drain(..n);
            }
            Err(ukplat::Errno::Again) => break,
            Err(_) => {
                out.clear();
                return false;
            }
        }
    }
    true
}

/// Pushes pending bytes into a TCP socket, honoring partial writes:
/// whatever `tcp_send` does not accept (closed tx window, full send
/// buffer) stays queued in `out` for the caller's next turn. Returns
/// `false` when the connection failed and the backlog was discarded.
pub(crate) fn flush_partial(
    stack: &mut uknetstack::NetStack,
    sock: uknetstack::SocketHandle,
    out: &mut Vec<u8>,
) -> bool {
    drain_partial(stack, sock, out, uknetstack::NetStack::tcp_send)
}

/// The burst-datapath variant of [`flush_partial`]: bytes are *queued*
/// on the connection (`tcp_send_queued`) and nothing is pushed to the
/// device — the caller emits every connection's output as one TX burst
/// with `NetStack::flush_output` at the end of its event-loop turn.
pub(crate) fn flush_partial_queued(
    stack: &mut uknetstack::NetStack,
    sock: uknetstack::SocketHandle,
    out: &mut Vec<u8>,
) -> bool {
    drain_partial(stack, sock, out, uknetstack::NetStack::tcp_send_queued)
}

pub use httpd::Httpd;
pub use kvstore::KvStore;
pub use sqldb::SqlDb;
pub use udpkv::{UdpKvMode, UdpKvServer};
pub use webcache::WebCache;
