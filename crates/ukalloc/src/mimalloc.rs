//! mimalloc-style allocator: free-list sharding in action.
//!
//! Models the structure of Leijen et al.'s mimalloc, the state-of-the-art
//! general-purpose allocator the paper uses for its headline numbers
//! (§5.3: "Unikraft measurements use Mimalloc as the memory allocator"):
//!
//! - the heap is carved into 4 MiB *segments*;
//! - segments are carved into 64 KiB *pages*;
//! - each page serves exactly one size class and owns a *sharded* free
//!   list (one list per page rather than one per size class), keeping
//!   the hot path short and cache-local;
//! - the malloc fast path is: pop from the current page's free list, or
//!   bump-allocate from the page's unused tail.
//!
//! Large allocations (> 16 KiB) take a fallback path with a first-fit
//! free list, as mimalloc's huge objects do.

use std::collections::HashMap;

use ukplat::{Errno, Result};

use crate::stats::AllocStats;
use crate::{align_up, Allocator, GpAddr, MIN_ALIGN};

/// Segment size (mimalloc uses 4 MiB segments).
const SEGMENT: usize = 4 * 1024 * 1024;
/// Page size within a segment (mimalloc small pages are 64 KiB).
const PAGE: usize = 64 * 1024;
/// Largest size served from sharded pages.
const SMALL_MAX: usize = 16 * 1024;

/// Size classes: 16, 32, 48, 64, then two classes per power of two
/// (96/128, 192/256, ...), like mimalloc's bins.
fn class_of(size: usize) -> usize {
    debug_assert!(size <= SMALL_MAX);
    let size = size.max(1);
    if size <= 64 {
        size.div_ceil(16) - 1 // 0..=3 for 16/32/48/64
    } else {
        let b = (usize::BITS - (size - 1).leading_zeros()) as usize; // ceil log2
        let base = 1usize << (b - 1);
        let step = base / 2;
        let idx = usize::from(size > base + step);
        4 + (b - 7) * 2 + idx
    }
}

/// Block size for a class (inverse of `class_of`, rounded up).
fn class_size(class: usize) -> usize {
    if class < 4 {
        (class + 1) * 16
    } else {
        let c = class - 4;
        let b = c / 2 + 7;
        let base = 1usize << (b - 1);
        let step = base / 2;
        // idx 0 → base + step (e.g. 96), idx 1 → 2 * base (e.g. 128).
        base + (c % 2 + 1) * step
    }
}

/// One 64 KiB page serving a single size class.
#[derive(Debug)]
struct Page {
    base: GpAddr,
    block_size: usize,
    capacity: u32,
    /// Next never-used block index (bump within the page).
    bump: u32,
    /// Sharded free list: indices of freed blocks in this page.
    free: Vec<u32>,
    used: u32,
}

impl Page {
    fn alloc(&mut self) -> Option<GpAddr> {
        let idx = if let Some(i) = self.free.pop() {
            i
        } else if self.bump < self.capacity {
            let i = self.bump;
            self.bump += 1;
            i
        } else {
            return None;
        };
        self.used += 1;
        Some(self.base + (idx as usize * self.block_size) as u64)
    }
}

/// The mimalloc-style allocator state.
#[derive(Debug, Default)]
pub struct Mimalloc {
    base: GpAddr,
    end: GpAddr,
    /// Bump pointer carving new segments.
    seg_bump: GpAddr,
    /// Bump pointer carving pages inside the current segment.
    page_bump: GpAddr,
    page_bump_end: GpAddr,
    pages: Vec<Page>,
    /// Current page per size class.
    current: Vec<Option<usize>>,
    /// Non-full pages per class (excluding current).
    partial: Vec<Vec<usize>>,
    /// Page directory: page base → page index.
    directory: HashMap<GpAddr, usize>,
    /// Large allocations: addr → size.
    large_used: HashMap<GpAddr, usize>,
    /// Address-ordered large free list.
    large_free: Vec<(GpAddr, usize)>,
    /// Bump for large area (carved from the top of the heap downwards).
    large_top: GpAddr,
    stats: AllocStats,
    initialized: bool,
}

impl Mimalloc {
    /// Creates an uninitialized mimalloc.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of size classes we track.
    fn nclasses() -> usize {
        class_of(SMALL_MAX) + 1
    }

    fn new_page(&mut self, class: usize) -> Option<usize> {
        if self.page_bump + PAGE as u64 > self.page_bump_end {
            // Carve a new segment.
            let seg = align_up(self.seg_bump, PAGE as u64);
            if seg + SEGMENT as u64 > self.large_top {
                // Heap exhausted (segments grow up, large area grows down).
                // Fall back to a smaller final segment if possible.
                if seg + PAGE as u64 > self.large_top {
                    return None;
                }
                self.page_bump = seg;
                self.page_bump_end = self.large_top & !(PAGE as u64 - 1);
                self.seg_bump = self.page_bump_end;
            } else {
                self.page_bump = seg;
                self.page_bump_end = seg + SEGMENT as u64;
                self.seg_bump = seg + SEGMENT as u64;
            }
        }
        let base = self.page_bump;
        self.page_bump += PAGE as u64;
        let block_size = class_size(class);
        let page = Page {
            base,
            block_size,
            capacity: (PAGE / block_size) as u32,
            bump: 0,
            free: Vec::new(),
            used: 0,
        };
        let idx = self.pages.len();
        self.pages.push(page);
        self.directory.insert(base, idx);
        Some(idx)
    }

    fn alloc_small(&mut self, size: usize) -> Option<GpAddr> {
        let class = class_of(size);
        // Fast path: current page.
        if let Some(pi) = self.current[class] {
            if let Some(p) = self.pages[pi].alloc() {
                return Some(p);
            }
        }
        // Retire the full page; adopt a partial or a fresh one.
        let pi = match self.partial[class].pop() {
            Some(pi) => pi,
            None => self.new_page(class)?,
        };
        self.current[class] = Some(pi);
        self.pages[pi].alloc()
    }

    fn alloc_large(&mut self, size: usize, align: usize) -> Option<GpAddr> {
        let size = align_up(size as u64, MIN_ALIGN as u64) as usize;
        // First-fit over the large free list.
        for i in 0..self.large_free.len() {
            let (addr, bsize) = self.large_free[i];
            let aligned = align_up(addr, align as u64);
            let pad = (aligned - addr) as usize;
            if pad + size <= bsize {
                self.large_free.remove(i);
                if pad > 0 {
                    self.large_free.push((addr, pad));
                }
                let rem = bsize - pad - size;
                if rem > 0 {
                    self.large_free.push((aligned + size as u64, rem));
                }
                self.large_used.insert(aligned, size);
                return Some(aligned);
            }
        }
        // Carve downward from the top.
        let aligned_top = (self.large_top - size as u64) & !(align as u64 - 1);
        if aligned_top < self.seg_bump.max(self.page_bump) {
            return None;
        }
        let gap = self.large_top - (aligned_top + size as u64);
        if gap > 0 {
            self.large_free.push((aligned_top + size as u64, gap as usize));
        }
        self.large_top = aligned_top;
        self.large_used.insert(aligned_top, size);
        Some(aligned_top)
    }
}

impl Allocator for Mimalloc {
    fn name(&self) -> &'static str {
        "Mimalloc"
    }

    fn init(&mut self, base: GpAddr, len: usize) -> Result<()> {
        if self.initialized {
            return Err(Errno::Busy);
        }
        if len < 2 * PAGE {
            return Err(Errno::Inval);
        }
        let base = align_up(base, PAGE as u64);
        self.base = base;
        self.end = base + len as u64;
        self.seg_bump = base;
        self.page_bump = base;
        self.page_bump_end = base;
        self.large_top = self.end;
        let n = Self::nclasses();
        self.current = vec![None; n];
        self.partial = vec![Vec::new(); n];
        // mimalloc init allocates its heap metadata: size-class tables and
        // an initial segment descriptor. Moderate cost, far below buddy.
        self.pages = Vec::with_capacity(64);
        self.stats.meta_bytes = n * 64 + 64 * std::mem::size_of::<Page>();
        self.initialized = true;
        Ok(())
    }

    fn malloc(&mut self, size: usize) -> Option<GpAddr> {
        let size = size.max(1);
        let r = if size <= SMALL_MAX {
            self.alloc_small(size)
        } else {
            self.alloc_large(size, MIN_ALIGN)
        };
        match r {
            Some(p) => {
                self.stats.on_alloc(size);
                Some(p)
            }
            None => {
                self.stats.on_fail();
                None
            }
        }
    }

    fn memalign(&mut self, align: usize, size: usize) -> Option<GpAddr> {
        if align <= MIN_ALIGN {
            return self.malloc(size);
        }
        // Small aligned requests: use a class whose block size is a
        // multiple of the alignment (pages are PAGE-aligned and blocks are
        // block_size-strided from the page base).
        if size <= SMALL_MAX && align <= PAGE {
            let need = align_up(size.max(align) as u64, align as u64) as usize;
            if need <= SMALL_MAX {
                let class = class_of(need);
                if class_size(class).is_multiple_of(align) {
                    let r = self.alloc_small(need);
                    if let Some(p) = r {
                        if p % align as u64 == 0 {
                            self.stats.on_alloc(need);
                            return Some(p);
                        }
                        // Block not aligned (class size not a multiple);
                        // release and fall through to the large path.
                        self.free_inner(p, false);
                    }
                }
            }
        }
        let r = self.alloc_large(size, align);
        match r {
            Some(p) => {
                self.stats.on_alloc(size);
                Some(p)
            }
            None => {
                self.stats.on_fail();
                None
            }
        }
    }

    fn free(&mut self, ptr: GpAddr) {
        self.free_inner(ptr, true);
    }

    fn available(&self) -> usize {
        let seg_area = (self.large_top.saturating_sub(self.page_bump)) as usize;
        let page_free: usize = self
            .pages
            .iter()
            .map(|p| {
                ((p.capacity - p.bump) as usize + p.free.len()) * p.block_size
            })
            .sum();
        let large_free: usize = self.large_free.iter().map(|&(_, s)| s).sum();
        seg_area + page_free + large_free
    }

    fn stats(&self) -> AllocStats {
        self.stats
    }
}

impl Mimalloc {
    fn free_inner(&mut self, ptr: GpAddr, count: bool) {
        if let Some(size) = self.large_used.remove(&ptr) {
            if count {
                self.stats.on_free(size);
            }
            self.large_free.push((ptr, size));
            return;
        }
        let page_base = ptr & !(PAGE as u64 - 1);
        let pi = *self
            .directory
            .get(&page_base)
            .unwrap_or_else(|| panic!("mimalloc: free of unallocated address {ptr:#x}"));
        let page = &mut self.pages[pi];
        let off = ptr - page.base;
        assert_eq!(
            off % page.block_size as u64,
            0,
            "mimalloc: interior free at {ptr:#x}"
        );
        let idx = (off / page.block_size as u64) as u32;
        assert!(idx < page.bump, "mimalloc: free of never-allocated block");
        debug_assert!(!page.free.contains(&idx), "double free at {ptr:#x}");
        let was_full = page.used == page.capacity;
        page.free.push(idx);
        page.used -= 1;
        if count {
            self.stats.on_free(page.block_size);
        }
        if was_full {
            // Page becomes reusable: put it back on the partial list.
            let class = class_of(page.block_size);
            if self.current[class] != Some(pi) {
                self.partial[class].push(pi);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(len: usize) -> Mimalloc {
        let mut m = Mimalloc::new();
        m.init(1 << 22, len).unwrap();
        m
    }

    #[test]
    fn class_size_is_inverse_of_class_of() {
        for size in [1, 16, 17, 64, 65, 100, 128, 1000, 4096, 10000, SMALL_MAX] {
            let c = class_of(size);
            assert!(
                class_size(c) >= size,
                "class {c} size {} < request {size}",
                class_size(c)
            );
        }
    }

    #[test]
    fn classes_are_monotonic() {
        let mut last = 0;
        for s in 1..=SMALL_MAX {
            let c = class_of(s);
            assert!(c >= last);
            last = c;
        }
    }

    #[test]
    fn small_allocs_share_page() {
        let mut m = mk(16 << 20);
        let a = m.malloc(100).unwrap();
        let b = m.malloc(100).unwrap();
        // Same 64 KiB page.
        assert_eq!(a & !(PAGE as u64 - 1), b & !(PAGE as u64 - 1));
        assert_ne!(a, b);
    }

    #[test]
    fn sharded_free_list_reuses_block() {
        let mut m = mk(16 << 20);
        let a = m.malloc(100).unwrap();
        let _b = m.malloc(100).unwrap();
        m.free(a);
        let c = m.malloc(100).unwrap();
        assert_eq!(a, c, "freed block must be reused from the page shard");
    }

    #[test]
    fn large_allocations_work_and_free() {
        let mut m = mk(16 << 20);
        let p = m.malloc(1 << 20).unwrap();
        let q = m.malloc(1 << 20).unwrap();
        assert_ne!(p, q);
        m.free(p);
        m.free(q);
        let r = m.malloc(1 << 20).unwrap();
        assert!(r >= m.base);
    }

    #[test]
    fn page_exhaustion_rolls_to_new_page() {
        let mut m = mk(16 << 20);
        let per_page = PAGE / 16;
        let mut ptrs = Vec::new();
        for _ in 0..per_page + 10 {
            ptrs.push(m.malloc(16).unwrap());
        }
        let pages: std::collections::HashSet<_> =
            ptrs.iter().map(|p| p & !(PAGE as u64 - 1)).collect();
        assert!(pages.len() >= 2);
        for p in ptrs {
            m.free(p);
        }
    }

    #[test]
    fn memalign_large_alignment() {
        let mut m = mk(16 << 20);
        let p = m.memalign(4096, 5000).unwrap();
        assert_eq!(p % 4096, 0);
        m.free(p);
    }

    #[test]
    fn exhaustion_fails_cleanly() {
        let mut m = mk(2 * PAGE + 4096);
        let mut ok = 0;
        while m.malloc(1024).is_some() {
            ok += 1;
            if ok > 1_000_000 {
                panic!("never exhausts");
            }
        }
        assert!(m.stats().failed_count > 0);
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn wild_free_panics() {
        let mut m = mk(16 << 20);
        m.free(0x99);
    }
}
