//! The Kconfig-style configuration menu.

use std::collections::HashMap;

use crate::registry::LibRegistry;

/// Target platform choices (one binary per selected platform, §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TargetPlat {
    /// QEMU/KVM.
    Kvm,
    /// Xen PV.
    Xen,
    /// Linux user-space debug target (§7 "Debugging").
    LinuxU,
}

impl TargetPlat {
    /// The platform micro-library implementing this target.
    pub fn lib(self) -> &'static str {
        match self {
            TargetPlat::Kvm => "plat-kvm",
            TargetPlat::Xen => "plat-xen",
            TargetPlat::LinuxU => "plat-linuxu",
        }
    }
}

/// A build configuration: the outcome of a `make menuconfig` session.
#[derive(Debug, Clone)]
pub struct BuildConfig {
    /// Application root library (e.g. "app-nginx").
    pub app: &'static str,
    /// Platforms to produce binaries for.
    pub platforms: Vec<TargetPlat>,
    /// Extra libraries selected beyond the app's defaults.
    pub extra_libs: Vec<&'static str>,
    /// Libraries explicitly deselected (specialization by removal —
    /// e.g. dropping "lwip" and "uksched" for the UDP appliance of §6.4).
    pub removed_libs: Vec<&'static str>,
    /// Per-library option strings (Kconfig values).
    pub options: HashMap<String, String>,
}

impl BuildConfig {
    /// Starts a configuration for an application.
    pub fn new(app: &'static str) -> Self {
        BuildConfig {
            app,
            platforms: vec![TargetPlat::Kvm],
            extra_libs: Vec::new(),
            removed_libs: Vec::new(),
            options: HashMap::new(),
        }
    }

    /// Adds a library selection.
    pub fn with_lib(mut self, lib: &'static str) -> Self {
        self.extra_libs.push(lib);
        self
    }

    /// Removes a library (and everything only reachable through it).
    pub fn without_lib(mut self, lib: &'static str) -> Self {
        self.removed_libs.push(lib);
        self
    }

    /// Sets a Kconfig option.
    pub fn with_option(mut self, key: &str, value: &str) -> Self {
        self.options.insert(key.to_string(), value.to_string());
        self
    }

    /// Targets an additional platform.
    pub fn for_platform(mut self, p: TargetPlat) -> Self {
        if !self.platforms.contains(&p) {
            self.platforms.push(p);
        }
        self
    }

    /// Resolves the final library set: app closure + extras − removals.
    ///
    /// Removal is *subtractive specialization*: the removed library and
    /// any dependency no longer reachable from the roots disappear.
    pub fn resolve(&self, registry: &LibRegistry) -> Result<Vec<&'static str>, String> {
        let mut roots: Vec<&str> = vec![self.app];
        roots.extend(self.extra_libs.iter().copied());
        for p in &self.platforms {
            roots.push(p.lib());
        }
        let full = registry.closure(&roots)?;
        if self.removed_libs.is_empty() {
            return Ok(full);
        }
        // Re-run the closure walking around removed libraries.
        let mut seen: Vec<&'static str> = Vec::new();
        let mut stack: Vec<&str> = roots
            .iter()
            .copied()
            .filter(|r| !self.removed_libs.contains(r))
            .collect();
        while let Some(name) = stack.pop() {
            if self.removed_libs.contains(&name) {
                continue;
            }
            let lib = registry
                .get(name)
                .ok_or_else(|| format!("unknown micro-library: {name}"))?;
            if seen.contains(&lib.name) {
                continue;
            }
            seen.push(lib.name);
            stack.extend(
                lib.deps
                    .iter()
                    .copied()
                    .filter(|d| !self.removed_libs.contains(d)),
            );
        }
        seen.sort_unstable();
        let _ = full;
        Ok(seen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_resolves() {
        let r = LibRegistry::standard();
        let c = BuildConfig::new("app-nginx");
        let libs = c.resolve(&r).unwrap();
        assert!(libs.contains(&"lwip"));
        assert!(libs.contains(&"plat-kvm"));
    }

    #[test]
    fn removal_specializes_the_image() {
        // §6.4: "we remove the lwip stack and scheduler altogether (via
        // Unikraft's Kconfig menu) and code against the uknetdev API".
        let r = LibRegistry::standard();
        let c = BuildConfig::new("app-nginx")
            .without_lib("lwip")
            .without_lib("ukschedcoop")
            .with_lib("uknetdev");
        let libs = c.resolve(&r).unwrap();
        assert!(!libs.contains(&"lwip"));
        assert!(!libs.contains(&"ukschedcoop"));
        assert!(
            !libs.contains(&"uksched"),
            "dep only reachable through removed libs is dropped"
        );
        assert!(libs.contains(&"uknetdev"));
    }

    #[test]
    fn multi_platform_adds_both_plat_libs() {
        let r = LibRegistry::standard();
        let c = BuildConfig::new("app-helloworld").for_platform(TargetPlat::Xen);
        let libs = c.resolve(&r).unwrap();
        assert!(libs.contains(&"plat-kvm"));
        assert!(libs.contains(&"plat-xen"));
    }

    #[test]
    fn options_are_stored() {
        let c = BuildConfig::new("app-redis").with_option("CONFIG_LWIP_POOLS", "y");
        assert_eq!(c.options["CONFIG_LWIP_POOLS"], "y");
    }

    #[test]
    fn shared_dep_survives_removal_of_one_parent() {
        let r = LibRegistry::standard();
        // Removing the scheduler must not remove uklock (still used by
        // lwip and vfscore).
        let c = BuildConfig::new("app-nginx").without_lib("ukschedcoop");
        let libs = c.resolve(&r).unwrap();
        assert!(libs.contains(&"uklock"));
    }
}
