//! Trace-order assertions over the stack's tracepoint ring.
//!
//! Each scenario drives real traffic through the in-process wire, then
//! drains the per-stack [`TraceRing`](uktrace::TraceRing) and asserts
//! the datapath fired its tracepoints *in the order the protocol
//! mandates* — the uktrace analogue of "the TCP handshake happens
//! before data". Across the echo + bulk scenarios at least ten
//! distinct tracepoints must fire (the PR's acceptance bar).

#![cfg(feature = "trace")]

use uknetdev::backend::VhostKind;
use uknetdev::dev::{NetDev, NetDevConf};
use uknetdev::VirtioNet;
use uknetstack::stack::{NetStack, StackConfig};
use uknetstack::testnet::Network;
use uknetstack::{Endpoint, Ipv4Addr};
use ukplat::time::Tsc;

fn mk_stack(n: u8) -> NetStack {
    let tsc = Tsc::new(3_600_000_000);
    let mut dev = VirtioNet::new(VhostKind::VhostUser, &tsc);
    dev.configure(NetDevConf::default()).unwrap();
    NetStack::new(StackConfig::node(n), Box::new(dev))
}

/// Index of the first record named `name`, or a panic listing what did
/// fire — so an ordering failure shows the whole trace.
fn first(names: &[&'static str], name: &str) -> usize {
    names
        .iter()
        .position(|n| *n == name)
        .unwrap_or_else(|| panic!("tracepoint {name} never fired; trace: {names:?}"))
}

#[test]
fn tcp_echo_fires_lifecycle_tracepoints_in_protocol_order() {
    let mut net = Network::new();
    let ci = net.attach(mk_stack(1));
    let si = net.attach(mk_stack(2));
    let listener = net.stack(si).tcp_listen(7).unwrap();
    let client = net
        .stack(ci)
        .tcp_connect(Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 7))
        .unwrap();
    net.run_until_quiet(32);
    let server = net.stack(si).tcp_accept(listener).unwrap();

    let mut buf = [0u8; 2048];
    net.stack(ci).tcp_send(client, b"hello trace").unwrap();
    net.run_until_quiet(32);
    let n = net.stack(si).tcp_recv_into(server, &mut buf).unwrap();
    net.stack(si).tcp_send(server, &buf[..n]).unwrap();
    net.run_until_quiet(32);
    net.stack(ci).tcp_recv_into(client, &mut buf).unwrap();

    let server_ev = net.stack(si).trace_events();
    let names: Vec<&'static str> = server_ev.iter().map(|e| e.name()).collect();

    // The server side of the story, in protocol order: the client's
    // who-has broadcast arrives first, then its SYN, the connection
    // establishes, and only then does request data land.
    let arp = first(&names, "arp_request_rx");
    let syn = first(&names, "tcp_syn_rx");
    let est = first(&names, "tcp_established");
    let data = first(&names, "tcp_data_rx");
    assert!(arp < syn, "who-has precedes the SYN: {names:?}");
    assert!(syn < est, "SYN precedes establishment: {names:?}");
    assert!(est < data, "establishment precedes data: {names:?}");
    // The server transmitted segments (SYN|ACK, ACKs, the echo).
    first(&names, "tcp_segment_tx");

    // Client side: it broadcast the who-has, got the reply, and saw
    // the same establish-then-data order.
    let client_ev = net.stack(ci).trace_events();
    let cnames: Vec<&'static str> = client_ev.iter().map(|e| e.name()).collect();
    let req = first(&cnames, "arp_request_tx");
    let rep = first(&cnames, "arp_reply_rx");
    let cest = first(&cnames, "tcp_established");
    let cdata = first(&cnames, "tcp_data_rx");
    assert!(req < rep, "request precedes reply: {cnames:?}");
    assert!(cest < cdata, "establishment precedes echo data: {cnames:?}");

    // Timestamps (sequence stamps without a clock) are non-decreasing.
    for pair in server_ev.windows(2) {
        assert!(pair[0].ts <= pair[1].ts, "records drain in order");
    }
}

#[test]
fn bulk_scenarios_cover_the_fast_path_tracepoints() {
    // TSO on: the transfer leaves as super-segments and arrives whole.
    let mut net = Network::new();
    let ci = net.attach(mk_stack(1));
    let si = net.attach(mk_stack(2));
    assert!(net.stack(ci).tso());
    let listener = net.stack(si).tcp_listen(9000).unwrap();
    let client = net
        .stack(ci)
        .tcp_connect(Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 9000))
        .unwrap();
    net.run_until_quiet(32);
    let server = net.stack(si).tcp_accept(listener).unwrap();
    // Handshake noise out of the way: only the bulk transfer below.
    net.stack(ci).trace_events();
    net.stack(si).trace_events();

    const TOTAL: usize = 256 * 1024;
    let chunk = [0x6bu8; 64 * 1024];
    let mut buf = vec![0u8; 64 * 1024];
    let mut sent = 0;
    let mut got = 0;
    while got < TOTAL {
        if sent < TOTAL {
            let want = chunk.len().min(TOTAL - sent);
            sent += net.stack(ci).tcp_send_queued(client, &chunk[..want]).unwrap_or(0);
            net.stack(ci).flush_output().unwrap();
        }
        net.step();
        loop {
            let n = net.stack(si).tcp_recv_into(server, &mut buf).unwrap();
            if n == 0 {
                break;
            }
            got += n;
        }
    }

    let tx_names: Vec<&'static str> =
        net.stack(ci).trace_events().iter().map(|e| e.name()).collect();
    assert!(
        tx_names.iter().any(|n| *n == "tso_super_tx"),
        "bulk TX left as super-segments: {tx_names:?}"
    );
    let rx_names: Vec<&'static str> =
        net.stack(si).trace_events().iter().map(|e| e.name()).collect();
    assert!(
        rx_names.iter().any(|n| *n == "tcp_super_rx"),
        "bulk RX arrived as chains: {rx_names:?}"
    );

    // TSO off: per-MSS frames coalesce in GRO on the receive side.
    let mut net = Network::new();
    let tsc = Tsc::new(3_600_000_000);
    let mut dev = VirtioNet::new(VhostKind::VhostUser, &tsc);
    dev.configure(NetDevConf::default()).unwrap();
    let mut cfg = StackConfig::node(1);
    cfg.tso = false;
    let ci = net.attach(NetStack::new(cfg, Box::new(dev)));
    let si = net.attach(mk_stack(2));
    let listener = net.stack(si).tcp_listen(9100).unwrap();
    let client = net
        .stack(ci)
        .tcp_connect(Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 9100))
        .unwrap();
    net.run_until_quiet(32);
    let server = net.stack(si).tcp_accept(listener).unwrap();
    net.stack(si).trace_events();
    let mut sent = 0;
    let mut got = 0;
    while got < TOTAL {
        if sent < TOTAL {
            let want = chunk.len().min(TOTAL - sent);
            sent += net.stack(ci).tcp_send_queued(client, &chunk[..want]).unwrap_or(0);
            net.stack(ci).flush_output().unwrap();
        }
        net.step();
        loop {
            let n = net.stack(si).tcp_recv_into(server, &mut buf).unwrap();
            if n == 0 {
                break;
            }
            got += n;
        }
    }
    let gro_names: Vec<&'static str> =
        net.stack(si).trace_events().iter().map(|e| e.name()).collect();
    assert!(
        gro_names.iter().any(|n| *n == "gro_merge"),
        "per-MSS bulk coalesced in GRO: {gro_names:?}"
    );
}

#[test]
fn ten_distinct_tracepoints_fire_across_echo_and_bulk() {
    use std::collections::BTreeSet;
    let mut seen: BTreeSet<&'static str> = BTreeSet::new();
    let mut net = Network::new();
    let ci = net.attach(mk_stack(1));
    let si = net.attach(mk_stack(2));

    // UDP to an unbound port: a demux miss. Then bind and hit it.
    let client_sock = net.stack(ci).udp_bind(5000).unwrap();
    let server_ep = Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 9);
    net.stack(ci).udp_send_to(client_sock, b"miss", server_ep).unwrap();
    net.run_until_quiet(16);
    let server_sock = net.stack(si).udp_bind(9).unwrap();
    net.stack(ci).udp_send_to(client_sock, b"hit", server_ep).unwrap();
    net.run_until_quiet(16);
    let mut buf = [0u8; 2048];
    let _ = net.stack(si).udp_recv_into(server_sock, &mut buf);

    // ICMP echo.
    net.stack(ci).ping(Ipv4Addr::new(10, 0, 0, 2), 1, 1).unwrap();
    net.run_until_quiet(16);

    // TCP echo.
    let listener = net.stack(si).tcp_listen(7).unwrap();
    let client = net
        .stack(ci)
        .tcp_connect(Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 7))
        .unwrap();
    net.run_until_quiet(32);
    let server = net.stack(si).tcp_accept(listener).unwrap();
    net.stack(ci).tcp_send(client, b"ping").unwrap();
    net.run_until_quiet(32);
    let n = net.stack(si).tcp_recv_into(server, &mut buf).unwrap();
    net.stack(si).tcp_send(server, &buf[..n]).unwrap();
    net.run_until_quiet(32);

    // Bulk with TSO (client side) and big receive (server side).
    const TOTAL: usize = 128 * 1024;
    let chunk = [0x11u8; 32 * 1024];
    let mut big = vec![0u8; 64 * 1024];
    let mut sent = 0;
    let mut got = 0;
    while got < TOTAL {
        if sent < TOTAL {
            let want = chunk.len().min(TOTAL - sent);
            sent += net.stack(ci).tcp_send_queued(client, &chunk[..want]).unwrap_or(0);
            net.stack(ci).flush_output().unwrap();
        }
        net.step();
        loop {
            let n = net.stack(si).tcp_recv_into(server, &mut big).unwrap();
            if n == 0 {
                break;
            }
            got += n;
        }
    }

    for idx in [ci, si] {
        for ev in net.stack(idx).trace_events() {
            seen.insert(ev.name());
        }
    }
    assert!(
        seen.len() >= 10,
        "at least ten distinct tracepoints across echo + bulk, got {}: {seen:?}",
        seen.len()
    );
}
