// Known-bad: vec! and format! allocate on the hot path.
pub fn label(n: usize) -> String {
    let _scratch = vec![0u8; n];
    format!("frame-{n}")
}
