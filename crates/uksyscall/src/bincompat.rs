//! Binary compatibility: syscall trapping vs HermiTux-style rewriting.
//!
//! §4/§4.1 of the paper: "for cases where the source code is not
//! available, Unikraft also supports binary compatibility and binary
//! rewriting as done in HermiTux". Two strategies over an unmodified
//! binary:
//!
//! - **run-time translation**: every `syscall` instruction traps and is
//!   translated (84 cycles per call, Table 1);
//! - **binary rewriting**: a one-time scan patches each `syscall` site
//!   into a direct call to the shim (thereafter only the function-call
//!   cost remains). Sites too close to a branch target cannot be
//!   patched safely and keep trapping, as in HermiTux.
//!
//! The "binary" here is a synthetic instruction stream: opcodes with a
//! two-byte `0F 05` syscall encoding, which is what the real rewriter
//! scans for.

use ukplat::cost;
use ukplat::time::Tsc;

/// A minimal instruction stream model.
#[derive(Debug, Clone)]
pub struct BinaryImage {
    /// Byte stream of "instructions".
    pub text: Vec<u8>,
    /// Offsets that are branch targets (cannot be overlapped by a
    /// patched call sequence).
    pub branch_targets: Vec<usize>,
}

impl BinaryImage {
    /// Builds an image with `nsites` syscall sites spread through `len`
    /// bytes of padding, marking every `k`-th site as a branch target.
    pub fn synthetic(len: usize, nsites: usize, unpatchable_every: usize) -> Self {
        assert!(nsites > 0 && len >= nsites * 16);
        let mut text = vec![0x90u8; len]; // NOP sled.
        let mut branch_targets = Vec::new();
        let stride = len / nsites;
        for i in 0..nsites {
            let off = i * stride;
            text[off] = 0x0f;
            text[off + 1] = 0x05;
            if unpatchable_every > 0 && i % unpatchable_every == 0 {
                // A jump lands right on this site: rewriting would
                // corrupt the landing pad.
                branch_targets.push(off);
            }
        }
        BinaryImage {
            text,
            branch_targets,
        }
    }

    /// Scans for `syscall` instruction sites (the rewriter's real work).
    pub fn find_syscall_sites(&self) -> Vec<usize> {
        self.text
            .windows(2)
            .enumerate()
            .filter(|(_, w)| w == &[0x0f, 0x05])
            .map(|(i, _)| i)
            .collect()
    }
}

/// Result of rewriting an image.
#[derive(Debug, Clone)]
pub struct RewriteReport {
    /// Sites patched into direct calls.
    pub patched: usize,
    /// Sites left trapping (branch-target hazard).
    pub trapping: usize,
}

/// Rewrites all safely patchable syscall sites; patched sites become
/// `call` instructions (0xE8 + offset placeholder).
pub fn rewrite(image: &mut BinaryImage) -> RewriteReport {
    let sites = image.find_syscall_sites();
    let mut patched = 0;
    let mut trapping = 0;
    for off in sites {
        if image.branch_targets.contains(&off) {
            trapping += 1;
            continue;
        }
        image.text[off] = 0xe8;
        image.text[off + 1] = 0x00;
        patched += 1;
    }
    RewriteReport { patched, trapping }
}

/// Executes `rounds` passes over the image's syscall sites, charging
/// per-site costs: patched sites cost a function call, unpatched sites
/// the run-time translation trap. Returns total cycles charged.
pub fn execute(image: &BinaryImage, rounds: u64, tsc: &Tsc) -> u64 {
    let before = tsc.now_cycles();
    let mut call_sites = 0u64;
    let mut trap_sites = 0u64;
    for (i, w) in image.text.windows(2).enumerate() {
        if w == [0x0f, 0x05] && !image.branch_targets.contains(&i) {
            trap_sites += 1;
        } else if w[0] == 0xe8 {
            call_sites += 1;
        } else if w == [0x0f, 0x05] {
            trap_sites += 1;
        }
    }
    tsc.advance(rounds * call_sites * cost::FUNCTION_CALL_CYCLES);
    tsc.advance(rounds * trap_sites * cost::UNIKRAFT_SYSCALL_CYCLES);
    tsc.now_cycles() - before
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scanner_finds_all_sites() {
        let img = BinaryImage::synthetic(4096, 16, 0);
        assert_eq!(img.find_syscall_sites().len(), 16);
    }

    #[test]
    fn rewriting_patches_safe_sites_only() {
        let mut img = BinaryImage::synthetic(4096, 16, 4);
        let report = rewrite(&mut img);
        assert_eq!(report.patched + report.trapping, 16);
        assert_eq!(report.trapping, 4, "every 4th site is a branch target");
        // Patched sites no longer scan as syscalls.
        assert_eq!(img.find_syscall_sites().len(), 4);
    }

    #[test]
    fn rewritten_binary_runs_cheaper() {
        let tsc_trap = Tsc::new(cost::CPU_FREQ_HZ);
        let img = BinaryImage::synthetic(4096, 16, 0);
        let trap_cycles = execute(&img, 100, &tsc_trap);

        let tsc_rw = Tsc::new(cost::CPU_FREQ_HZ);
        let mut img2 = BinaryImage::synthetic(4096, 16, 0);
        rewrite(&mut img2);
        let rw_cycles = execute(&img2, 100, &tsc_rw);

        // Table 1: 84 vs 4 cycles → 21x per site.
        assert_eq!(trap_cycles, 100 * 16 * cost::UNIKRAFT_SYSCALL_CYCLES);
        assert_eq!(rw_cycles, 100 * 16 * cost::FUNCTION_CALL_CYCLES);
        assert!(trap_cycles > 20 * rw_cycles);
    }

    #[test]
    fn partially_patchable_binary_mixes_costs() {
        let tsc = Tsc::new(cost::CPU_FREQ_HZ);
        let mut img = BinaryImage::synthetic(4096, 8, 2);
        let report = rewrite(&mut img);
        let cycles = execute(&img, 1, &tsc);
        let expect = report.patched as u64 * cost::FUNCTION_CALL_CYCLES
            + report.trapping as u64 * cost::UNIKRAFT_SYSCALL_CYCLES;
        assert_eq!(cycles, expect);
    }
}
