//! Wire-level TCP loss-recovery tests: retransmission timers, fast
//! retransmit, out-of-order reassembly and congestion control driven
//! through real stacks over the testnet's deterministic fault modes.
//!
//! Every test follows the same shape: establish on a clean wire (so
//! ARP and the handshake cannot be eaten), arm a fault schedule and a
//! shared virtual clock, then prove the stream still arrives
//! byte-identical — and that the recovery showed up in the
//! `netstack.tcp.*` loss counters, not by accident.

use uknetdev::backend::VhostKind;
use uknetdev::dev::{NetDev, NetDevConf};
use uknetdev::VirtioNet;
use uknetstack::stack::{NetStack, SocketHandle, StackConfig};
use uknetstack::testnet::Network;
use uknetstack::{Endpoint, Ipv4Addr};
use ukplat::time::Tsc;

const POOL: usize = 512;

fn mk_stack(n: u8, tso: bool, cc: bool) -> NetStack {
    let tsc = Tsc::new(3_600_000_000);
    let mut dev = VirtioNet::new(VhostKind::VhostUser, &tsc);
    dev.configure(NetDevConf::default()).unwrap();
    let mut cfg = StackConfig::node(n);
    cfg.tso = tso;
    cfg.congestion_control = cc;
    NetStack::new(cfg, Box::new(dev))
}

/// A stack with an arbitrary config tweak on top of the node defaults
/// (per-MSS frames, cc on) — for the recovery-ablation tests.
fn mk_stack_cfg(n: u8, f: impl FnOnce(&mut StackConfig)) -> NetStack {
    let tsc = Tsc::new(3_600_000_000);
    let mut dev = VirtioNet::new(VhostKind::VhostUser, &tsc);
    dev.configure(NetDevConf::default()).unwrap();
    let mut cfg = StackConfig::node(n);
    cfg.tso = false;
    f(&mut cfg);
    NetStack::new(cfg, Box::new(dev))
}

/// A two-node clocked net where both stacks get the same config tweak.
fn clocked_net_cfg(step_ns: u64, f: impl Fn(&mut StackConfig)) -> Network {
    let mut net = Network::new();
    net.attach(mk_stack_cfg(1, &f));
    net.attach(mk_stack_cfg(2, &f));
    let tsc = Tsc::new(1_000_000_000); // 1 cycle = 1 ns.
    net.set_clock(&tsc);
    net.set_step_ns(step_ns);
    net
}

/// A two-node net with a shared virtual clock advancing `step_ns` per
/// step. `tso = false` keeps data on per-MSS plain wire frames — the
/// shape the fault injector acts on.
fn clocked_net(tso: bool, cc: bool, step_ns: u64) -> Network {
    let mut net = Network::new();
    net.attach(mk_stack(1, tso, cc));
    net.attach(mk_stack(2, tso, cc));
    let tsc = Tsc::new(1_000_000_000); // 1 cycle = 1 ns.
    net.set_clock(&tsc);
    net.set_step_ns(step_ns);
    net
}

fn establish(net: &mut Network, port: u16) -> (SocketHandle, SocketHandle) {
    let listener = net.stack(1).tcp_listen(port).unwrap();
    let server_ip = net.stack(1).ip();
    let client = net
        .stack(0)
        .tcp_connect(Endpoint::new(server_ip, port))
        .unwrap();
    net.run_until_quiet(32);
    let conn = net.stack(1).tcp_accept(listener).unwrap();
    (client, conn)
}

/// Sends `data` client→server, draining the server each step; panics
/// if the transfer does not complete within `rounds` steps.
fn bulk_send(
    net: &mut Network,
    client: SocketHandle,
    conn: SocketHandle,
    data: &[u8],
    rounds: usize,
) -> Vec<u8> {
    let mut got = Vec::with_capacity(data.len());
    let mut sent = 0;
    let mut buf = vec![0u8; 64 * 1024];
    for _ in 0..rounds {
        if sent < data.len() {
            let n = net
                .stack(0)
                .tcp_send_queued(client, &data[sent..])
                .unwrap_or(0);
            sent += n;
            net.stack(0).flush_output().unwrap();
        }
        net.step();
        loop {
            let n = net.stack(1).tcp_recv_into(conn, &mut buf).unwrap();
            if n == 0 {
                break;
            }
            got.extend_from_slice(&buf[..n]);
        }
        if got.len() == data.len() {
            break;
        }
    }
    got
}

fn patterned(len: usize, mul: u32) -> Vec<u8> {
    (0..len as u32).map(|i| (i.wrapping_mul(mul) % 251) as u8).collect()
}

/// Like [`bulk_send`], but also reports how many wire steps the
/// transfer took — the goodput measure the ablation tests compare.
fn bulk_send_counting(
    net: &mut Network,
    client: SocketHandle,
    conn: SocketHandle,
    data: &[u8],
    rounds: usize,
) -> (Vec<u8>, usize) {
    let mut got = Vec::with_capacity(data.len());
    let mut sent = 0;
    let mut buf = vec![0u8; 64 * 1024];
    let mut used = rounds;
    for round in 0..rounds {
        if sent < data.len() {
            let n = net
                .stack(0)
                .tcp_send_queued(client, &data[sent..])
                .unwrap_or(0);
            sent += n;
            net.stack(0).flush_output().unwrap();
        }
        net.step();
        loop {
            let n = net.stack(1).tcp_recv_into(conn, &mut buf).unwrap();
            if n == 0 {
                break;
            }
            got.extend_from_slice(&buf[..n]);
        }
        if got.len() == data.len() {
            used = round + 1;
            break;
        }
    }
    (got, used)
}

/// The tentpole satellite: a 1 MB bulk transfer completes
/// byte-identical with every 7th wire frame silently dropped, the
/// recovery visible in the retransmission counters, and every pooled
/// buffer back home afterwards.
#[test]
fn bulk_1mb_completes_under_drop_every_7() {
    let mut net = clocked_net(false, true, 5_000_000); // 5 ms steps.
    let (client, conn) = establish(&mut net, 9001);
    net.set_drop_every(7);
    let blob = patterned(1 << 20, 31);
    let got = bulk_send(&mut net, client, conn, &blob, 20_000);
    assert_eq!(got.len(), blob.len(), "every byte recovered");
    assert_eq!(got, blob, "stream byte-identical under 1/7 loss");
    assert!(net.faults_injected() > 50, "the wire really dropped");
    let (rto, rtx, fast, ooo) = net.stack(0).tcp_loss_stats(client);
    assert!(rtx > 0, "losses were repaired by retransmission");
    assert!(
        fast > 0 || rto > 0,
        "recovery engaged (fast={fast}, rto={rto})"
    );
    let (_, _, _, srv_ooo) = net.stack(1).tcp_loss_stats(conn);
    assert!(
        srv_ooo > 0 || ooo > 0,
        "segments behind the holes were reassembled, not discarded"
    );
    net.set_drop_every(0);
    net.run_until_quiet(64);
    assert_eq!(net.stack(0).pool_available(), Some(POOL), "client pool whole");
    assert_eq!(net.stack(1).pool_available(), Some(POOL), "server pool whole");
}

/// Loss bursts long enough to eat the dup-ACK signal force the RTO
/// path; the stream still arrives byte-identical.
#[test]
fn drop_bursts_force_rto_and_still_deliver_exactly() {
    // 50 ms steps: bursts can eat whole retransmit+ACK exchanges and
    // double the RTO toward its cap, so each round must buy enough
    // virtual time for deep backoffs to elapse within the round budget.
    let mut net = clocked_net(false, true, 50_000_000);
    let (client, conn) = establish(&mut net, 9002);
    net.set_drop_burst(40, 8); // 8 consecutive frames, every 40th.
    let blob = patterned(300_000, 17);
    let got = bulk_send(&mut net, client, conn, &blob, 20_000);
    if got != blob {
        let diff = got
            .iter()
            .zip(blob.iter())
            .position(|(a, b)| a != b)
            .unwrap_or(got.len().min(blob.len()));
        panic!(
            "stream corrupted under burst loss: got {} bytes (want {}), first diff at {} (got {:?} want {:?})",
            got.len(),
            blob.len(),
            diff,
            &got[diff..(diff + 16).min(got.len())],
            &blob[diff..(diff + 16).min(blob.len())],
        );
    }
    assert!(net.faults_injected() > 20, "bursts really hit");
    let (_, rtx, _, _) = net.stack(0).tcp_loss_stats(client);
    assert!(rtx > 0, "burst holes were retransmitted");
    net.set_drop_burst(0, 0);
    net.run_until_quiet(64);
    assert_eq!(net.stack(0).pool_available(), Some(POOL));
    assert_eq!(net.stack(1).pool_available(), Some(POOL));
}

/// A dropped FIN is retransmitted on RTO: the close completes without
/// any help from the application.
#[test]
fn dropped_fin_is_retransmitted_until_the_close_completes() {
    let mut net = clocked_net(false, true, 50_000_000); // 50 ms steps.
    let (client, conn) = establish(&mut net, 9003);
    // Eat everything while the FIN goes out…
    net.set_drop_every(1);
    net.stack(0).tcp_close(client).unwrap();
    net.step();
    assert!(!net.stack(1).tcp_peer_closed(conn), "the FIN was eaten");
    // …then heal the wire and let the retransmission timer work.
    net.set_drop_every(0);
    for _ in 0..40 {
        net.step();
        if net.stack(1).tcp_peer_closed(conn) {
            break;
        }
    }
    assert!(
        net.stack(1).tcp_peer_closed(conn),
        "the retransmitted FIN completed the close"
    );
    let (rto, rtx, _, _) = net.stack(0).tcp_loss_stats(client);
    assert!(rto >= 1, "the RTO timer fired for the lost FIN");
    assert!(rtx >= 1, "the FIN was re-emitted");
}

/// RTO backoff doubles deterministically on a black-holed wire, and
/// the doubling is observable through the `netstack.tcp.rto_fires`
/// counter in the global stats registry.
#[test]
fn rto_backoff_doubling_is_observable_via_stats() {
    let mut net = clocked_net(false, true, 50_000_000); // 50 ms steps.
    let (client, _conn) = establish(&mut net, 9004);
    let base = ukstats::snapshot();
    // Black-hole the wire, then send one segment into the void: the
    // initial RTO is 1 s (no RTT sample yet), so fires land ~1 s, ~3 s
    // and ~7 s after the send — gaps of 2 s then 4 s.
    net.set_drop_every(1);
    net.stack(0).tcp_send(client, b"into the void").unwrap();
    let mut fire_steps = Vec::new();
    let mut seen = 0;
    for step in 0..160 {
        net.step();
        let (rto, _, _, _) = net.stack(0).tcp_loss_stats(client);
        if rto > seen {
            seen = rto;
            fire_steps.push(step as i64);
        }
        if fire_steps.len() == 3 {
            break;
        }
    }
    assert_eq!(fire_steps.len(), 3, "three RTO fires within 8 s: {fire_steps:?}");
    let gap1 = fire_steps[1] - fire_steps[0];
    let gap2 = fire_steps[2] - fire_steps[1];
    assert!(
        (gap2 - 2 * gap1).abs() <= 2,
        "backoff doubled: gaps {gap1} vs {gap2} steps"
    );
    if ukstats::COMPILED_IN {
        let before = base.counter("netstack.tcp.rto_fires").unwrap_or(0);
        let after = ukstats::snapshot().counter("netstack.tcp.rto_fires").unwrap();
        assert_eq!(after - before, seen, "fires visible in the registry");
    }
    net.set_drop_every(0);
}

/// A dropped SYN does not wedge the connect: the handshake completes
/// through SYN retransmission.
#[test]
fn dropped_syn_is_retransmitted() {
    let mut net = clocked_net(false, true, 50_000_000);
    // ARP first, so only the SYN is at risk.
    net.stack(0).ping(Ipv4Addr::new(10, 0, 0, 2), 1, 1).unwrap();
    net.run_until_quiet(16);
    let listener = net.stack(1).tcp_listen(9005).unwrap();
    net.set_drop_every(1);
    let client = net
        .stack(0)
        .tcp_connect(Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 9005))
        .unwrap();
    net.step();
    net.set_drop_every(0);
    // `run_until_quiet` would stop at the first idle step; the wire
    // stays idle until the 1 s initial RTO fires (20 × 50 ms steps).
    for _ in 0..40 {
        net.step();
        if net.stack(0).tcp_state(client) == Some(uknetstack::tcp::TcpState::Established) {
            break;
        }
    }
    assert_eq!(
        net.stack(0).tcp_state(client),
        Some(uknetstack::tcp::TcpState::Established),
        "handshake completed through SYN retransmission"
    );
    // The handshake-completing ACK needs one more wire hop before the
    // server moves the connection onto its accept backlog.
    net.run_until_quiet(8);
    let conn = net.stack(1).tcp_accept(listener).unwrap();
    net.stack(0).tcp_send(client, b"post-loss hello").unwrap();
    net.run_until_quiet(32);
    assert_eq!(net.stack(1).tcp_recv(conn, 1024).unwrap(), b"post-loss hello");
}

/// The GRO gap regression: with coalescing on and a lossy wire, a
/// staged run must flush at the sequence hole instead of merging
/// across it — the stream stays byte-identical and out-of-order
/// segments still reach the reassembly queue.
#[test]
fn gro_staging_flushes_on_sequence_gaps_under_loss() {
    let mut net = clocked_net(false, true, 5_000_000);
    assert!(net.stack(1).gro(), "receiver coalesces");
    let (client, conn) = establish(&mut net, 9006);
    net.set_drop_every(5);
    let blob = patterned(400_000, 13);
    let got = bulk_send(&mut net, client, conn, &blob, 20_000);
    assert_eq!(got.len(), blob.len(), "every byte recovered with GRO on");
    assert_eq!(got, blob, "no merge across a sequence hole");
    let (_, _, _, ooo) = net.stack(1).tcp_loss_stats(conn);
    assert!(ooo > 0, "gapped segments were queued out of order");
    assert!(net.stack(1).stats().gro_runs > 0, "GRO still engaged");
    net.set_drop_every(0);
    net.run_until_quiet(64);
    assert_eq!(net.stack(0).pool_available(), Some(POOL));
    assert_eq!(net.stack(1).pool_available(), Some(POOL));
}

/// A bandwidth-delay pipe (latency + per-step link budget) with
/// NewReno on: the transfer completes, the congestion window grew
/// past its initial value, and the cwnd gauge is live.
#[test]
fn bandwidth_delay_pipe_completes_with_congestion_control() {
    let mut net = clocked_net(false, true, 2_000_000); // 2 ms steps.
    let (client, conn) = establish(&mut net, 9007);
    net.set_bandwidth_delay(4, 24); // 8 ms one-way, 24 frames/step.
    let blob = patterned(400_000, 7);
    let got = bulk_send(&mut net, client, conn, &blob, 20_000);
    assert_eq!(got, blob, "stream intact through the pipe");
    let cwnd = net.stack(0).tcp_cwnd(client);
    assert!(cwnd > 0, "cwnd gauge live");
    net.set_bandwidth_delay(0, 0);
    net.run_until_quiet(128);
    assert_eq!(net.stack(0).pool_available(), Some(POOL));
    assert_eq!(net.stack(1).pool_available(), Some(POOL));
}

/// The ablation switch: the same lossy transfer completes with
/// congestion control off (pure window-limited recovery), so NewReno
/// is a measurable policy, not a correctness crutch.
#[test]
fn loss_recovery_works_with_congestion_control_off() {
    let mut net = clocked_net(false, false, 5_000_000);
    let (client, conn) = establish(&mut net, 9008);
    net.set_drop_every(9);
    let blob = patterned(300_000, 29);
    let got = bulk_send(&mut net, client, conn, &blob, 20_000);
    assert_eq!(got, blob, "byte-identical with the ablation off");
    let (_, rtx, _, _) = net.stack(0).tcp_loss_stats(client);
    assert!(rtx > 0, "recovery still ran");
    net.set_drop_every(0);
    net.run_until_quiet(64);
    assert_eq!(net.stack(0).pool_available(), Some(POOL));
    assert_eq!(net.stack(1).pool_available(), Some(POOL));
}

/// TSO sender over a lossy wire: super-segments are host-cut into
/// plain frames (the receiver declines big receive), the fault
/// injector eats some, and the sender's chained extents still
/// retransmit correctly through the recycle-back queue.
#[test]
fn tso_super_segments_survive_loss_via_host_cut_retransmission() {
    let mut net = Network::new();
    net.attach(mk_stack(1, true, true));
    let tsc0 = Tsc::new(3_600_000_000);
    let mut dev = VirtioNet::new(VhostKind::VhostUser, &tsc0);
    dev.configure(NetDevConf::default()).unwrap();
    let mut cfg = StackConfig::node(2);
    cfg.rx_csum_offload = false; // Declines big receive: supers get cut.
    let _ = net.attach(NetStack::new(cfg, Box::new(dev)));
    let tsc = Tsc::new(1_000_000_000);
    net.set_clock(&tsc);
    net.set_step_ns(5_000_000);
    let (client, conn) = establish(&mut net, 9009);
    net.set_drop_every(11);
    let blob = patterned(500_000, 37);
    let got = bulk_send(&mut net, client, conn, &blob, 20_000);
    assert_eq!(got, blob, "stream byte-identical: chained rtx extents work");
    assert!(net.stack(0).stats().tso_super_frames > 0, "sender used TSO");
    let (_, rtx, _, _) = net.stack(0).tcp_loss_stats(client);
    assert!(rtx > 0, "cut-frame losses were retransmitted");
    net.set_drop_every(0);
    net.run_until_quiet(64);
    assert_eq!(net.stack(0).pool_available(), Some(POOL));
    assert_eq!(net.stack(1).pool_available(), Some(POOL));
}

/// The SACK tentpole: the same multi-hole drop schedule runs once
/// with the scoreboard on and once with it off. With SACK the sender
/// retransmits *only the holes* (the `sack_rtx` counter proves the
/// hole-walk ran past the first hole) and the transfer needs no more
/// wire time than blind go-back-N recovery. Congestion control is off
/// so flights stay window-limited (~45 MSS): a 1-in-8 drop then
/// leaves several holes per window, which is the multi-hole episode
/// the scoreboard exists for. (With NewReno on, cwnd collapses after
/// every drop and recovery degenerates to single-segment RTOs — the
/// scoreboard never gets a second hole to walk.)
#[test]
fn sack_scoreboard_retransmits_only_the_holes() {
    let run = |sack: bool| {
        let mut net = clocked_net_cfg(5_000_000, |cfg| {
            cfg.sack = sack;
            cfg.rack = false; // Isolate the scoreboard dimension.
            cfg.pacing = false;
            cfg.congestion_control = false;
        });
        let (client, conn) = establish(&mut net, 9010);
        net.set_drop_every(8);
        let blob = patterned(300_000, 23);
        let (got, steps) = bulk_send_counting(&mut net, client, conn, &blob, 20_000);
        assert_eq!(got, blob, "byte-identical (sack={sack})");
        let (sack_rtx, _, _, _, _) = net.stack(0).tcp_recovery_stats(client);
        let (_, rtx, _, _) = net.stack(0).tcp_loss_stats(client);
        assert!(rtx > 0, "losses were repaired (sack={sack})");
        net.set_drop_every(0);
        net.run_until_quiet(64);
        assert_eq!(net.stack(0).pool_available(), Some(POOL));
        assert_eq!(net.stack(1).pool_available(), Some(POOL));
        (steps, sack_rtx)
    };
    let (steps_on, sack_rtx_on) = run(true);
    let (steps_off, sack_rtx_off) = run(false);
    assert!(
        sack_rtx_on > 0,
        "the scoreboard drove hole retransmissions beyond the first hole"
    );
    assert_eq!(sack_rtx_off, 0, "no scoreboard activity with the ablation off");
    // Wall-clock parity bound: surgical recovery must not be slower
    // than go-back-N beyond schedule noise (the deterministic drop
    // cadence also eats some of the hole retransmissions themselves).
    assert!(
        steps_on <= steps_off + steps_off / 4,
        "surgical recovery within 25% of go-back-N ({steps_on} vs {steps_off} steps)"
    );
}

/// The RACK tentpole, part 1: a reorder-prone but lossless wire
/// (duplicated ACKs + adjacent data reorder) must trigger *zero*
/// retransmissions of any kind with RACK on — the reordering window
/// waits half an SRTT, sees the cumulative ACK advance, and never
/// declares loss.
#[test]
fn rack_reordering_window_suppresses_false_fast_retransmits() {
    let mut net = clocked_net_cfg(5_000_000, |cfg| {
        cfg.rack = true;
    });
    let (client, conn) = establish(&mut net, 9011);
    // Duplicated ACKs + adjacent data reorder: classic dup-ACK
    // noise with nothing actually lost.
    net.set_dup_every(2);
    net.set_reorder_every(3);
    let blob = patterned(300_000, 41);
    let got = bulk_send(&mut net, client, conn, &blob, 20_000);
    assert_eq!(got, blob, "byte-identical through reorder noise");
    assert!(net.faults_injected() > 0, "the wire really perturbed");
    let (_, rtx, fast, _) = net.stack(0).tcp_loss_stats(client);
    assert_eq!(fast, 0, "no false fast retransmit on a lossless reordering wire");
    assert_eq!(rtx, 0, "no spurious data retransmission at all");
    net.set_dup_every(0);
    net.set_reorder_every(0);
    net.run_until_quiet(64);
    assert_eq!(net.stack(0).pool_available(), Some(POOL));
    assert_eq!(net.stack(1).pool_available(), Some(POOL));
}

/// The RACK tentpole, part 2: on a wire that both drops and reorders,
/// the time-based reordering window converts timeout recoveries into
/// timely fast recoveries — far fewer RTO fires than the legacy
/// 3-dup-ACK threshold, which keeps stalling until the 200 ms floor
/// because reordered ACK noise resets its dup-ACK count.
#[test]
fn rack_converts_rto_stalls_into_fast_recoveries_under_reorder() {
    let run = |rack: bool| {
        let mut net = clocked_net_cfg(5_000_000, |cfg| {
            cfg.rack = rack;
            cfg.congestion_control = false; // Window-limited flights.
        });
        let (client, conn) = establish(&mut net, 9016);
        net.set_drop_every(8);
        net.set_reorder_every(3);
        let blob = patterned(300_000, 59);
        let got = bulk_send(&mut net, client, conn, &blob, 20_000);
        assert_eq!(got, blob, "byte-identical (rack={rack})");
        let (rto, _, _, _) = net.stack(0).tcp_loss_stats(client);
        net.set_drop_every(0);
        net.set_reorder_every(0);
        net.run_until_quiet(64);
        assert_eq!(net.stack(0).pool_available(), Some(POOL));
        assert_eq!(net.stack(1).pool_available(), Some(POOL));
        rto
    };
    let rto_rack = run(true);
    let rto_legacy = run(false);
    assert!(
        rto_rack < rto_legacy,
        "RACK recovers before the RTO floor ({rto_rack} vs {rto_legacy} RTO fires)"
    );
}

/// The tail-loss probe: the last segment of a flight is dropped, so
/// no duplicate ACK can ever signal it. The PTO (2·SRTT ≪ the 200 ms
/// RTO floor) re-emits the tail and the stream completes without a
/// single RTO fire.
#[test]
fn tail_loss_probe_rescues_a_dropped_tail_without_rto() {
    let mut net = clocked_net_cfg(5_000_000, |cfg| {
        cfg.rack = true;
    });
    let (client, conn) = establish(&mut net, 9012);
    // Warm up: a clean transfer seeds the RTT estimator.
    let warm = patterned(64_000, 19);
    let got = bulk_send(&mut net, client, conn, &warm, 2_000);
    assert_eq!(got, warm, "warmup clean");
    // Drop exactly the flight's tail: one small segment, eaten whole.
    net.set_drop_every(1);
    net.stack(0).tcp_send(client, b"the tail of the flight").unwrap();
    net.step();
    net.set_drop_every(0);
    let mut buf = [0u8; 64];
    let mut got = Vec::new();
    for _ in 0..30 {
        net.step();
        let n = net.stack(1).tcp_recv_into(conn, &mut buf).unwrap();
        got.extend_from_slice(&buf[..n]);
        if !got.is_empty() {
            break;
        }
    }
    assert_eq!(&got[..], b"the tail of the flight", "the tail arrived");
    let (rto, _, _, _) = net.stack(0).tcp_loss_stats(client);
    let (_, _, tlp, _, _) = net.stack(0).tcp_recovery_stats(client);
    assert_eq!(rto, 0, "rescued before the RTO (30 steps ≪ 200 ms floor × backoff)");
    assert!(tlp >= 1, "the probe fired");
    net.run_until_quiet(64);
    assert_eq!(net.stack(0).pool_available(), Some(POOL));
    assert_eq!(net.stack(1).pool_available(), Some(POOL));
}

/// The pacing gate: with `pacing` on, recovery emission is metered
/// over the SRTT instead of leaving as one burst — the release
/// counter proves the gate engaged, and the stream still completes
/// byte-identical.
#[test]
fn paced_recovery_meters_the_retransmission_burst() {
    let mut net = clocked_net_cfg(5_000_000, |cfg| {
        cfg.pacing = true;
    });
    let (client, conn) = establish(&mut net, 9013);
    net.set_drop_every(8);
    let blob = patterned(300_000, 43);
    let got = bulk_send(&mut net, client, conn, &blob, 20_000);
    assert_eq!(got, blob, "byte-identical with paced recovery");
    let (_, _, _, paced, _) = net.stack(0).tcp_recovery_stats(client);
    assert!(paced > 0, "the pacing gate released recovery emission");
    net.set_drop_every(0);
    net.run_until_quiet(64);
    assert_eq!(net.stack(0).pool_available(), Some(POOL));
    assert_eq!(net.stack(1).pool_available(), Some(POOL));
}

/// The pool-pressure guard: a receiver with a deliberately small
/// buffer pool rides out sustained loss (out-of-order extents pin
/// pool buffers) by shedding its newest reassembly extents instead of
/// exhausting the pool. The sender's RTO distrusts the scoreboard
/// (RFC 6675 §5.1 reneging), so shed data is retransmitted and the
/// stream still completes.
#[test]
fn sustained_loss_cannot_exhaust_a_small_receiver_pool() {
    const SMALL: usize = 48;
    let mut net = Network::new();
    // Window-limited flights (~45 MSS) so a drop burst early in a
    // flight strands most of a window out of order at the receiver —
    // enough pinned extents to push a 48-buffer pool under the
    // low-water mark.
    net.attach(mk_stack_cfg(1, |cfg| cfg.congestion_control = false));
    net.attach(mk_stack_cfg(2, |cfg| {
        cfg.pool_size = SMALL;
        cfg.congestion_control = false;
    }));
    let tsc = Tsc::new(1_000_000_000);
    net.set_clock(&tsc);
    net.set_step_ns(50_000_000); // Deep backoffs must elapse in-budget.
    let (client, conn) = establish(&mut net, 9014);
    net.set_drop_burst(30, 6); // Recurring multi-hole episodes.
    let blob = patterned(300_000, 47);
    let got = bulk_send(&mut net, client, conn, &blob, 20_000);
    assert_eq!(got, blob, "stream complete despite shedding");
    let (_, _, _, _, shed) = net.stack(1).tcp_recovery_stats(conn);
    assert!(shed > 0, "pool pressure shed out-of-order extents");
    net.set_drop_burst(0, 0);
    net.run_until_quiet(64);
    assert_eq!(net.stack(0).pool_available(), Some(POOL), "client pool whole");
    assert_eq!(net.stack(1).pool_available(), Some(SMALL), "small pool whole");
}

/// The corruption satellite: bit-flipped frames are never delivered
/// with the trusted-checksum mark (including duplicates of a
/// corrupted frame — the dup fault must inherit, not restore, the
/// mark), so the checksum drop path turns corruption into plain loss
/// and recovery delivers the stream byte-identical.
#[test]
fn corrupted_frames_are_dropped_by_checksum_and_recovered() {
    let mut net = clocked_net_cfg(5_000_000, |_| {});
    let (client, conn) = establish(&mut net, 9015);
    net.set_corrupt_every(9);
    net.set_dup_every(6); // Collides with corruption every 18 ticks.
    let blob = patterned(300_000, 53);
    let got = bulk_send(&mut net, client, conn, &blob, 20_000);
    assert_eq!(got, blob, "corruption never reaches the stream");
    assert!(net.faults_injected() > 50, "the wire really corrupted");
    let (_, rtx, _, _) = net.stack(0).tcp_loss_stats(client);
    assert!(rtx > 0, "checksum drops were recovered as losses");
    net.set_corrupt_every(0);
    net.set_dup_every(0);
    net.run_until_quiet(64);
    assert_eq!(net.stack(0).pool_available(), Some(POOL));
    assert_eq!(net.stack(1).pool_available(), Some(POOL));
}
