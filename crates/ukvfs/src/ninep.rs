//! 9pfs: a real 9P2000 message codec, client and host.
//!
//! §5.2 of the paper: "To support persistent storage, apps can use the
//! 9pfs protocol to access such storage on the host or in the network.
//! Our 9pfs implementation relies on virtio-9p as transport for KVM,
//! implementing the standard VFS operations." Figure 20 measures
//! read/write latency against block size.
//!
//! Every VFS operation becomes one or more 9P messages — encoded to real
//! bytes, shipped over a [`Transport`] that charges the virtio-9p costs
//! (one VM exit + host copy + host service per message; Xen adds a
//! grant-table operation), decoded and served by [`NinePHost`] against an
//! in-memory host filesystem. Latency therefore scales with the *number
//! and size of messages*, which is exactly the mechanism behind Fig 20.

use ukplat::cost;
use ukplat::time::Tsc;
use ukplat::{Errno, Result};

use crate::ramfs::RamFs;
use crate::vfscore::{FileSystem, Ino, NodeKind};

/// Negotiated maximum message size (QEMU's default is 8 KiB + headers).
pub const MSIZE: u32 = 8192;
/// Per-message header overhead for read/write payloads.
pub const IOHDRSZ: u32 = 24;

// 9P2000 message type numbers.
const TVERSION: u8 = 100;
const RVERSION: u8 = 101;
const TATTACH: u8 = 104;
const RATTACH: u8 = 105;
const RERROR: u8 = 107;
const TWALK: u8 = 110;
const RWALK: u8 = 111;
const TOPEN: u8 = 112;
const ROPEN: u8 = 113;
const TCREATE: u8 = 114;
const RCREATE: u8 = 115;
const TREAD: u8 = 116;
const RREAD: u8 = 117;
const TWRITE: u8 = 118;
const RWRITE: u8 = 119;
const TCLUNK: u8 = 120;
const RCLUNK: u8 = 121;

/// Encodes a 9P message from type, tag and body.
fn encode_msg(mtype: u8, tag: u16, body: &[u8]) -> Vec<u8> {
    let size = 4 + 1 + 2 + body.len();
    let mut m = Vec::with_capacity(size);
    m.extend_from_slice(&(size as u32).to_le_bytes());
    m.push(mtype);
    m.extend_from_slice(&tag.to_le_bytes());
    m.extend_from_slice(body);
    m
}

/// Splits a 9P message into (type, tag, body).
fn decode_msg(m: &[u8]) -> Result<(u8, u16, &[u8])> {
    if m.len() < 7 {
        return Err(Errno::Inval);
    }
    let size = u32::from_le_bytes([m[0], m[1], m[2], m[3]]) as usize;
    if size != m.len() {
        return Err(Errno::Inval);
    }
    Ok((m[4], u16::from_le_bytes([m[5], m[6]]), &m[7..]))
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn get_str<'a>(b: &mut &'a [u8]) -> Result<&'a str> {
    if b.len() < 2 {
        return Err(Errno::Inval);
    }
    let n = u16::from_le_bytes([b[0], b[1]]) as usize;
    if b.len() < 2 + n {
        return Err(Errno::Inval);
    }
    let s = std::str::from_utf8(&b[2..2 + n]).map_err(|_| Errno::Inval)?;
    *b = &b[2 + n..];
    Ok(s)
}

fn get_u32(b: &mut &[u8]) -> Result<u32> {
    if b.len() < 4 {
        return Err(Errno::Inval);
    }
    let v = u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
    *b = &b[4..];
    Ok(v)
}

fn get_u64(b: &mut &[u8]) -> Result<u64> {
    if b.len() < 8 {
        return Err(Errno::Inval);
    }
    let v = u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]);
    *b = &b[8..];
    Ok(v)
}

fn get_u16(b: &mut &[u8]) -> Result<u16> {
    if b.len() < 2 {
        return Err(Errno::Inval);
    }
    let v = u16::from_le_bytes([b[0], b[1]]);
    *b = &b[2..];
    Ok(v)
}

/// The transport a 9P client sends messages through.
pub trait Transport {
    /// Performs one request/reply exchange.
    fn rpc(&mut self, request: Vec<u8>) -> Vec<u8>;
}

/// virtio-9p transport: each message costs a kick (VM exit), a host copy
/// of the message bytes, and the host's 9P service time. `xen` adds a
/// grant-table map/unmap, making Xen 9pfs visibly slower (§5.2: +0.3 ms
/// boot on KVM vs +2.7 ms on Xen; Figure 20's latency gap).
pub struct VirtioP9Transport {
    host: NinePHost,
    tsc: Tsc,
    xen: bool,
    messages: u64,
}

impl VirtioP9Transport {
    /// Creates a KVM (virtio-9p) transport over `host`.
    pub fn kvm(host: NinePHost, tsc: &Tsc) -> Self {
        VirtioP9Transport {
            host,
            tsc: tsc.clone(),
            xen: false,
            messages: 0,
        }
    }

    /// Creates a Xen (grant-table) transport over `host`.
    pub fn xen(host: NinePHost, tsc: &Tsc) -> Self {
        VirtioP9Transport {
            host,
            tsc: tsc.clone(),
            xen: true,
            messages: 0,
        }
    }

    /// Messages exchanged so far.
    pub fn message_count(&self) -> u64 {
        self.messages
    }
}

impl Transport for VirtioP9Transport {
    fn rpc(&mut self, request: Vec<u8>) -> Vec<u8> {
        self.messages += 1;
        self.tsc.advance(cost::VMEXIT_CYCLES);
        self.tsc.advance(cost::copy_cost_cycles(request.len()));
        if self.xen {
            self.tsc.advance(cost::XEN_GRANT_CYCLES);
        }
        self.tsc.advance(cost::P9_MSG_BASE_CYCLES);
        let reply = self.host.serve(&request);
        self.tsc.advance(cost::copy_cost_cycles(reply.len()));
        reply
    }
}

/// The host side: serves 9P messages against an in-memory host FS.
pub struct NinePHost {
    fs: RamFs,
    /// fid → resolved path (host keeps fids, like QEMU's 9p server).
    fids: std::collections::HashMap<u32, String>,
}

impl NinePHost {
    /// Creates a host share around `fs` (pre-populate it with test data).
    pub fn new(fs: RamFs) -> Self {
        NinePHost {
            fs,
            fids: std::collections::HashMap::new(),
        }
    }

    /// Serves one request message, producing the reply message.
    pub fn serve(&mut self, req: &[u8]) -> Vec<u8> {
        match self.serve_inner(req) {
            Ok(reply) => reply,
            Err(e) => {
                let tag = req
                    .get(5..7)
                    .map(|t| u16::from_le_bytes([t[0], t[1]]))
                    .unwrap_or(0xffff);
                let mut body = Vec::new();
                put_str(&mut body, e.symbol());
                encode_msg(RERROR, tag, &body)
            }
        }
    }

    fn fid_path(&self, fid: u32) -> Result<&String> {
        self.fids.get(&fid).ok_or(Errno::BadF)
    }

    fn serve_inner(&mut self, req: &[u8]) -> Result<Vec<u8>> {
        let (mtype, tag, mut b) = decode_msg(req)?;
        match mtype {
            TVERSION => {
                let msize = get_u32(&mut b)?;
                let _version = get_str(&mut b)?;
                let mut body = Vec::new();
                body.extend_from_slice(&msize.min(MSIZE).to_le_bytes());
                put_str(&mut body, "9P2000");
                Ok(encode_msg(RVERSION, tag, &body))
            }
            TATTACH => {
                let fid = get_u32(&mut b)?;
                self.fids.insert(fid, String::new());
                // Rattach carries the root qid (13 bytes).
                Ok(encode_msg(RATTACH, tag, &[0u8; 13]))
            }
            TWALK => {
                let fid = get_u32(&mut b)?;
                let newfid = get_u32(&mut b)?;
                let nwname = get_u16(&mut b)?;
                let mut path = self.fid_path(fid)?.clone();
                let mut qids = Vec::new();
                for _ in 0..nwname {
                    let name = get_str(&mut b)?;
                    if !path.is_empty() {
                        path.push('/');
                    }
                    path.push_str(name);
                    self.fs.lookup(&path)?;
                    qids.push([0u8; 13]);
                }
                self.fids.insert(newfid, path);
                let mut body = Vec::new();
                body.extend_from_slice(&(qids.len() as u16).to_le_bytes());
                for q in qids {
                    body.extend_from_slice(&q);
                }
                Ok(encode_msg(RWALK, tag, &body))
            }
            TOPEN => {
                let fid = get_u32(&mut b)?;
                let path = self.fid_path(fid)?.clone();
                self.fs.lookup(&path)?;
                let mut body = vec![0u8; 13]; // qid
                body.extend_from_slice(&(MSIZE - IOHDRSZ).to_le_bytes()); // iounit
                Ok(encode_msg(ROPEN, tag, &body))
            }
            TCREATE => {
                let fid = get_u32(&mut b)?;
                let name = get_str(&mut b)?.to_string();
                let dir = self.fid_path(fid)?.clone();
                let path = if dir.is_empty() {
                    name
                } else {
                    format!("{dir}/{name}")
                };
                self.fs.create(&path)?;
                self.fids.insert(fid, path);
                let mut body = vec![0u8; 13];
                body.extend_from_slice(&(MSIZE - IOHDRSZ).to_le_bytes());
                Ok(encode_msg(RCREATE, tag, &body))
            }
            TREAD => {
                let fid = get_u32(&mut b)?;
                let offset = get_u64(&mut b)?;
                let count = get_u32(&mut b)?;
                let path = self.fid_path(fid)?.clone();
                let (ino, kind) = self.fs.lookup(&path)?;
                if kind != NodeKind::File {
                    return Err(Errno::IsDir);
                }
                let data = self
                    .fs
                    .read(ino, offset, count.min(MSIZE - IOHDRSZ) as usize)?;
                let mut body = Vec::with_capacity(4 + data.len());
                body.extend_from_slice(&(data.len() as u32).to_le_bytes());
                body.extend_from_slice(&data);
                Ok(encode_msg(RREAD, tag, &body))
            }
            TWRITE => {
                let fid = get_u32(&mut b)?;
                let offset = get_u64(&mut b)?;
                let count = get_u32(&mut b)? as usize;
                if b.len() < count {
                    return Err(Errno::Inval);
                }
                let path = self.fid_path(fid)?.clone();
                let (ino, _) = self.fs.lookup(&path)?;
                let n = self.fs.write(ino, offset, &b[..count])?;
                let mut body = Vec::new();
                body.extend_from_slice(&(n as u32).to_le_bytes());
                Ok(encode_msg(RWRITE, tag, &body))
            }
            TCLUNK => {
                let fid = get_u32(&mut b)?;
                self.fids.remove(&fid);
                Ok(encode_msg(RCLUNK, tag, &[]))
            }
            _ => Err(Errno::NoSys),
        }
    }
}

/// The guest-side 9pfs client, adapting 9P to the [`FileSystem`] trait.
pub struct NinePClient<T: Transport> {
    transport: T,
    next_tag: u16,
    next_fid: u32,
    attached: bool,
    /// inode handle → open fid + path.
    open_fids: std::collections::HashMap<Ino, (u32, String)>,
    next_ino: Ino,
}

impl<T: Transport> NinePClient<T> {
    /// Root fid established by attach.
    const ROOT_FID: u32 = 0;

    /// Creates a client; version/attach happen lazily on first use.
    pub fn new(transport: T) -> Self {
        NinePClient {
            transport,
            next_tag: 1,
            next_fid: 1,
            attached: false,
            open_fids: std::collections::HashMap::new(),
            next_ino: 1,
        }
    }

    fn tag(&mut self) -> u16 {
        let t = self.next_tag;
        self.next_tag = self.next_tag.wrapping_add(1).max(1);
        t
    }

    fn rpc_expect(&mut self, req: Vec<u8>, want: u8) -> Result<Vec<u8>> {
        let reply = self.transport.rpc(req);
        let (mtype, _tag, body) = decode_msg(&reply)?;
        if mtype == RERROR {
            let mut b = body;
            let name = get_str(&mut b)?;
            return Err(errno_from_symbol(name));
        }
        if mtype != want {
            return Err(Errno::Io);
        }
        Ok(body.to_vec())
    }

    fn ensure_attached(&mut self) -> Result<()> {
        if self.attached {
            return Ok(());
        }
        let tag = self.tag();
        let mut body = Vec::new();
        body.extend_from_slice(&MSIZE.to_le_bytes());
        put_str(&mut body, "9P2000");
        self.rpc_expect(encode_msg(TVERSION, tag, &body), RVERSION)?;
        let tag = self.tag();
        let mut body = Vec::new();
        body.extend_from_slice(&Self::ROOT_FID.to_le_bytes());
        body.extend_from_slice(&0xffff_ffffu32.to_le_bytes()); // NOFID
        put_str(&mut body, "guest");
        put_str(&mut body, "");
        self.rpc_expect(encode_msg(TATTACH, tag, &body), RATTACH)?;
        self.attached = true;
        Ok(())
    }

    /// Walks from the root to `path`, returning a fresh fid.
    fn walk(&mut self, path: &str) -> Result<u32> {
        self.ensure_attached()?;
        let fid = self.next_fid;
        self.next_fid += 1;
        let tag = self.tag();
        let comps: Vec<&str> = path.split('/').filter(|c| !c.is_empty()).collect();
        let mut body = Vec::new();
        body.extend_from_slice(&Self::ROOT_FID.to_le_bytes());
        body.extend_from_slice(&fid.to_le_bytes());
        body.extend_from_slice(&(comps.len() as u16).to_le_bytes());
        for c in &comps {
            put_str(&mut body, c);
        }
        self.rpc_expect(encode_msg(TWALK, tag, &body), RWALK)?;
        Ok(fid)
    }

    fn clunk(&mut self, fid: u32) -> Result<()> {
        let tag = self.tag();
        let mut body = Vec::new();
        body.extend_from_slice(&fid.to_le_bytes());
        self.rpc_expect(encode_msg(TCLUNK, tag, &body), RCLUNK)?;
        Ok(())
    }

    /// Messages exchanged (delegates to transports that track it).
    pub fn transport(&self) -> &T {
        &self.transport
    }
}

fn errno_from_symbol(sym: &str) -> Errno {
    match sym {
        "ENOENT" => Errno::NoEnt,
        "EISDIR" => Errno::IsDir,
        "ENOTDIR" => Errno::NotDir,
        "EEXIST" => Errno::Exist,
        "ENOSPC" => Errno::NoSpc,
        "EBADF" => Errno::BadF,
        _ => Errno::Io,
    }
}

impl<T: Transport> FileSystem for NinePClient<T> {
    fn fs_name(&self) -> &'static str {
        "9pfs"
    }

    fn lookup(&mut self, path: &str) -> Result<(Ino, NodeKind)> {
        let fid = self.walk(path)?;
        // Open to validate; directories report IsDir on read, files open.
        let tag = self.tag();
        let mut body = Vec::new();
        body.extend_from_slice(&fid.to_le_bytes());
        body.push(0); // OREAD
        self.rpc_expect(encode_msg(TOPEN, tag, &body), ROPEN)?;
        let ino = self.next_ino;
        self.next_ino += 1;
        self.open_fids.insert(ino, (fid, path.to_string()));
        // The host model only distinguishes kind on read; report File for
        // anything openable (directories are listed via readdir).
        Ok((ino, NodeKind::File))
    }

    fn create(&mut self, path: &str) -> Result<Ino> {
        self.ensure_attached()?;
        let (dir, name) = match path.rsplit_once('/') {
            Some((d, n)) => (d, n),
            None => ("", path),
        };
        let fid = self.walk(dir)?;
        let tag = self.tag();
        let mut body = Vec::new();
        body.extend_from_slice(&fid.to_le_bytes());
        put_str(&mut body, name);
        body.extend_from_slice(&0o644u32.to_le_bytes());
        body.push(1); // OWRITE
        self.rpc_expect(encode_msg(TCREATE, tag, &body), RCREATE)?;
        let ino = self.next_ino;
        self.next_ino += 1;
        self.open_fids.insert(ino, (fid, path.to_string()));
        Ok(ino)
    }

    fn read(&mut self, ino: Ino, off: u64, len: usize) -> Result<Vec<u8>> {
        let (fid, _) = *self.open_fids.get(&ino).ok_or(Errno::BadF)?;
        let mut out = Vec::with_capacity(len);
        let mut off = off;
        // Chunk by the negotiated iounit: larger reads → more messages,
        // the latency scaling of Figure 20.
        while out.len() < len {
            let want = (len - out.len()).min((MSIZE - IOHDRSZ) as usize) as u32;
            let tag = self.tag();
            let mut body = Vec::new();
            body.extend_from_slice(&fid.to_le_bytes());
            body.extend_from_slice(&off.to_le_bytes());
            body.extend_from_slice(&want.to_le_bytes());
            let reply = self.rpc_expect(encode_msg(TREAD, tag, &body), RREAD)?;
            let mut b = reply.as_slice();
            let count = get_u32(&mut b)? as usize;
            if count == 0 {
                break; // EOF
            }
            out.extend_from_slice(&b[..count]);
            off += count as u64;
        }
        Ok(out)
    }

    fn write(&mut self, ino: Ino, off: u64, data: &[u8]) -> Result<usize> {
        let (fid, _) = *self.open_fids.get(&ino).ok_or(Errno::BadF)?;
        let mut written = 0;
        let mut off = off;
        for chunk in data.chunks((MSIZE - IOHDRSZ) as usize) {
            let tag = self.tag();
            let mut body = Vec::new();
            body.extend_from_slice(&fid.to_le_bytes());
            body.extend_from_slice(&off.to_le_bytes());
            body.extend_from_slice(&(chunk.len() as u32).to_le_bytes());
            body.extend_from_slice(chunk);
            let reply = self.rpc_expect(encode_msg(TWRITE, tag, &body), RWRITE)?;
            let mut b = reply.as_slice();
            let n = get_u32(&mut b)? as usize;
            written += n;
            off += n as u64;
            if n < chunk.len() {
                break;
            }
        }
        Ok(written)
    }

    fn size(&mut self, ino: Ino) -> Result<u64> {
        // Read to EOF in iounit chunks (Tstat omitted from the host model).
        let mut total = 0u64;
        loop {
            let chunk = self.read(ino, total, (MSIZE - IOHDRSZ) as usize)?;
            if chunk.is_empty() {
                break;
            }
            total += chunk.len() as u64;
        }
        Ok(total)
    }

    fn unlink(&mut self, _path: &str) -> Result<()> {
        Err(Errno::NoSys) // Tremove omitted; not exercised by the figures.
    }

    fn mkdir(&mut self, _path: &str) -> Result<()> {
        Err(Errno::NoSys)
    }

    fn readdir(&mut self, _path: &str) -> Result<Vec<String>> {
        Err(Errno::NoSys)
    }
}

impl<T: Transport> NinePClient<T> {
    /// Closes the fid behind an inode handle.
    pub fn close_ino(&mut self, ino: Ino) -> Result<()> {
        if let Some((fid, _)) = self.open_fids.remove(&ino) {
            self.clunk(fid)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ukplat::time::Tsc;

    fn host_with(files: &[(&str, &[u8])]) -> NinePHost {
        let mut fs = RamFs::new();
        for (p, c) in files {
            fs.add_file(p, c).unwrap();
        }
        NinePHost::new(fs)
    }

    fn client(
        files: &[(&str, &[u8])],
        tsc: &Tsc,
    ) -> NinePClient<VirtioP9Transport> {
        NinePClient::new(VirtioP9Transport::kvm(host_with(files), tsc))
    }

    #[test]
    fn codec_roundtrip() {
        let m = encode_msg(TREAD, 7, &[1, 2, 3]);
        let (t, tag, body) = decode_msg(&m).unwrap();
        assert_eq!(t, TREAD);
        assert_eq!(tag, 7);
        assert_eq!(body, &[1, 2, 3]);
    }

    #[test]
    fn open_and_read_small_file() {
        let tsc = Tsc::new(cost::CPU_FREQ_HZ);
        let mut c = client(&[("hello.txt", b"hi 9p")], &tsc);
        let (ino, _) = c.lookup("hello.txt").unwrap();
        assert_eq!(c.read(ino, 0, 64).unwrap(), b"hi 9p");
    }

    #[test]
    fn missing_file_maps_to_enoent() {
        let tsc = Tsc::new(cost::CPU_FREQ_HZ);
        let mut c = client(&[], &tsc);
        assert_eq!(c.lookup("ghost").unwrap_err(), Errno::NoEnt);
    }

    #[test]
    fn large_read_uses_multiple_messages() {
        let tsc = Tsc::new(cost::CPU_FREQ_HZ);
        let blob: Vec<u8> = (0..32 * 1024u32).map(|i| (i % 251) as u8).collect();
        let mut c = client(&[("big", &blob)], &tsc);
        let (ino, _) = c.lookup("big").unwrap();
        let before = c.transport().message_count();
        let data = c.read(ino, 0, blob.len()).unwrap();
        assert_eq!(data, blob);
        let msgs = c.transport().message_count() - before;
        // 32 KiB at ~8 KiB per message → at least 4 messages.
        assert!(msgs >= 4, "got {msgs} messages");
    }

    #[test]
    fn write_roundtrip_through_host() {
        let tsc = Tsc::new(cost::CPU_FREQ_HZ);
        let mut c = client(&[], &tsc);
        let ino = c.create("new.txt").unwrap();
        let payload = vec![0x42u8; 20_000];
        assert_eq!(c.write(ino, 0, &payload).unwrap(), payload.len());
        let back = c.read(ino, 0, payload.len()).unwrap();
        assert_eq!(back, payload);
    }

    #[test]
    fn xen_transport_is_slower_than_kvm() {
        let blob = vec![1u8; 4096];
        let t_kvm = Tsc::new(cost::CPU_FREQ_HZ);
        let mut kvm = NinePClient::new(VirtioP9Transport::kvm(
            host_with(&[("f", &blob)]),
            &t_kvm,
        ));
        let t_xen = Tsc::new(cost::CPU_FREQ_HZ);
        let mut xen = NinePClient::new(VirtioP9Transport::xen(
            host_with(&[("f", &blob)]),
            &t_xen,
        ));
        let (i1, _) = kvm.lookup("f").unwrap();
        kvm.read(i1, 0, 4096).unwrap();
        let (i2, _) = xen.lookup("f").unwrap();
        xen.read(i2, 0, 4096).unwrap();
        assert!(t_xen.now_cycles() > t_kvm.now_cycles());
    }

    #[test]
    fn size_reads_to_eof() {
        let tsc = Tsc::new(cost::CPU_FREQ_HZ);
        let blob = vec![9u8; 10_000];
        let mut c = client(&[("f", &blob)], &tsc);
        let (ino, _) = c.lookup("f").unwrap();
        assert_eq!(c.size(ino).unwrap(), 10_000);
    }

    #[test]
    fn clunk_releases_fid() {
        let tsc = Tsc::new(cost::CPU_FREQ_HZ);
        let mut c = client(&[("f", b"x")], &tsc);
        let (ino, _) = c.lookup("f").unwrap();
        c.close_ino(ino).unwrap();
        assert_eq!(c.read(ino, 0, 1).unwrap_err(), Errno::BadF);
    }
}
