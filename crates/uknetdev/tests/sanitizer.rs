//! End-of-test leak detection under the `netbuf-sanitizer` feature:
//! buffers that never come home must turn into a loud, slot-naming
//! panic, and fully returned pools must pass the same check silently.
//!
//! Compiled only with `--features netbuf-sanitizer` (`make
//! verify-sanitize`); the default build contains none of this.
#![cfg(feature = "netbuf-sanitizer")]

use uknetdev::netbuf::NetbufPool;

#[test]
fn all_returned_passes_the_leak_check() {
    let mut pool = NetbufPool::new(4, 256, 64);
    let bufs: Vec<_> = (0..4).map(|_| pool.take().unwrap()).collect();
    assert_eq!(pool.sanitize_live_count(), 4);
    for nb in bufs {
        pool.give_back(nb);
    }
    assert_eq!(pool.sanitize_live_count(), 0);
    pool.sanitize_assert_all_returned();
}

#[test]
#[should_panic(expected = "leaked")]
fn seeded_leak_fails_loudly() {
    let mut pool = NetbufPool::new(4, 256, 64);
    let kept = pool.take().unwrap();
    let returned = pool.take().unwrap();
    pool.give_back(returned);
    // `kept` is deliberately never given back: the check must name it.
    assert_eq!(pool.sanitize_live_count(), 1);
    pool.sanitize_assert_all_returned();
    drop(kept);
}

#[test]
#[should_panic(expected = "cross-pool give-back via chain")]
fn chain_with_foreign_fragment_is_reported() {
    let mut a = NetbufPool::new(2, 256, 64);
    let mut b = NetbufPool::new(2, 256, 64);
    let mut head = a.take().unwrap();
    let frag = b.take().unwrap();
    head.chain_append(frag);
    // Returning the chain to pool A would silently drop B's fragment
    // in the default build (a slow leak); the sanitizer names it now.
    a.give_back_chain(head);
}
