//! Criterion benches for the uknetdev TX path (Figure 19).

use criterion::{criterion_group, criterion_main, Criterion};
use uknetdev::backend::VhostKind;
use uknetdev::dev::{NetDev, NetDevConf};
use uknetdev::netbuf::NetbufPool;
use uknetdev::VirtioNet;
use ukplat::time::Tsc;

fn bench_tx_burst(c: &mut Criterion) {
    let mut g = c.benchmark_group("tx_burst_32");
    for kind in [VhostKind::VhostUser, VhostKind::VhostNet] {
        for size in [64usize, 1500] {
            g.bench_function(format!("{}_{size}B", kind.name()), |b| {
                let tsc = Tsc::new(ukplat::cost::CPU_FREQ_HZ);
                let mut dev = VirtioNet::new(kind, &tsc);
                dev.configure(NetDevConf::default()).unwrap();
                let mut pool = NetbufPool::new(64, 2048, 64);
                b.iter(|| {
                    let mut burst = Vec::with_capacity(32);
                    for _ in 0..32 {
                        let mut nb = pool.take().unwrap();
                        nb.set_len(size);
                        burst.push(nb);
                    }
                    dev.tx_burst(0, &mut burst).unwrap();
                    let mut done = Vec::new();
                    dev.reclaim_tx(0, &mut done).unwrap();
                    for nb in done {
                        pool.give_back(nb);
                    }
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_tx_burst);
criterion_main!(benches);
