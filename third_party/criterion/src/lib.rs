//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset used by `crates/bench`: `Criterion`,
//! `benchmark_group`, `Bencher::{iter, iter_batched, iter_batched_ref}`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros.
//! Each benchmark runs a short calibrated loop and prints mean
//! nanoseconds per iteration — enough to compare configurations locally
//! without crates.io access.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Bencher {
    /// Mean nanoseconds per iteration measured by the last `iter*` call.
    ns_per_iter: f64,
    iters_done: u64,
    measure_ms: u64,
}

impl Bencher {
    fn new(measure_ms: u64) -> Self {
        Self { ns_per_iter: 0.0, iters_done: 0, measure_ms }
    }

    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let budget = Duration::from_millis(self.measure_ms);
        let start = Instant::now();
        let mut iters: u64 = 0;
        while start.elapsed() < budget {
            black_box(routine());
            iters += 1;
        }
        let elapsed = start.elapsed();
        self.iters_done = iters;
        self.ns_per_iter = elapsed.as_nanos() as f64 / iters.max(1) as f64;
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let budget = Duration::from_millis(self.measure_ms);
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        while total < budget {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            iters += 1;
        }
        self.iters_done = iters;
        self.ns_per_iter = total.as_nanos() as f64 / iters.max(1) as f64;
    }

    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let budget = Duration::from_millis(self.measure_ms);
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        while total < budget {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            total += start.elapsed();
            iters += 1;
        }
        self.iters_done = iters;
        self.ns_per_iter = total.as_nanos() as f64 / iters.max(1) as f64;
    }
}

pub struct Criterion {
    measure_ms: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep runs short: this is a smoke-harness, not a statistics engine.
        Self { measure_ms: 50 }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.measure_ms);
        f(&mut b);
        println!(
            "bench {:<48} {:>14.1} ns/iter ({} iters)",
            id, b.ns_per_iter, b.iters_done
        );
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.to_string() }
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }
}

pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.parent.bench_function(&full, f);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn finish(&mut self) {}
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
