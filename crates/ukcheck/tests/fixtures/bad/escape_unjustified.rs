// Known-bad: the escape hatch itself must carry a justification.
// ukcheck: allow(alloc)
pub fn stage() -> Vec<u8> {
    Vec::new()
}
