//! `vfscore`: mount table, path resolution, dentry cache, fd table.
//!
//! This is the layer the paper's Figure 22 removes for its specialized
//! web cache: every `open()` here walks path components through the
//! dentry cache, resolves the mount, and allocates a file descriptor —
//! real work that the SHFS direct path skips.

use std::collections::HashMap;

use ukplat::{Errno, Result};

/// Inode number within a filesystem.
pub type Ino = u64;

/// A file descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fd(pub usize);

/// Kind of a directory entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// Regular file.
    File,
    /// Directory.
    Dir,
}

/// The filesystem interface `vfscore` multiplexes over.
///
/// Paths are relative to the filesystem root, with no leading slash.
pub trait FileSystem {
    /// Filesystem type name (e.g. "ramfs", "9pfs").
    fn fs_name(&self) -> &'static str;

    /// Resolves a path to an inode.
    fn lookup(&mut self, path: &str) -> Result<(Ino, NodeKind)>;

    /// Creates (or truncates) a regular file.
    fn create(&mut self, path: &str) -> Result<Ino>;

    /// Reads up to `len` bytes at `off`.
    fn read(&mut self, ino: Ino, off: u64, len: usize) -> Result<Vec<u8>>;

    /// Writes `data` at `off`, returning bytes written.
    fn write(&mut self, ino: Ino, off: u64, data: &[u8]) -> Result<usize>;

    /// File size.
    fn size(&mut self, ino: Ino) -> Result<u64>;

    /// Removes a file.
    fn unlink(&mut self, path: &str) -> Result<()>;

    /// Creates a directory.
    fn mkdir(&mut self, path: &str) -> Result<()>;

    /// Lists a directory.
    fn readdir(&mut self, path: &str) -> Result<Vec<String>>;
}

#[derive(Debug, Clone, Copy)]
struct OpenFile {
    mount: usize,
    ino: Ino,
    offset: u64,
}

struct Mount {
    prefix: String,
    fs: Box<dyn FileSystem>,
}

/// The VFS: mounts, dentry cache, fd table.
pub struct Vfs {
    mounts: Vec<Mount>,
    /// Dentry cache: absolute path → (mount idx, inode, kind).
    dcache: HashMap<String, (usize, Ino, NodeKind)>,
    fds: Vec<Option<OpenFile>>,
    max_fds: usize,
    dcache_hits: u64,
    dcache_misses: u64,
}

impl std::fmt::Debug for Vfs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Vfs")
            .field("mounts", &self.mounts.len())
            .field("dcache_entries", &self.dcache.len())
            .finish()
    }
}

impl Default for Vfs {
    fn default() -> Self {
        Self::new()
    }
}

impl Vfs {
    /// Creates an empty VFS with the default fd limit (1024, like the
    /// paper's tuned server configs).
    pub fn new() -> Self {
        Vfs {
            mounts: Vec::new(),
            dcache: HashMap::new(),
            fds: Vec::new(),
            max_fds: 1024,
            dcache_hits: 0,
            dcache_misses: 0,
        }
    }

    /// Mounts `fs` at `prefix` (e.g. "/", "/data").
    pub fn mount(&mut self, prefix: &str, fs: Box<dyn FileSystem>) -> Result<()> {
        if !prefix.starts_with('/') {
            return Err(Errno::Inval);
        }
        if self.mounts.iter().any(|m| m.prefix == prefix) {
            return Err(Errno::Busy);
        }
        self.mounts.push(Mount {
            prefix: prefix.to_string(),
            fs,
        });
        // Longest prefix first for resolution.
        self.mounts
            .sort_by_key(|m| std::cmp::Reverse(m.prefix.len()));
        self.dcache.clear();
        Ok(())
    }

    /// Resolves an absolute path to (mount index, fs-relative path).
    fn resolve_mount<'a>(&self, path: &'a str) -> Result<(usize, &'a str)> {
        if !path.starts_with('/') {
            return Err(Errno::Inval);
        }
        for (i, m) in self.mounts.iter().enumerate() {
            let p = &m.prefix;
            if path == p {
                return Ok((i, ""));
            }
            let matches = if p == "/" {
                true
            } else {
                path.starts_with(p.as_str())
                    && path.as_bytes().get(p.len()) == Some(&b'/')
            };
            if matches {
                let rel = if p == "/" { &path[1..] } else { &path[p.len() + 1..] };
                return Ok((i, rel));
            }
        }
        Err(Errno::NoEnt)
    }

    /// The path walk: checks the dentry cache component by component,
    /// falling back to filesystem lookups. This is the per-`open` work
    /// Figure 22's specialization removes.
    fn walk(&mut self, path: &str) -> Result<(usize, Ino, NodeKind)> {
        if let Some(&hit) = self.dcache.get(path) {
            self.dcache_hits += 1;
            return Ok(hit);
        }
        self.dcache_misses += 1;
        let (mi, rel) = self.resolve_mount(path)?;
        // Walk intermediate components so each lands in the dcache,
        // mirroring a real dentry-by-dentry walk.
        let mut consumed = String::from(&self.mounts[mi].prefix);
        if consumed == "/" {
            consumed.clear();
        }
        if !rel.is_empty() {
            let comps: Vec<&str> = rel.split('/').collect();
            for (n, c) in comps.iter().enumerate() {
                consumed.push('/');
                consumed.push_str(c);
                if self.dcache.contains_key(consumed.as_str()) {
                    continue;
                }
                let sub = comps[..=n].join("/");
                let (ino, kind) = self.mounts[mi].fs.lookup(&sub)?;
                self.dcache.insert(consumed.clone(), (mi, ino, kind));
            }
        }
        let (ino, kind) = self.mounts[mi].fs.lookup(rel)?;
        let entry = (mi, ino, kind);
        self.dcache.insert(path.to_string(), entry);
        Ok(entry)
    }

    fn alloc_fd(&mut self, of: OpenFile) -> Result<Fd> {
        for (i, slot) in self.fds.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(of);
                return Ok(Fd(i));
            }
        }
        if self.fds.len() >= self.max_fds {
            return Err(Errno::MFile);
        }
        self.fds.push(Some(of));
        Ok(Fd(self.fds.len() - 1))
    }

    fn file(&mut self, fd: Fd) -> Result<&mut OpenFile> {
        self.fds
            .get_mut(fd.0)
            .and_then(|s| s.as_mut())
            .ok_or(Errno::BadF)
    }

    /// Opens an existing file.
    pub fn open(&mut self, path: &str) -> Result<Fd> {
        let (mi, ino, kind) = self.walk(path)?;
        if kind == NodeKind::Dir {
            return Err(Errno::IsDir);
        }
        self.alloc_fd(OpenFile {
            mount: mi,
            ino,
            offset: 0,
        })
    }

    /// Creates (or truncates) and opens a file.
    pub fn create(&mut self, path: &str) -> Result<Fd> {
        let (mi, rel) = self.resolve_mount(path)?;
        let ino = self.mounts[mi].fs.create(rel)?;
        self.dcache
            .insert(path.to_string(), (mi, ino, NodeKind::File));
        self.alloc_fd(OpenFile {
            mount: mi,
            ino,
            offset: 0,
        })
    }

    /// Reads up to `len` bytes at the current offset.
    pub fn read(&mut self, fd: Fd, len: usize) -> Result<Vec<u8>> {
        let of = *self.file(fd)?;
        let data = self.mounts[of.mount].fs.read(of.ino, of.offset, len)?;
        self.file(fd)?.offset += data.len() as u64;
        Ok(data)
    }

    /// Writes at the current offset.
    pub fn write(&mut self, fd: Fd, data: &[u8]) -> Result<usize> {
        let of = *self.file(fd)?;
        let n = self.mounts[of.mount].fs.write(of.ino, of.offset, data)?;
        self.file(fd)?.offset += n as u64;
        Ok(n)
    }

    /// Repositions the file offset (SEEK_SET only).
    pub fn lseek(&mut self, fd: Fd, offset: u64) -> Result<u64> {
        self.file(fd)?.offset = offset;
        Ok(offset)
    }

    /// File size by descriptor.
    pub fn fsize(&mut self, fd: Fd) -> Result<u64> {
        let of = *self.file(fd)?;
        self.mounts[of.mount].fs.size(of.ino)
    }

    /// Closes a descriptor.
    pub fn close(&mut self, fd: Fd) -> Result<()> {
        let slot = self.fds.get_mut(fd.0).ok_or(Errno::BadF)?;
        if slot.is_none() {
            return Err(Errno::BadF);
        }
        *slot = None;
        Ok(())
    }

    /// Removes a file.
    pub fn unlink(&mut self, path: &str) -> Result<()> {
        let (mi, rel) = self.resolve_mount(path)?;
        self.mounts[mi].fs.unlink(rel)?;
        self.dcache.remove(path);
        Ok(())
    }

    /// Creates a directory.
    pub fn mkdir(&mut self, path: &str) -> Result<()> {
        let (mi, rel) = self.resolve_mount(path)?;
        self.mounts[mi].fs.mkdir(rel)
    }

    /// Lists a directory.
    pub fn readdir(&mut self, path: &str) -> Result<Vec<String>> {
        let (mi, rel) = self.resolve_mount(path)?;
        self.mounts[mi].fs.readdir(rel)
    }

    /// Dentry-cache hit/miss counters.
    pub fn dcache_stats(&self) -> (u64, u64) {
        (self.dcache_hits, self.dcache_misses)
    }

    /// Open descriptors.
    pub fn open_fds(&self) -> usize {
        self.fds.iter().filter(|s| s.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ramfs::RamFs;

    fn vfs_with_root() -> Vfs {
        let mut v = Vfs::new();
        v.mount("/", Box::new(RamFs::new())).unwrap();
        v
    }

    #[test]
    fn create_write_read_roundtrip() {
        let mut v = vfs_with_root();
        let fd = v.create("/hello.txt").unwrap();
        v.write(fd, b"hello vfs").unwrap();
        v.lseek(fd, 0).unwrap();
        assert_eq!(v.read(fd, 100).unwrap(), b"hello vfs");
        assert_eq!(v.fsize(fd).unwrap(), 9);
        v.close(fd).unwrap();
    }

    #[test]
    fn open_missing_file_fails() {
        let mut v = vfs_with_root();
        assert_eq!(v.open("/nope").unwrap_err(), Errno::NoEnt);
    }

    #[test]
    fn nested_directories_walk() {
        let mut v = vfs_with_root();
        v.mkdir("/a").unwrap();
        v.mkdir("/a/b").unwrap();
        let fd = v.create("/a/b/c.txt").unwrap();
        v.write(fd, b"deep").unwrap();
        v.close(fd).unwrap();
        let fd = v.open("/a/b/c.txt").unwrap();
        assert_eq!(v.read(fd, 10).unwrap(), b"deep");
    }

    #[test]
    fn dentry_cache_hits_on_reopen() {
        let mut v = vfs_with_root();
        let fd = v.create("/f").unwrap();
        v.close(fd).unwrap();
        let fd = v.open("/f").unwrap();
        v.close(fd).unwrap();
        let fd = v.open("/f").unwrap();
        v.close(fd).unwrap();
        let (hits, _) = v.dcache_stats();
        assert!(hits >= 1, "second open must hit the dcache");
    }

    #[test]
    fn multiple_mounts_resolve_by_longest_prefix() {
        let mut v = Vfs::new();
        v.mount("/", Box::new(RamFs::new())).unwrap();
        v.mount("/data", Box::new(RamFs::new())).unwrap();
        let fd = v.create("/data/x").unwrap();
        v.write(fd, b"in-data-mount").unwrap();
        v.close(fd).unwrap();
        // Root mount must not see it.
        assert!(v.open("/x").is_err());
        let fd = v.open("/data/x").unwrap();
        assert_eq!(v.read(fd, 64).unwrap(), b"in-data-mount");
    }

    #[test]
    fn fd_table_reuses_slots() {
        let mut v = vfs_with_root();
        let a = v.create("/a").unwrap();
        let b = v.create("/b").unwrap();
        v.close(a).unwrap();
        let c = v.create("/c").unwrap();
        assert_eq!(c, a, "closed slot is reused");
        assert_ne!(b, c);
    }

    #[test]
    fn close_twice_fails() {
        let mut v = vfs_with_root();
        let fd = v.create("/f").unwrap();
        v.close(fd).unwrap();
        assert_eq!(v.close(fd).unwrap_err(), Errno::BadF);
    }

    #[test]
    fn unlink_removes_and_invalidates_dcache() {
        let mut v = vfs_with_root();
        let fd = v.create("/gone").unwrap();
        v.close(fd).unwrap();
        v.unlink("/gone").unwrap();
        assert_eq!(v.open("/gone").unwrap_err(), Errno::NoEnt);
    }

    #[test]
    fn readdir_lists_entries() {
        let mut v = vfs_with_root();
        v.create("/one").unwrap();
        v.create("/two").unwrap();
        v.mkdir("/sub").unwrap();
        let mut names = v.readdir("/").unwrap();
        names.sort();
        assert_eq!(names, ["one", "sub", "two"]);
    }

    #[test]
    fn open_directory_is_error() {
        let mut v = vfs_with_root();
        v.mkdir("/d").unwrap();
        assert_eq!(v.open("/d").unwrap_err(), Errno::IsDir);
    }

    #[test]
    fn relative_path_rejected() {
        let mut v = vfs_with_root();
        assert_eq!(v.open("no-slash").unwrap_err(), Errno::Inval);
    }

    #[test]
    fn duplicate_mount_rejected() {
        let mut v = vfs_with_root();
        assert_eq!(
            v.mount("/", Box::new(RamFs::new())).unwrap_err(),
            Errno::Busy
        );
    }
}
